//! Flight-recorder dump contract of the `lfm` binary:
//!
//! - a panicking run (even a contained one) dumps the ring;
//! - a degraded exit dumps the ring;
//! - a `--deadline` trip dumps the ring but still exits 0;
//! - a clean run leaves no dump behind.
//!
//! The dump is `lfm-obs/v1` JSONL: one header object, then at most
//! `capacity` event lines — the bound is asserted here.

use std::path::PathBuf;
use std::process::{Command, Output};

fn lfm(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lfm"));
    cmd.args(args);
    cmd
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

/// A per-test dump path in the temp dir that no other test writes.
fn dump_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("lfm-flight-{}-{tag}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Parses the dump: asserts the `lfm-obs/v1` header and the ring bound
/// (at most `capacity` event lines after the header), returning the
/// header line for further scrutiny.
fn check_dump(path: &PathBuf) -> String {
    let text = std::fs::read_to_string(path).expect("flight dump exists");
    let mut lines = text.lines();
    let header = lines.next().expect("dump has a header line").to_owned();
    assert!(
        header.contains("\"schema\":\"lfm-obs/v1\""),
        "header: {header}"
    );
    assert!(
        header.contains("\"kind\":\"flight-recorder\""),
        "header: {header}"
    );
    assert!(header.contains("\"capacity\":"), "header: {header}");
    // The capacity the binary ships with is the obs crate's default.
    let capacity: usize = header
        .split("\"capacity\":")
        .nth(1)
        .and_then(|s| s.split([',', '}']).next())
        .and_then(|s| s.parse().ok())
        .expect("capacity parses");
    let events: Vec<&str> = lines.collect();
    assert!(
        events.len() <= capacity,
        "ring bound violated: {} events retained with capacity {capacity}",
        events.len()
    );
    for line in &events {
        assert!(
            line.starts_with("{\"seq\":"),
            "event line is seq-prefixed JSON: {line}"
        );
        assert!(line.ends_with('}'), "event line is balanced: {line}");
    }
    header
}

#[test]
fn injected_panic_dumps_flight_recorder_and_exits_degraded() {
    let dump = dump_path("panic");
    let out = lfm(&["tables", "t3"])
        .env("LFM_INJECT_PANIC", "t3")
        .env("LFM_FLIGHT_DUMP", &dump)
        .output()
        .expect("spawn lfm");
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    // The hook fires at panic time, the degraded path again at exit;
    // both routes announce the dump on stderr.
    let err = stderr(&out);
    assert!(err.contains("flight recorder (panic)"), "stderr: {err}");
    assert!(
        err.contains("flight recorder (degraded exit)"),
        "stderr: {err}"
    );
    check_dump(&dump);
    let _ = std::fs::remove_file(&dump);
}

#[test]
fn deadline_trip_dumps_flight_recorder_but_exits_zero() {
    let dump = dump_path("deadline");
    // A sub-millisecond budget on the deepest kernel: the trip is all
    // but certain, but the assertion keys off the report so a freak
    // instant finish cannot flake the test.
    let out = lfm(&["explore", "livelock_retry", "--deadline", "0.0005"])
        .env("LFM_FLIGHT_DUMP", &dump)
        .output()
        .expect("spawn lfm");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    if stdout(&out).contains("truncated by: wall deadline") {
        assert!(
            stderr(&out).contains("flight recorder (deadline trip)"),
            "stderr: {}",
            stderr(&out)
        );
        let header = check_dump(&dump);
        // Exploration emits events, so the recorder saw some.
        assert!(!header.contains("\"recorded\":0"), "header: {header}");
    } else {
        assert!(
            !dump.exists(),
            "no trip, yet a dump appeared at {}",
            dump.display()
        );
    }
    let _ = std::fs::remove_file(&dump);
}

#[test]
fn clean_explore_leaves_no_dump() {
    let dump = dump_path("clean-explore");
    let out = lfm(&["explore", "counter_rmw"])
        .env("LFM_FLIGHT_DUMP", &dump)
        .output()
        .expect("spawn lfm");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("schedules:"), "{}", stdout(&out));
    assert!(
        !dump.exists(),
        "clean run dumped a flight recorder at {}",
        dump.display()
    );
}

#[test]
fn clean_tables_run_leaves_no_dump() {
    let dump = dump_path("clean-tables");
    let out = lfm(&["tables", "t2"])
        .env("LFM_FLIGHT_DUMP", &dump)
        .output()
        .expect("spawn lfm");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(
        !dump.exists(),
        "clean run dumped a flight recorder at {}",
        dump.display()
    );
}
