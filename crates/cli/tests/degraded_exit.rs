//! End-to-end exit-status contract of the `lfm` binary:
//!
//! - 0 on success (including budgeted chaos runs);
//! - 1 degraded — a table generator panicked but was contained, or
//!   `--log-jsonl` lost events to write errors;
//! - 2 on usage errors.

use std::process::{Command, Output};

fn lfm(args: &[&str]) -> Command {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_lfm"));
    cmd.args(args);
    cmd
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn clean_tables_run_exits_zero() {
    let out = lfm(&["tables", "t2"]).output().expect("spawn lfm");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("T2:"));
    assert!(!stdout(&out).contains("FAILED"));
}

#[test]
fn injected_table_panic_degrades_but_does_not_abort() {
    let out = lfm(&["tables", "t3"])
        .env("LFM_INJECT_PANIC", "t3")
        .output()
        .expect("spawn lfm");
    // Contained: the process exits 1 through the normal path (an abort
    // would be a signal death with no exit code on unix).
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    assert!(
        stdout(&out).contains("FAILED t3: injected panic for artifact t3"),
        "stdout: {}",
        stdout(&out)
    );
}

#[test]
fn injected_panic_leaves_other_artifacts_standing() {
    // Inject into t3 but render t2: the poison is artifact-keyed, so
    // the run is clean.
    let out = lfm(&["tables", "t2"])
        .env("LFM_INJECT_PANIC", "t3")
        .output()
        .expect("spawn lfm");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("T2:"));
}

#[test]
fn chaos_deadline_kernel_run_exits_zero_and_reports_level() {
    let out = lfm(&["kernel", "abba", "--chaos", "42", "--deadline", "10"])
        .output()
        .expect("spawn lfm");
    assert_eq!(out.status.code(), Some(0), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("chaos seed: 42"), "{text}");
    assert!(text.contains("level: "), "{text}");
    assert!(text.contains("confidence: "), "{text}");
    assert!(text.contains("(proved)"), "{text}");
    assert!(!text.contains("BROKEN"), "{text}");
}

#[test]
fn usage_error_exits_two() {
    let out = lfm(&["frobnicate"]).output().expect("spawn lfm");
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("frobnicate"));
}

#[test]
fn bad_deadline_exits_two() {
    let out = lfm(&["kernel", "abba", "--deadline", "-1"])
        .output()
        .expect("spawn lfm");
    assert_eq!(out.status.code(), Some(2));
    assert!(stderr(&out).contains("--deadline"));
}

/// `--log-jsonl` pointed at a device that rejects every write: the run
/// completes, reports the losses, and exits degraded.
#[cfg(target_os = "linux")]
#[test]
fn lost_log_events_exit_degraded() {
    if !std::path::Path::new("/dev/full").exists() {
        eprintln!("skipping: /dev/full not available");
        return;
    }
    let out = lfm(&["--log-jsonl", "/dev/full", "kernel", "counter_rmw"])
        .output()
        .expect("spawn lfm");
    assert_eq!(out.status.code(), Some(1), "stderr: {}", stderr(&out));
    // The exploration itself still printed its results.
    assert!(stdout(&out).contains("buggy:"), "{}", stdout(&out));
    assert!(stderr(&out).contains("lost"), "{}", stderr(&out));
}
