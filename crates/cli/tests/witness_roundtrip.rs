//! Round-trip and robustness properties of the `lfm-trace/v1` witness
//! artifact, exercised across the whole kernel registry: serializing a
//! captured witness, parsing it back, and re-serializing must be a
//! byte-for-byte identity; a parsed artifact must replay to the recorded
//! outcome; and damaged documents must fail with diagnostics, never
//! panics.

use lfm_kernels::registry;
use lfm_sim::{Explorer, Witness, WitnessError};

const MAX_STEPS: usize = 5_000;

/// First failing witness for a kernel, if exploration finds one.
fn witness_of(kernel: &lfm_kernels::Kernel) -> Option<(lfm_sim::Program, Witness)> {
    let program = kernel.buggy();
    let report = Explorer::new(&program).stop_on_first_failure().run();
    let (schedule, _) = report.first_failure?;
    let witness = Witness::capture(&program, kernel.id, &schedule, MAX_STEPS);
    Some((program, witness))
}

#[test]
fn serialize_parse_reserialize_is_identity_for_every_kernel() {
    let mut checked = 0usize;
    for kernel in registry::all() {
        let Some((_, witness)) = witness_of(&kernel) else {
            continue;
        };
        let text = witness.to_json();
        let parsed = Witness::from_json(&text)
            .unwrap_or_else(|e| panic!("{}: parse failed: {e}", kernel.id));
        assert_eq!(text, parsed.to_json(), "{}: round trip drifted", kernel.id);
        checked += 1;
    }
    // Every buggy kernel variant in the registry has a reachable failure.
    assert_eq!(checked, registry::all().len());
}

#[test]
fn parsed_witness_replays_to_the_recorded_outcome() {
    for kernel in registry::all() {
        let Some((program, witness)) = witness_of(&kernel) else {
            continue;
        };
        let parsed = Witness::from_json(&witness.to_json()).expect("round trip");
        let outcome = parsed
            .replay(&program)
            .unwrap_or_else(|e| panic!("{}: replay failed: {e}", kernel.id));
        assert_eq!(
            outcome.to_string(),
            parsed.outcome_display,
            "{}: replay outcome drifted",
            kernel.id
        );
    }
}

#[test]
fn truncated_documents_fail_with_diagnostics_not_panics() {
    let kernel = registry::by_id("counter_rmw").expect("known kernel");
    let (_, witness) = witness_of(&kernel).expect("counter_rmw has a failure");
    let text = witness.to_json().trim_end().to_owned();
    for cut in (0..text.len()).step_by(11) {
        let err = Witness::from_json(&text[..cut])
            .err()
            .unwrap_or_else(|| panic!("truncation at {cut} parsed"));
        assert!(!err.to_string().is_empty(), "empty diagnostic at {cut}");
    }
}

#[test]
fn schema_and_fingerprint_mismatches_are_diagnosed() {
    let kernel = registry::by_id("counter_rmw").expect("known kernel");
    let (_, witness) = witness_of(&kernel).expect("counter_rmw has a failure");

    let wrong_schema = witness.to_json().replace("lfm-trace/v1", "lfm-trace/v0");
    assert!(matches!(
        Witness::from_json(&wrong_schema),
        Err(WitnessError::SchemaMismatch { .. })
    ));

    // Replaying against a different program is a fingerprint mismatch,
    // not a confusing outcome difference.
    let other = registry::by_id("abba").expect("known kernel").buggy();
    match witness.replay(&other) {
        Err(WitnessError::FingerprintMismatch { .. }) => {}
        other => panic!("expected fingerprint mismatch, got {other:?}"),
    }
}
