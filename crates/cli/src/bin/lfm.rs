//! The `lfm` binary: a thin shim over `lfm_cli::{parse, run}`.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lfm_cli::parse(&args) {
        Ok(command) => print!("{}", lfm_cli::run(command)),
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("{}", lfm_cli::HELP);
            std::process::exit(2);
        }
    }
}
