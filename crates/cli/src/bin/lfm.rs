//! The `lfm` binary: a thin shim over `lfm_cli::{parse_invocation, run_opts}`.
//!
//! Exit status: 0 success; 1 degraded (a contained table-generator
//! panic, or `--log-jsonl` lost events to write errors); 2 usage error.
//!
//! An always-on [`FlightRecorder`] tees every structured event into a
//! bounded in-memory ring. On panic, on a degraded exit, or when a
//! `--deadline` trip cut exploration short, the recorder's tail is
//! dumped as `lfm-obs/v1` JSONL to `lfm-flight.jsonl` (override with
//! `LFM_FLIGHT_DUMP=<path>`) so the last moments of the run survive for
//! inspection. Clean exits leave no dump behind.

use std::io::BufWriter;
use std::sync::Arc;

use lfm_obs::{FlightRecorder, JsonlSink, NoopSink, Sink, TeeSink};

/// Where the flight-recorder tail goes when a run ends badly.
fn dump_path() -> String {
    std::env::var("LFM_FLIGHT_DUMP").unwrap_or_else(|_| "lfm-flight.jsonl".to_owned())
}

fn dump_flight(flight: &FlightRecorder, why: &str) {
    let path = dump_path();
    match flight.dump_to_path(&path) {
        Ok(()) => eprintln!("flight recorder ({why}): {path}"),
        Err(err) => eprintln!("flight recorder dump failed: {path}: {err}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lfm_cli::parse_invocation(&args) {
        Ok(invocation) => {
            // Concrete handle kept for the durability contract: fsync
            // (not just flush) the log before deciding the exit code.
            let mut jsonl: Option<Arc<JsonlSink<BufWriter<std::fs::File>>>> = None;
            let user_sink: Arc<dyn Sink> = match &invocation.log_jsonl {
                Some(path) => match JsonlSink::create(path) {
                    Ok(sink) => {
                        let sink = Arc::new(sink);
                        jsonl = Some(Arc::clone(&sink));
                        sink
                    }
                    Err(err) => {
                        eprintln!("error: cannot open log file `{path}`: {err}");
                        std::process::exit(2);
                    }
                },
                None => Arc::new(NoopSink),
            };
            // The flight recorder sees every event the user sink sees;
            // it never reports lost events (a ring overwrites, it does
            // not fail), so teeing cannot degrade a clean run.
            let flight = Arc::new(FlightRecorder::new());
            let sink: Arc<dyn Sink> = Arc::new(TeeSink::new(vec![
                Arc::clone(&user_sink),
                Arc::clone(&flight) as Arc<dyn Sink>,
            ]));
            // A panic anywhere (contained or not) dumps the ring before
            // the default hook prints the backtrace.
            let panic_flight = Arc::clone(&flight);
            let prior_hook = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                dump_flight(&panic_flight, "panic");
                prior_hook(info);
            }));

            let opts = invocation.options();
            let out = lfm_cli::run_opts(invocation.command, Arc::clone(&sink), &opts);
            let _ = std::panic::take_hook();
            print!("{}", out.text);
            if let Some(jsonl) = &jsonl {
                jsonl.sync();
            }
            let lost = user_sink.lost_events();
            if lost > 0 {
                eprintln!("warning: {lost} structured event(s) lost to log write errors");
            }
            let degraded = out.degraded || lost > 0;
            if degraded {
                dump_flight(&flight, "degraded exit");
                std::process::exit(1);
            }
            if out.deadline_tripped {
                // Not an error — the budget worked as designed — but
                // the truncated run's tail is worth keeping.
                dump_flight(&flight, "deadline trip");
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("{}", lfm_cli::HELP);
            std::process::exit(2);
        }
    }
}
