//! The `lfm` binary: a thin shim over `lfm_cli::{parse_invocation, run_with}`.

use std::sync::Arc;

use lfm_obs::{JsonlSink, NoopSink, Sink};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lfm_cli::parse_invocation(&args) {
        Ok(invocation) => {
            let sink: Arc<dyn Sink> = match &invocation.log_jsonl {
                Some(path) => match JsonlSink::create(path) {
                    Ok(sink) => Arc::new(sink),
                    Err(err) => {
                        eprintln!("error: cannot open log file `{path}`: {err}");
                        std::process::exit(2);
                    }
                },
                None => Arc::new(NoopSink),
            };
            print!(
                "{}",
                lfm_cli::run_with(invocation.command, Arc::clone(&sink))
            );
            sink.flush();
        }
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("{}", lfm_cli::HELP);
            std::process::exit(2);
        }
    }
}
