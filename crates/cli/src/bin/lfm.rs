//! The `lfm` binary: a thin shim over `lfm_cli::{parse_invocation, run_opts}`.
//!
//! Exit status: 0 success; 1 degraded (a contained table-generator
//! panic, or `--log-jsonl` lost events to write errors); 2 usage error.

use std::sync::Arc;

use lfm_obs::{JsonlSink, NoopSink, Sink};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match lfm_cli::parse_invocation(&args) {
        Ok(invocation) => {
            let sink: Arc<dyn Sink> = match &invocation.log_jsonl {
                Some(path) => match JsonlSink::create(path) {
                    Ok(sink) => Arc::new(sink),
                    Err(err) => {
                        eprintln!("error: cannot open log file `{path}`: {err}");
                        std::process::exit(2);
                    }
                },
                None => Arc::new(NoopSink),
            };
            let opts = invocation.options();
            let out = lfm_cli::run_opts(invocation.command, Arc::clone(&sink), &opts);
            print!("{}", out.text);
            sink.flush();
            let lost = sink.lost_events();
            if lost > 0 {
                eprintln!("warning: {lost} structured event(s) lost to log write errors");
            }
            if out.degraded || lost > 0 {
                std::process::exit(1);
            }
        }
        Err(err) => {
            eprintln!("error: {err}");
            eprintln!("{}", lfm_cli::HELP);
            std::process::exit(2);
        }
    }
}
