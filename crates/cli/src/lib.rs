//! # lfm-cli — the `lfm` command line
//!
//! A small, dependency-free CLI over the reproduction:
//!
//! ```text
//! lfm list bugs [--app mysql] [--class deadlock]   # browse the corpus
//! lfm list kernels [--family deadlock]             # browse the kernels
//! lfm show <bug-id>                                # one record, full detail
//! lfm kernel <id>                                  # explore a kernel
//! lfm kernel <id> --source                         # paper-figure pseudo-code
//! lfm kernel <id> --stats                          # exploration metrics
//! lfm kernel <id> --chaos 42                       # seeded fault injection
//! lfm kernel <id> --deadline 10                    # budgeted, may degrade
//! lfm explore <id> --jobs 4                        # parallel exploration
//! lfm explore <id> --progress                      # periodic progress estimates
//! lfm witness <id> --out w.json --chrome t.json   # minimized portable witness
//! lfm replay w.json                                # verify a saved witness
//! lfm tables [t1..t9|f1..f5|escope|edetect|etest|ecov|etm|echaos|epar|edpor|efuse|ewit|eobs|eserve|findings]
//! lfm serve --addr 127.0.0.1:0 --workers 4         # model-checking service
//! lfm bench-serve --chaos-net 42 --shutdown        # closed-loop load run
//! lfm version                                      # binary + schema versions
//! lfm --log-jsonl run.jsonl kernel <id>            # structured event log
//! lfm --metrics m.txt explore <id>                 # OpenMetrics exposition
//! ```
//!
//! The argument parser is hand-rolled (the offline dependency set has no
//! CLI crate) and unit-tested here; `src/bin/lfm.rs` is a thin shim.
//!
//! # Exit status
//!
//! The binary exits 0 on success, **1 degraded** (a table generator
//! panicked and was contained, or `--log-jsonl` lost events to write
//! errors), and **2** on a usage error.

#![warn(missing_docs)]

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use lfm_bench::Artifact;
use lfm_corpus::{App, BugClass, Corpus};
use lfm_kernels::{registry, Family, Kernel, Variant};
use lfm_obs::{
    fmt_duration, ChromeTraceSink, NoopSink, PhaseProfiler, ProgressLineSink, ProgressTracker,
    Registry, Sink, StatsTable, Stopwatch, TeeSink,
};
use lfm_sim::{
    minimize, pseudocode, Budget, BudgetedExplorer, Explorer, FaultPlan, ParExplorer, Truncation,
    Witness,
};

// `lfm_serve` items are used through their crate path in the serve
// runners — the service surface is small enough that qualified names
// read better than another import block.

/// A parsed CLI invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command {
    /// `lfm list bugs [--app X] [--class Y]`
    ListBugs {
        /// Application filter.
        app: Option<App>,
        /// Class filter.
        class: Option<BugClass>,
    },
    /// `lfm list kernels [--family X]`
    ListKernels {
        /// Family filter.
        family: Option<Family>,
    },
    /// `lfm show <bug-id>`
    Show {
        /// The record id.
        id: String,
    },
    /// `lfm kernel <id> [--source] [--witness] [--stats]`
    Kernel {
        /// The kernel id.
        id: String,
        /// Print pseudo-code instead of exploring.
        source: bool,
        /// Print the failure witness as an interleaving timeline.
        witness: bool,
        /// Print exploration metrics (schedules/sec, snapshots, prunes,
        /// per-phase wall time) after the results.
        stats: bool,
    },
    /// `lfm explore <id> [--jobs N] [--dpor] [--no-fuse] [--stats]
    /// [--progress]`
    Explore {
        /// The kernel id.
        id: String,
        /// Worker threads (default: one per available core, capped
        /// at 8).
        jobs: Option<usize>,
        /// Source-set dynamic partial-order reduction: prune
        /// interleavings that only reorder independent steps. Outcome
        /// kinds are preserved; schedule counts shrink. Ignored under
        /// `--chaos` (step-indexed faults break trace equivalence).
        dpor: bool,
        /// Disable invisible-step fusion, restoring a branch point at
        /// every multi-enabled state. Fusion is on by default (it
        /// preserves outcome sets and shrinks schedule counts); the
        /// flag exists as the differential baseline and escape hatch.
        no_fuse: bool,
        /// Print per-worker scheduling counters and phase-attributed
        /// wall time after the report.
        stats: bool,
        /// Emit periodic progress-estimate lines (tree-size estimate,
        /// fraction explored, throughput trend, ETA) to stderr.
        progress: bool,
    },
    /// `lfm witness <kernel-id> [--out <path>] [--chrome <path>]`
    Witness {
        /// The kernel id.
        id: String,
        /// Where to save the witness artifact (default:
        /// `<id>.witness.json`).
        out: Option<String>,
        /// Also export a Chrome trace-event file for Perfetto.
        chrome: Option<String>,
    },
    /// `lfm replay <witness.json>`
    Replay {
        /// Path to a saved `lfm-trace/v1` witness.
        path: String,
    },
    /// `lfm export`
    Export,
    /// `lfm version`: binary version plus every artifact schema.
    Version,
    /// `lfm tables [artifact]`
    Tables {
        /// Specific artifact, or everything.
        only: Option<Artifact>,
        /// Markdown output.
        markdown: bool,
    },
    /// `lfm serve [--addr A] [--workers N] [--queue N] [--max-conns N]
    /// [--dpor] [--trace <path>] [--trace-slow-ms N]`
    Serve {
        /// Bind address (default `127.0.0.1:0`, a free port).
        addr: Option<String>,
        /// Run every DFS rung with source-set DPOR (chaos requests and
        /// the preemption-bounded rung fall back to the classic
        /// search).
        dpor: bool,
        /// Explorer worker pool size.
        workers: Option<usize>,
        /// Job queue bound (also the admission ladder's shed point).
        queue: Option<usize>,
        /// Maximum simultaneously open connections.
        max_conns: Option<usize>,
        /// Capture every request's stage timeline and write a
        /// Perfetto-loadable `lfm-serve-trace/v1` dump here at drain.
        trace: Option<String>,
        /// Always capture requests slower than this, even without
        /// `--trace` (the slow-request flight recorder).
        trace_slow_ms: Option<u64>,
    },
    /// `lfm top --addr A [--interval-ms N] [--once]`
    Top {
        /// Server to poll (required: there is no default port).
        addr: String,
        /// Refresh interval.
        interval_ms: u64,
        /// Print one snapshot and exit (scripts, CI).
        once: bool,
    },
    /// `lfm bench-serve [--addr A] [--clients N] [--requests N]
    /// [--seed S] [--chaos-net S] [--out path] [--shutdown]`
    BenchServe {
        /// Target server; when absent an in-process server is started.
        addr: Option<String>,
        /// Concurrent client threads.
        clients: Option<usize>,
        /// Requests per client.
        requests: Option<usize>,
        /// Seed for the zipf mix and retry jitter.
        seed: Option<u64>,
        /// Put a seeded chaos proxy between clients and server.
        chaos_net: Option<u64>,
        /// Write the `lfm-bench-serve/v1` report here.
        out: Option<String>,
        /// Send the server a graceful wire shutdown after the run.
        shutdown: bool,
    },
    /// `lfm help`
    Help,
}

/// A CLI usage error with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UsageError(pub String);

impl fmt::Display for UsageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for UsageError {}

fn parse_app(s: &str) -> Result<App, UsageError> {
    match s.to_ascii_lowercase().as_str() {
        "mysql" => Ok(App::MySql),
        "apache" => Ok(App::Apache),
        "mozilla" => Ok(App::Mozilla),
        "openoffice" => Ok(App::OpenOffice),
        other => Err(UsageError(format!(
            "unknown app `{other}` (mysql|apache|mozilla|openoffice)"
        ))),
    }
}

fn parse_class(s: &str) -> Result<BugClass, UsageError> {
    match s.to_ascii_lowercase().as_str() {
        "deadlock" | "d" => Ok(BugClass::Deadlock),
        "non-deadlock" | "nondeadlock" | "nd" => Ok(BugClass::NonDeadlock),
        other => Err(UsageError(format!(
            "unknown class `{other}` (deadlock|non-deadlock)"
        ))),
    }
}

fn parse_family(s: &str) -> Result<Family, UsageError> {
    match s.to_ascii_lowercase().as_str() {
        "atomicity" => Ok(Family::AtomicitySingleVar),
        "order" => Ok(Family::Order),
        "multivar" | "multi-variable" => Ok(Family::MultiVariable),
        "deadlock" => Ok(Family::Deadlock),
        "other" => Ok(Family::OtherNonDeadlock),
        other => Err(UsageError(format!(
            "unknown family `{other}` (atomicity|order|multivar|deadlock|other)"
        ))),
    }
}

/// A parsed invocation: the command plus global options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Invocation {
    /// The command to run.
    pub command: Command,
    /// `--log-jsonl <path>`: stream structured events to a JSONL file.
    pub log_jsonl: Option<String>,
    /// `--chaos <seed>`: inject a deterministic [`FaultPlan`].
    pub chaos: Option<u64>,
    /// `--deadline <secs>`: wall-clock budget for kernel exploration.
    pub deadline: Option<Duration>,
    /// `--metrics <path>`: write an OpenMetrics text exposition.
    pub metrics: Option<String>,
}

impl Invocation {
    /// The [`RunOptions`] carried by this invocation's global flags.
    pub fn options(&self) -> RunOptions {
        RunOptions {
            chaos: self.chaos,
            deadline: self.deadline,
            metrics: self.metrics.clone(),
        }
    }
}

/// Parses the argument vector (without the program name), extracting
/// global options (`--log-jsonl <path>`, `--chaos <seed>`,
/// `--deadline <secs>`, `--metrics <path>`, accepted anywhere) before
/// the command grammar.
pub fn parse_invocation(args: &[String]) -> Result<Invocation, UsageError> {
    let mut rest = Vec::with_capacity(args.len());
    let mut log_jsonl = None;
    let mut chaos = None;
    let mut deadline = None;
    let mut metrics = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        if arg == "--log-jsonl" {
            let path = it
                .next()
                .ok_or_else(|| UsageError("--log-jsonl needs a file path".into()))?;
            log_jsonl = Some(path.clone());
        } else if arg == "--chaos" {
            let v = it
                .next()
                .ok_or_else(|| UsageError("--chaos needs a seed".into()))?;
            let seed: u64 = v
                .parse()
                .map_err(|_| UsageError(format!("--chaos seed `{v}` is not a u64")))?;
            chaos = Some(seed);
        } else if arg == "--deadline" {
            let v = it
                .next()
                .ok_or_else(|| UsageError("--deadline needs a duration in seconds".into()))?;
            let secs: f64 = v
                .parse()
                .map_err(|_| UsageError(format!("--deadline `{v}` is not a number of seconds")))?;
            if !secs.is_finite() || secs <= 0.0 {
                return Err(UsageError(format!(
                    "--deadline must be a positive number of seconds (got `{v}`)"
                )));
            }
            deadline = Some(Duration::from_secs_f64(secs));
        } else if arg == "--metrics" {
            let path = it
                .next()
                .ok_or_else(|| UsageError("--metrics needs a file path".into()))?;
            metrics = Some(path.clone());
        } else {
            rest.push(arg.clone());
        }
    }
    Ok(Invocation {
        command: parse(&rest)?,
        log_jsonl,
        chaos,
        deadline,
        metrics,
    })
}

/// Parses the argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, UsageError> {
    let mut it = args.iter().map(String::as_str);
    match it.next() {
        None | Some("help") | Some("--help") | Some("-h") => Ok(Command::Help),
        Some("list") => match it.next() {
            Some("bugs") => {
                let mut app = None;
                let mut class = None;
                while let Some(flag) = it.next() {
                    match flag {
                        "--app" => {
                            let v = it
                                .next()
                                .ok_or_else(|| UsageError("--app needs a value".into()))?;
                            app = Some(parse_app(v)?);
                        }
                        "--class" => {
                            let v = it
                                .next()
                                .ok_or_else(|| UsageError("--class needs a value".into()))?;
                            class = Some(parse_class(v)?);
                        }
                        other => {
                            return Err(UsageError(format!("unknown flag `{other}`")));
                        }
                    }
                }
                Ok(Command::ListBugs { app, class })
            }
            Some("kernels") => {
                let mut family = None;
                while let Some(flag) = it.next() {
                    match flag {
                        "--family" => {
                            let v = it
                                .next()
                                .ok_or_else(|| UsageError("--family needs a value".into()))?;
                            family = Some(parse_family(v)?);
                        }
                        other => {
                            return Err(UsageError(format!("unknown flag `{other}`")));
                        }
                    }
                }
                Ok(Command::ListKernels { family })
            }
            other => Err(UsageError(format!(
                "usage: lfm list bugs|kernels (got {other:?})"
            ))),
        },
        Some("show") => {
            let id = it
                .next()
                .ok_or_else(|| UsageError("usage: lfm show <bug-id>".into()))?;
            Ok(Command::Show { id: id.to_owned() })
        }
        Some("kernel") => {
            let id = it.next().ok_or_else(|| {
                UsageError("usage: lfm kernel <id> [--source] [--witness] [--stats]".into())
            })?;
            let mut source = false;
            let mut witness = false;
            let mut stats = false;
            for flag in it {
                match flag {
                    "--source" => source = true,
                    "--witness" => witness = true,
                    "--stats" => stats = true,
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Kernel {
                id: id.to_owned(),
                source,
                witness,
                stats,
            })
        }
        Some("explore") => {
            let id = it.next().ok_or_else(|| {
                UsageError(
                    "usage: lfm explore <id> [--jobs N] [--dpor] [--no-fuse] [--stats] \
                     [--progress]"
                        .into(),
                )
            })?;
            let mut jobs = None;
            let mut dpor = false;
            let mut no_fuse = false;
            let mut stats = false;
            let mut progress = false;
            while let Some(flag) = it.next() {
                match flag {
                    "--jobs" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--jobs needs a worker count".into()))?;
                        let n: usize = v.parse().map_err(|_| {
                            UsageError(format!("--jobs `{v}` is not a worker count"))
                        })?;
                        if n == 0 {
                            return Err(UsageError("--jobs must be at least 1".into()));
                        }
                        jobs = Some(n);
                    }
                    "--dpor" => dpor = true,
                    "--no-fuse" => no_fuse = true,
                    "--stats" => stats = true,
                    "--progress" => progress = true,
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Explore {
                id: id.to_owned(),
                jobs,
                dpor,
                no_fuse,
                stats,
                progress,
            })
        }
        Some("witness") => {
            let id = it.next().ok_or_else(|| {
                UsageError("usage: lfm witness <kernel-id> [--out <path>] [--chrome <path>]".into())
            })?;
            let mut out = None;
            let mut chrome = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--out" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--out needs a file path".into()))?;
                        out = Some(v.to_owned());
                    }
                    "--chrome" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--chrome needs a file path".into()))?;
                        chrome = Some(v.to_owned());
                    }
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Witness {
                id: id.to_owned(),
                out,
                chrome,
            })
        }
        Some("replay") => {
            let path = it
                .next()
                .ok_or_else(|| UsageError("usage: lfm replay <witness.json>".into()))?;
            if it.next().is_some() {
                return Err(UsageError("usage: lfm replay <witness.json>".into()));
            }
            Ok(Command::Replay {
                path: path.to_owned(),
            })
        }
        Some("export") => Ok(Command::Export),
        Some("version") | Some("--version") | Some("-V") => Ok(Command::Version),
        Some("tables") => {
            let mut only = None;
            let mut markdown = false;
            for arg in it {
                match arg {
                    "--markdown" => markdown = true,
                    sel => {
                        only = Some(Artifact::parse(sel).ok_or_else(|| {
                            UsageError(format!(
                                "unknown artifact `{sel}` (t1..t9, f1..f5, escope, \
                                 edetect, etest, ecov, etm, echaos, epar, eperf, \
                                 edpor, efuse, ewit, eobs, eserve, findings)"
                            ))
                        })?);
                    }
                }
            }
            Ok(Command::Tables { only, markdown })
        }
        Some("serve") => {
            let mut addr = None;
            let mut dpor = false;
            let mut workers = None;
            let mut queue = None;
            let mut max_conns = None;
            let mut trace = None;
            let mut trace_slow_ms = None;
            while let Some(flag) = it.next() {
                match flag {
                    "--addr" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--addr needs a bind address".into()))?;
                        addr = Some(v.to_owned());
                    }
                    "--workers" => {
                        workers = Some(parse_count(it.next(), "--workers", "a worker count")?);
                    }
                    "--queue" => {
                        queue = Some(parse_count(it.next(), "--queue", "a queue bound")?);
                    }
                    "--max-conns" => {
                        max_conns =
                            Some(parse_count(it.next(), "--max-conns", "a connection cap")?);
                    }
                    "--trace" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--trace needs a file path".into()))?;
                        trace = Some(v.to_owned());
                    }
                    "--trace-slow-ms" => {
                        let v = it.next().ok_or_else(|| {
                            UsageError("--trace-slow-ms needs a millisecond threshold".into())
                        })?;
                        trace_slow_ms = Some(v.parse().map_err(|_| {
                            UsageError(format!("--trace-slow-ms `{v}` is not a millisecond count"))
                        })?);
                    }
                    "--dpor" => dpor = true,
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::Serve {
                addr,
                dpor,
                workers,
                queue,
                max_conns,
                trace,
                trace_slow_ms,
            })
        }
        Some("top") => {
            let mut addr = None;
            let mut interval_ms = 1_000;
            let mut once = false;
            while let Some(flag) = it.next() {
                match flag {
                    "--addr" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--addr needs a server address".into()))?;
                        addr = Some(v.to_owned());
                    }
                    "--interval-ms" => {
                        let v = it.next().ok_or_else(|| {
                            UsageError("--interval-ms needs a millisecond interval".into())
                        })?;
                        interval_ms = v.parse().map_err(|_| {
                            UsageError(format!("--interval-ms `{v}` is not a millisecond count"))
                        })?;
                        if interval_ms == 0 {
                            return Err(UsageError("--interval-ms must be at least 1".into()));
                        }
                    }
                    "--once" => once = true,
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            let addr = addr
                .ok_or_else(|| UsageError("usage: lfm top --addr <host:port> [--once]".into()))?;
            Ok(Command::Top {
                addr,
                interval_ms,
                once,
            })
        }
        Some("bench-serve") => {
            let mut addr = None;
            let mut clients = None;
            let mut requests = None;
            let mut seed = None;
            let mut chaos_net = None;
            let mut out = None;
            let mut shutdown = false;
            while let Some(flag) = it.next() {
                match flag {
                    "--addr" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--addr needs a server address".into()))?;
                        addr = Some(v.to_owned());
                    }
                    "--clients" => {
                        clients = Some(parse_count(it.next(), "--clients", "a client count")?);
                    }
                    "--requests" => {
                        requests = Some(parse_count(it.next(), "--requests", "a request count")?);
                    }
                    "--seed" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--seed needs a u64 seed".into()))?;
                        seed = Some(
                            v.parse()
                                .map_err(|_| UsageError(format!("--seed `{v}` is not a u64")))?,
                        );
                    }
                    "--chaos-net" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--chaos-net needs a u64 seed".into()))?;
                        chaos_net = Some(v.parse().map_err(|_| {
                            UsageError(format!("--chaos-net seed `{v}` is not a u64"))
                        })?);
                    }
                    "--out" => {
                        let v = it
                            .next()
                            .ok_or_else(|| UsageError("--out needs a file path".into()))?;
                        out = Some(v.to_owned());
                    }
                    "--shutdown" => shutdown = true,
                    other => return Err(UsageError(format!("unknown flag `{other}`"))),
                }
            }
            Ok(Command::BenchServe {
                addr,
                clients,
                requests,
                seed,
                chaos_net,
                out,
                shutdown,
            })
        }
        Some(other) => Err(UsageError(format!(
            "unknown command `{other}`; try `lfm help`"
        ))),
    }
}

/// Parses a required positive-count flag value.
fn parse_count(value: Option<&str>, flag: &str, what: &str) -> Result<usize, UsageError> {
    let v = value.ok_or_else(|| UsageError(format!("{flag} needs {what}")))?;
    let n: usize = v
        .parse()
        .map_err(|_| UsageError(format!("{flag} `{v}` is not {what}")))?;
    if n == 0 {
        return Err(UsageError(format!("{flag} must be at least 1")));
    }
    Ok(n)
}

/// The help text.
pub const HELP: &str = "\
lfm — Learning from Mistakes (ASPLOS 2008) reproduction CLI

USAGE:
  lfm list bugs [--app mysql|apache|mozilla|openoffice] [--class deadlock|non-deadlock]
  lfm list kernels [--family atomicity|order|multivar|deadlock|other]
  lfm show <bug-id>                 full detail of one corpus record
  lfm kernel <id>                   model-check a kernel (buggy + fixes)
  lfm kernel <id> --source          print the kernel as paper-figure pseudo-code
  lfm kernel <id> --witness         show the failure witness as a timeline
  lfm kernel <id> --stats           also print exploration metrics
  lfm explore <id> [--jobs N] [--dpor] [--no-fuse] [--stats] [--progress]
                                    model-check the buggy variant across N
                                    worker threads (default: all cores, max
                                    8); the merged report is bit-identical
                                    to the serial explorer's; --dpor prunes
                                    interleavings that only reorder
                                    independent steps (source-set dynamic
                                    partial-order reduction); --no-fuse
                                    disables invisible-step fusion (on by
                                    default: ops that touch nothing shared
                                    run inside their parent edge instead of
                                    branching); --stats adds
                                    per-worker scheduling counters and
                                    phase-attributed wall time; --progress
                                    streams periodic tree-size estimates
                                    (fraction explored, trend, ETA) to
                                    stderr
  lfm witness <id> [--out <path>] [--chrome <path>]
                                    find, minimize and save a portable
                                    lfm-trace/v1 witness (default out:
                                    <id>.witness.json); --chrome also writes
                                    a Perfetto-loadable trace-event file
  lfm replay <witness.json>         re-execute a saved witness and verify
                                    the recorded outcome bit-for-bit
  lfm export                        dump the corpus as JSON to stdout
  lfm tables [ARTIFACT] [--markdown]
                                    regenerate tables/figures/experiments
                                    (t1..t9, f1..f5, escope, edetect, etest,
                                     ecov, etm, echaos, epar, eperf, edpor,
                                     efuse, ewit, eobs, eserve, findings;
                                     default: everything)
  lfm serve [--addr A] [--workers N] [--queue N] [--max-conns N]
            [--dpor] [--trace <path>] [--trace-slow-ms N]
                                    run the fingerprint-keyed model-checking
                                    service (lfm-serve/v1 JSONL over TCP):
                                    caches reports by program fingerprint,
                                    degrades down the budget ladder under
                                    queue pressure, sheds past capacity;
                                    stops on a wire shutdown request and
                                    drains in-flight work; --chaos seeds
                                    sim-level faults into every exploration,
                                    --deadline sets the default per-request
                                    wall budget, --metrics writes a final
                                    exposition at drain; --trace captures
                                    every request's stage timeline and
                                    writes a Perfetto-loadable
                                    lfm-serve-trace/v1 dump at drain;
                                    --trace-slow-ms always captures
                                    requests slower than N ms even without
                                    --trace
  lfm top --addr A [--interval-ms N] [--once]
                                    live server introspection over the wire
                                    (lfm-serve-stats/v1): uptime, queue
                                    depth, in-flight, hit/shed rates,
                                    per-stage and per-degrade-level p50/p99;
                                    refreshes every second until the server
                                    goes away; --once prints a single
                                    snapshot and exits (scripts, CI)
  lfm bench-serve [--addr A] [--clients N] [--requests N] [--seed S]
                  [--chaos-net S] [--out path] [--shutdown]
                                    closed-loop zipf load against a server
                                    (an in-process one when --addr is
                                    absent): p50/p99 latency, cache hit
                                    rate, shed rate, degrade histogram,
                                    wrong-answer count; --chaos-net puts a
                                    seeded fault-injecting proxy on the
                                    wire; --out writes lfm-bench-serve/v1;
                                    --shutdown drains the server afterwards
  lfm version                       binary version + artifact schema versions
  lfm help

GLOBAL OPTIONS:
  --log-jsonl <path>                stream structured run events (explore,
                                    detect, stm scopes) to <path> as JSONL
  --chaos <seed>                    inject a seeded deterministic fault plan
                                    (spurious wakeups, try_lock failures,
                                    forced tx aborts) into kernel exploration
  --deadline <secs>                 wall-clock budget for kernel exploration;
                                    degrades exhaustive -> sleep-set ->
                                    preemption-bounded -> PCT sampling and
                                    reports the level and confidence used
  --metrics <path>                  write an OpenMetrics/Prometheus text
                                    exposition describing the run (explore
                                    and tables commands)

EXIT STATUS:
  0  success
  1  degraded: a table generator panicked (contained, see FAILED lines)
     or --log-jsonl lost events to write errors
  2  usage error

On panic or degraded exit the binary dumps its flight recorder (the
last structured events, lfm-obs/v1 JSONL) to lfm-flight.jsonl or
$LFM_FLIGHT_DUMP; a wall-deadline trip dumps too but still exits 0.
";

/// Options carried by the global `--chaos` / `--deadline` /
/// `--metrics` flags. Chaos and deadline affect the `kernel` and
/// `explore` commands only: `witness` and `source` renderings are
/// deterministic and ignore them. Metrics are honored by `explore`
/// and `tables`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunOptions {
    /// Seed for a deterministic [`FaultPlan`] (`--chaos`).
    pub chaos: Option<u64>,
    /// Wall-clock budget across all variants of a kernel (`--deadline`).
    pub deadline: Option<Duration>,
    /// Path for an OpenMetrics text exposition (`--metrics`).
    pub metrics: Option<String>,
}

impl RunOptions {
    fn active(&self) -> bool {
        self.chaos.is_some() || self.deadline.is_some()
    }
}

/// What a command run produced.
#[derive(Debug, Clone)]
pub struct RunOutput {
    /// The text to print.
    pub text: String,
    /// `true` when part of the work failed but was contained (a table
    /// generator panicked, or an artifact could not be written); the
    /// binary exits 1.
    pub degraded: bool,
    /// `true` when exploration was cut short by the `--deadline` wall
    /// budget. Not an error (the binary still exits 0), but the binary
    /// dumps its flight recorder so the truncated run can be inspected.
    pub deadline_tripped: bool,
}

/// Executes a parsed command, returning the text to print.
pub fn run(command: Command) -> String {
    run_with(command, Arc::new(NoopSink))
}

/// [`run`] with a structured-event sink: exploration streams `explore`
/// scope events to `sink` (the `--log-jsonl` path). Output text is
/// identical whatever the sink.
pub fn run_with(command: Command, sink: Arc<dyn Sink>) -> String {
    run_opts(command, sink, &RunOptions::default()).text
}

/// [`run_with`] plus [`RunOptions`]: the full entry point used by the
/// binary. Chaos/deadline route the `kernel` command through a
/// [`BudgetedExplorer`]; the `tables` command renders each artifact
/// under panic isolation and reports degradation instead of aborting.
pub fn run_opts(command: Command, sink: Arc<dyn Sink>, opts: &RunOptions) -> RunOutput {
    let mut degraded = false;
    let text = match command {
        Command::Help => HELP.to_owned(),
        Command::ListBugs { app, class } => {
            let corpus = Corpus::full();
            let mut query = corpus.query();
            if let Some(app) = app {
                query = query.app(app);
            }
            if let Some(class) = class {
                query = query.class(class);
            }
            let bugs = query.collect();
            let mut out = format!("{} bugs\n", bugs.len());
            for bug in bugs {
                out.push_str(&format!(
                    "  {:22} {:11} {:12} {}\n",
                    bug.id.as_str(),
                    bug.app.to_string(),
                    bug.class().to_string(),
                    bug.title
                ));
            }
            out
        }
        Command::ListKernels { family } => {
            let kernels = match family {
                Some(f) => registry::by_family(f),
                None => registry::all(),
            };
            let mut out = format!("{} kernels\n", kernels.len());
            for k in kernels {
                out.push_str(&format!("  {k}\n"));
            }
            out
        }
        Command::Show { id } => {
            let corpus = Corpus::full();
            match corpus.get_str(&id) {
                None => format!("no bug `{id}` in the corpus (try `lfm list bugs`)\n"),
                Some(bug) => {
                    let mut out = format!("{bug}\n\n{}\n\n", bug.description);
                    out.push_str(&format!("  class:    {}\n", bug.class()));
                    if let Some(p) = bug.patterns() {
                        out.push_str(&format!("  pattern:  {p}\n"));
                    }
                    out.push_str(&format!("  threads:  {}\n", bug.threads));
                    if let Some(v) = bug.variables() {
                        out.push_str(&format!("  vars:     {v}\n"));
                    }
                    if let Some(a) = bug.accesses() {
                        out.push_str(&format!("  accesses: {a}\n"));
                    }
                    if let Some(r) = bug.resources() {
                        out.push_str(&format!("  resources:{r}\n"));
                    }
                    out.push_str(&format!("  fix:      {}\n", bug.fix()));
                    out.push_str(&format!("  TM:       {}\n", bug.tm));
                    if let Some(k) = &bug.kernel {
                        out.push_str(&format!("  kernel:   {k}   (run `lfm kernel {k}`)\n"));
                    }
                    out
                }
            }
        }
        Command::Kernel {
            id,
            source,
            witness,
            stats,
        } => {
            let Some(kernel) = registry::by_id(&id) else {
                return RunOutput {
                    text: format!("no kernel `{id}` (try `lfm list kernels`)\n"),
                    degraded: false,
                    deadline_tripped: false,
                };
            };
            if witness {
                let program = kernel.buggy();
                let report = Explorer::new(&program)
                    .stop_on_first_failure()
                    .with_sink(Arc::clone(&sink))
                    .run();
                let Some((schedule, outcome)) = report.first_failure else {
                    return RunOutput {
                        text: format!("kernel `{id}` produced no failure?!\n"),
                        degraded: false,
                        deadline_tripped: false,
                    };
                };
                let (trace, _) = lfm_sim::explore::trace_of(&program, &schedule, 5_000);
                let mut out = format!("{kernel}\nwitness outcome: {outcome}\n\n");
                out.push_str(&lfm_sim::render_timeline(&trace, Some(&program)));
                return RunOutput {
                    text: out,
                    degraded: false,
                    deadline_tripped: false,
                };
            }
            if source {
                let mut out = format!("// {kernel}\n// {}\n\n", kernel.description);
                out.push_str("// ---- buggy variant ----\n");
                out.push_str(&pseudocode(&kernel.buggy()));
                for &fix in kernel.fixes {
                    out.push_str(&format!("\n// ---- fixed: {fix} ----\n"));
                    out.push_str(&pseudocode(&kernel.build(Variant::Fixed(fix))));
                }
                out
            } else if opts.active() {
                return run_kernel_budgeted(&kernel, &id, stats, opts, &sink);
            } else {
                let mut out = format!("{kernel}\n  {}\n\n", kernel.description);
                let buggy = Explorer::new(&kernel.buggy())
                    .with_sink(Arc::clone(&sink))
                    .run();
                out.push_str(&format!(
                    "buggy: {} interleavings, {} manifest ({})\n",
                    buggy.schedules_run,
                    buggy.counts.failures(),
                    buggy.counts
                ));
                if let Some((schedule, outcome)) = &buggy.first_failure {
                    out.push_str(&format!("witness: [{schedule}] -> {outcome}\n"));
                }
                if let Some(reason) = buggy.truncation {
                    out.push_str(&format!("truncated by: {reason}\n"));
                }
                let mut fix_walls = Vec::new();
                for &fix in kernel.fixes {
                    let fixed = kernel.build(Variant::Fixed(fix));
                    let report = Explorer::new(&fixed)
                        .dedup_states()
                        .with_sink(Arc::clone(&sink))
                        .run();
                    out.push_str(&format!(
                        "fix {:20} -> {} failures over {} schedules{}{}\n",
                        fix.to_string(),
                        report.counts.failures(),
                        report.schedules_run,
                        if report.counts.failures() == 0 {
                            "  (proved)"
                        } else {
                            "  (BROKEN)"
                        },
                        match report.truncation {
                            Some(reason) => format!("  [truncated: {reason}]"),
                            None => String::new(),
                        }
                    ));
                    fix_walls.push((fix, report.stats.wall));
                }
                if stats {
                    let mut table = StatsTable::new(format!("stats ({id}, buggy variant)"));
                    table
                        .row("schedules", buggy.schedules_run)
                        .row("schedules/sec", format!("{:.1}", buggy.schedules_per_sec()))
                        .row("steps", buggy.steps_total)
                        .row("states/sec", format!("{:.1}", buggy.states_per_sec()))
                        .row("branch points", buggy.stats.branch_points)
                        .row("snapshots", buggy.stats.snapshots)
                        .row("snapshot bytes saved", buggy.stats.snapshot_bytes_saved)
                        .row("max depth", buggy.stats.max_depth)
                        .row("sleep-set prunes", buggy.sleep_pruned)
                        .row("dedup hits", buggy.states_deduped)
                        .row("preemption cutoffs", buggy.stats.preemption_limited)
                        .row(
                            "truncation",
                            match buggy.truncation {
                                Some(reason) => reason.to_string(),
                                None => "none (exhausted)".to_owned(),
                            },
                        )
                        .row("wall (buggy)", fmt_duration(buggy.stats.wall));
                    for (fix, wall) in fix_walls {
                        table.row(format!("wall (fix: {fix})"), fmt_duration(wall));
                    }
                    out.push('\n');
                    out.push_str(&table.to_string());
                }
                out
            }
        }
        Command::Explore {
            id,
            jobs,
            dpor,
            no_fuse,
            stats,
            progress,
        } => {
            let Some(kernel) = registry::by_id(&id) else {
                return RunOutput {
                    text: format!("no kernel `{id}` (try `lfm list kernels`)\n"),
                    degraded: false,
                    deadline_tripped: false,
                };
            };
            return run_explore(
                &kernel, &id, jobs, dpor, no_fuse, stats, progress, opts, &sink,
            );
        }
        Command::Witness { id, out, chrome } => {
            let Some(kernel) = registry::by_id(&id) else {
                return RunOutput {
                    text: format!("no kernel `{id}` (try `lfm list kernels`)\n"),
                    degraded: false,
                    deadline_tripped: false,
                };
            };
            return run_witness(&kernel, &id, out.as_deref(), chrome.as_deref(), &sink);
        }
        Command::Replay { path } => return run_replay(&path),
        Command::Serve {
            addr,
            dpor,
            workers,
            queue,
            max_conns,
            trace,
            trace_slow_ms,
        } => {
            return run_serve(
                ServeArgs {
                    addr,
                    dpor,
                    workers,
                    queue,
                    max_conns,
                    trace,
                    trace_slow_ms,
                },
                opts,
                &sink,
            )
        }
        Command::Top {
            addr,
            interval_ms,
            once,
        } => return run_top(&addr, interval_ms, once),
        Command::BenchServe {
            addr,
            clients,
            requests,
            seed,
            chaos_net,
            out,
            shutdown,
        } => {
            return run_bench_serve(
                &BenchServeArgs {
                    addr,
                    clients,
                    requests,
                    seed,
                    chaos_net,
                    out,
                    shutdown,
                },
                opts,
                &sink,
            )
        }
        Command::Export => lfm_corpus::to_json(&Corpus::full()),
        Command::Version => version_text(),
        Command::Tables { only, markdown } => {
            let corpus = Corpus::full();
            let artifacts = match only {
                Some(a) => vec![a],
                None => Artifact::all(),
            };
            let stopwatch = Stopwatch::start();
            let mut rendered_ok = 0u64;
            let mut failed = 0u64;
            let mut out = String::new();
            for artifact in artifacts {
                // Panic isolation: one broken generator marks the run
                // degraded but every other artifact still renders.
                match artifact.render_isolated(&corpus, markdown) {
                    Ok(rendered) => {
                        rendered_ok += 1;
                        out.push_str(&rendered);
                    }
                    Err(payload) => {
                        degraded = true;
                        failed += 1;
                        out.push_str(&format!("FAILED {}: {payload}\n", artifact.id()));
                    }
                }
                out.push('\n');
            }
            if let Some(path) = &opts.metrics {
                let mut registry = Registry::new();
                registry.counter(
                    "lfm_tables_artifacts_rendered",
                    "Artifacts rendered successfully.",
                    rendered_ok,
                );
                registry.counter(
                    "lfm_tables_artifacts_failed",
                    "Artifacts whose generator panicked (contained).",
                    failed,
                );
                registry.gauge(
                    "lfm_tables_wall_seconds",
                    "Wall-clock time regenerating the artifacts.",
                    stopwatch.elapsed().as_secs_f64(),
                );
                if let Err(e) = registry.write_to(path) {
                    degraded = true;
                    out.push_str(&format!("METRICS FAILED: {path}: {e}\n"));
                }
            }
            out
        }
    };
    RunOutput {
        text,
        degraded,
        deadline_tripped: false,
    }
}

/// The `version` command: the binary version plus the schema version of
/// every machine-readable artifact the toolchain writes, so a consumer
/// can check compatibility without generating one of each.
fn version_text() -> String {
    format!(
        "lfm {}\nschemas:\n  {:24}{}\n  {:24}{}\n  {:24}{}\n  {:24}{}\n  {:24}{}\n  \
         {:24}{}\n  {:24}{}\n",
        env!("CARGO_PKG_VERSION"),
        "flight recorder/metrics",
        lfm_obs::FLIGHT_SCHEMA,
        "witness",
        lfm_sim::WITNESS_SCHEMA,
        "bench explore baseline",
        lfm_bench::BENCH_EXPLORE_SCHEMA,
        "serve protocol",
        lfm_serve::SERVE_SCHEMA,
        "serve stats",
        lfm_serve::STATS_SCHEMA,
        "serve trace dump",
        lfm_serve::TRACE_DUMP_SCHEMA,
        "bench serve baseline",
        lfm_bench::BENCH_SERVE_SCHEMA,
    )
}

/// The `explore` command: one [`ParExplorer`] run over the kernel's
/// buggy variant — frontier sharded across `jobs` worker threads,
/// merged deterministically — reporting the same fields as the serial
/// explorer plus (with `--stats`) per-worker scheduling counters and
/// phase-attributed wall time. `--progress` tees periodic tree-size
/// estimates to stderr; `--metrics` writes an OpenMetrics exposition.
/// Observation never changes the report: profiling is write-only and
/// sampling-gated, and the estimator runs unconditionally.
#[allow(clippy::too_many_arguments)]
fn run_explore(
    kernel: &Kernel,
    id: &str,
    jobs: Option<usize>,
    dpor: bool,
    no_fuse: bool,
    stats: bool,
    progress: bool,
    opts: &RunOptions,
    sink: &Arc<dyn Sink>,
) -> RunOutput {
    let jobs = jobs.unwrap_or_else(ParExplorer::auto_jobs);
    let program = kernel.buggy();
    // Phase attribution rides on --stats or --metrics (the two surfaces
    // that show it); otherwise the profiler is a disabled no-op.
    let profiler = if stats || opts.metrics.is_some() {
        Arc::new(PhaseProfiler::sampling(PhaseProfiler::DEFAULT_SHIFT))
    } else {
        Arc::new(PhaseProfiler::disabled())
    };
    let run_sink: Arc<dyn Sink> = if progress {
        Arc::new(TeeSink::new(vec![
            Arc::clone(sink),
            Arc::new(ProgressLineSink::stderr()),
        ]))
    } else {
        Arc::clone(sink)
    };
    let mut explorer = ParExplorer::new(&program)
        .jobs(jobs)
        .dedup_states()
        .with_sink(run_sink)
        .profile(Arc::clone(&profiler));
    if dpor {
        explorer = explorer.dpor();
    }
    if no_fuse {
        explorer = explorer.no_fuse();
    }
    if progress {
        explorer = explorer.progress_every(ProgressTracker::DEFAULT_EVERY);
    }
    if let Some(seed) = opts.chaos {
        explorer = explorer.chaos(FaultPlan::new(seed));
    }
    if let Some(deadline) = opts.deadline {
        explorer = explorer.deadline(deadline);
    }
    let (report, par) = explorer.run_detailed();
    let mut degraded = false;

    let mut out = format!("{kernel}\n  {}\n\n", kernel.description);
    if let Some(seed) = opts.chaos {
        out.push_str(&format!("chaos seed: {seed}\n"));
    }
    if dpor {
        out.push_str(if opts.chaos.is_some() {
            "dpor: requested, disabled by --chaos (fault injection breaks trace equivalence)\n"
        } else {
            "dpor: on (source-set partial-order reduction)\n"
        });
    }
    if no_fuse {
        out.push_str("fuse: off (every multi-enabled state branches)\n");
    } else if opts.chaos.is_some() {
        out.push_str("fuse: disabled by --chaos (fault decisions are step-indexed)\n");
    }
    if let Some(deadline) = opts.deadline {
        out.push_str(&format!("deadline: {}\n", fmt_duration(deadline)));
    }
    out.push_str(&format!(
        "workers: {}  (merged report is bit-identical to the serial explorer's)\n",
        par.jobs
    ));
    out.push_str(&format!(
        "buggy: {} interleavings, {} manifest ({})\n",
        report.schedules_run,
        report.counts.failures(),
        report.counts
    ));
    if let Some((schedule, outcome)) = &report.first_failure {
        out.push_str(&format!("witness: [{schedule}] -> {outcome}\n"));
    }
    if let Some(reason) = report.truncation {
        out.push_str(&format!("truncated by: {reason}\n"));
    }
    if report.est_total_schedules > 0.0 {
        out.push_str(&format!(
            "est. total schedules: {:.0}\n",
            report.est_total_schedules
        ));
    }
    out.push_str(&format!(
        "wall: {}  ({:.1} schedules/sec)\n",
        fmt_duration(report.stats.wall),
        report.schedules_per_sec()
    ));
    // Coordinator phases (commit/hash/dedup) merged with every worker's
    // (snapshot/step/hash/steal/idle): one profile answering "where did
    // the wall time go" across the whole pool.
    let mut profile = profiler.snapshot();
    for worker in &par.profiles {
        profile.merge(worker);
    }
    if stats {
        let mut table = StatsTable::new(format!("parallel stats ({id}, {} workers)", par.jobs));
        table
            .row("tasks spawned", par.tasks_spawned)
            .row("wasted expansions", par.wasted_expansions)
            .row("states/sec", format!("{:.1}", report.states_per_sec()))
            .row("snapshot bytes saved", report.stats.snapshot_bytes_saved)
            .row("dedup hits (at merge)", report.states_deduped)
            .row("sleep-set prunes", report.sleep_pruned)
            .row("dpor prunes", report.dpor_pruned)
            .row("branch points", report.stats.branch_points)
            .row("fused steps", report.stats.fused_steps)
            .row("snapshots elided", report.stats.snapshots_elided);
        for (i, w) in par.workers.iter().enumerate() {
            table.row(
                format!("worker {i}"),
                format!(
                    "{} claimed ({} stolen), {} filter hits, {} idle parks",
                    w.claimed, w.steals, w.filter_hits, w.idle_spins
                ),
            );
        }
        for (phase, attribution) in profile.rows() {
            table.row(phase, attribution);
        }
        out.push('\n');
        out.push_str(&table.to_string());
    }
    if let Some(path) = &opts.metrics {
        let registry = explore_metrics(id, &report, &par, &profile);
        if let Err(e) = registry.write_to(path) {
            degraded = true;
            out.push_str(&format!("METRICS FAILED: {path}: {e}\n"));
        }
    }
    RunOutput {
        text: out,
        degraded,
        deadline_tripped: report.truncation == Some(Truncation::WallDeadline),
    }
}

/// Builds the OpenMetrics registry describing one `explore` run:
/// exploration counters, throughput and estimate gauges, per-worker
/// scheduling counters, and per-phase attributed nanoseconds.
fn explore_metrics(
    id: &str,
    report: &lfm_sim::ExploreReport,
    par: &lfm_sim::ParStats,
    profile: &lfm_obs::PhaseProfile,
) -> Registry {
    let mut r = Registry::new();
    let kernel_label: &[(&str, &str)] = &[("kernel", id)];
    r.counter_with(
        "lfm_explore_schedules",
        "Schedules the exploration ran.",
        kernel_label,
        report.schedules_run,
    );
    r.counter_with(
        "lfm_explore_steps",
        "Visible steps (states visited).",
        kernel_label,
        report.steps_total,
    );
    r.counter_with(
        "lfm_explore_failures",
        "Schedules that manifested the bug.",
        kernel_label,
        report.counts.failures(),
    );
    r.counter_with(
        "lfm_explore_dedup_hits",
        "States pruned by the seen-set.",
        kernel_label,
        report.states_deduped,
    );
    r.counter_with(
        "lfm_explore_sleep_pruned",
        "Schedules pruned by sleep sets.",
        kernel_label,
        report.sleep_pruned,
    );
    r.counter_with(
        "lfm_explore_dpor_pruned",
        "Schedules proved redundant by source-set DPOR.",
        kernel_label,
        report.dpor_pruned,
    );
    r.counter_with(
        "lfm_explore_branch_points",
        "States with more than one enabled thread that were expanded.",
        kernel_label,
        report.stats.branch_points,
    );
    r.counter_with(
        "lfm_explore_fused_steps",
        "Invisible steps fused into their parent edge instead of branching.",
        kernel_label,
        report.stats.fused_steps,
    );
    r.counter_with(
        "lfm_explore_snapshots_elided",
        "Branch-point children whose snapshot clone was elided (final survivor).",
        kernel_label,
        report.stats.snapshots_elided,
    );
    r.counter_with(
        "lfm_explore_tasks_spawned",
        "Parallel expansion tasks spawned.",
        kernel_label,
        par.tasks_spawned,
    );
    r.counter_with(
        "lfm_explore_wasted_expansions",
        "Expansions discarded at merge (speculation waste).",
        kernel_label,
        par.wasted_expansions,
    );
    r.gauge_with(
        "lfm_explore_workers",
        "Worker threads used.",
        kernel_label,
        par.jobs as f64,
    );
    r.gauge_with(
        "lfm_explore_states_per_sec",
        "Exploration throughput.",
        kernel_label,
        report.states_per_sec(),
    );
    r.gauge_with(
        "lfm_explore_est_total_schedules",
        "Knuth tree-size estimate of the full schedule space.",
        kernel_label,
        report.est_total_schedules,
    );
    r.gauge_with(
        "lfm_explore_max_depth",
        "Deepest DFS stack observed.",
        kernel_label,
        report.stats.max_depth as f64,
    );
    r.gauge_with(
        "lfm_explore_wall_seconds",
        "Wall-clock time of the exploration.",
        kernel_label,
        report.stats.wall.as_secs_f64(),
    );
    for (i, w) in par.workers.iter().enumerate() {
        let worker = i.to_string();
        let labels: &[(&str, &str)] = &[("kernel", id), ("worker", &worker)];
        r.counter_with(
            "lfm_explore_worker_claimed",
            "Tasks a worker claimed.",
            labels,
            w.claimed,
        );
        r.counter_with(
            "lfm_explore_worker_steals",
            "Tasks a worker stole from siblings.",
            labels,
            w.steals,
        );
    }
    for stat in profile.phases() {
        if stat.entries == 0 {
            continue;
        }
        let labels: &[(&str, &str)] = &[("kernel", id), ("phase", stat.phase.name())];
        r.gauge_with(
            "lfm_explore_phase_nanos",
            "Estimated wall nanoseconds attributed to a hot-path phase.",
            labels,
            stat.est_total_nanos() as f64,
        );
        r.counter_with(
            "lfm_explore_phase_entries",
            "Times a hot-path phase was entered.",
            labels,
            stat.entries,
        );
    }
    r
}

/// The `kernel` command under `--chaos` / `--deadline`: every variant
/// runs through a [`BudgetedExplorer`], the wall budget split evenly
/// across the buggy program and each fix, and every line states the
/// degradation level and confidence its numbers carry.
fn run_kernel_budgeted(
    kernel: &Kernel,
    id: &str,
    stats: bool,
    opts: &RunOptions,
    sink: &Arc<dyn Sink>,
) -> RunOutput {
    let variants = 1 + kernel.fixes.len() as u32;
    let budget = Budget {
        deadline: opts.deadline.map(|total| total / variants),
        ..Budget::default()
    };
    let explore = |program: &lfm_sim::Program| {
        let mut explorer = BudgetedExplorer::new(program)
            .budget(budget)
            .with_sink(Arc::clone(sink));
        if let Some(seed) = opts.chaos {
            explorer = explorer.chaos(FaultPlan::new(seed));
        }
        explorer.run()
    };

    let mut out = format!("{kernel}\n  {}\n\n", kernel.description);
    if let Some(seed) = opts.chaos {
        out.push_str(&format!("chaos seed: {seed}\n"));
    }
    if let Some(total) = opts.deadline {
        out.push_str(&format!(
            "deadline: {} total, {} per variant\n",
            fmt_duration(total),
            fmt_duration(total / variants)
        ));
    }
    out.push('\n');

    let buggy = explore(&kernel.buggy());
    let mut deadline_tripped = buggy.truncation == Some(Truncation::WallDeadline);
    out.push_str(&format!(
        "buggy: {} schedules, {} manifest ({})\n",
        buggy.schedules_run,
        buggy.counts.failures(),
        buggy.counts
    ));
    out.push_str(&format!(
        "level: {}  confidence: {}{}\n",
        buggy.level,
        buggy.confidence,
        match buggy.truncation {
            Some(reason) => format!("  [truncated: {reason}]"),
            None => String::new(),
        }
    ));
    if let Some((schedule, outcome)) = &buggy.first_failure {
        out.push_str(&format!("witness: [{schedule}] -> {outcome}\n"));
    }
    for &fix in kernel.fixes {
        let fixed = kernel.build(Variant::Fixed(fix));
        let report = explore(&fixed);
        deadline_tripped |= report.truncation == Some(Truncation::WallDeadline);
        out.push_str(&format!(
            "fix {:20} -> {} failures over {} schedules  [{}/{}]{}{}\n",
            fix.to_string(),
            report.counts.failures(),
            report.schedules_run,
            report.level,
            report.confidence,
            if report.proved_ok() { "  (proved)" } else { "" },
            if report.found_failure() {
                "  (BROKEN)"
            } else {
                ""
            },
        ));
    }
    if stats {
        let mut table = StatsTable::new(format!("budget stats ({id}, buggy variant)"));
        let levels = buggy
            .levels_tried
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join(" -> ");
        table
            .row("level", buggy.level.to_string())
            .row("confidence", buggy.confidence.to_string())
            .row("levels tried", levels)
            .row("schedules", buggy.schedules_run)
            .row(
                "truncation",
                match buggy.truncation {
                    Some(reason) => reason.to_string(),
                    None => "none (exhausted)".to_owned(),
                },
            )
            .row("wall (buggy)", fmt_duration(buggy.wall));
        out.push('\n');
        out.push_str(&table.to_string());
    }
    RunOutput {
        text: out,
        degraded: false,
        deadline_tripped,
    }
}

/// The `witness` command: search for the kernel's first failing
/// schedule, minimize it (ddmin, replay-validated), capture the
/// `lfm-trace/v1` artifact, save it, optionally export a Chrome trace,
/// and pretty-print the witness.
fn run_witness(
    kernel: &Kernel,
    id: &str,
    out_path: Option<&str>,
    chrome_path: Option<&str>,
    sink: &Arc<dyn Sink>,
) -> RunOutput {
    let program = kernel.buggy();
    let report = Explorer::new(&program)
        .stop_on_first_failure()
        .with_sink(Arc::clone(sink))
        .run();
    let Some((schedule, _)) = report.first_failure else {
        return RunOutput {
            text: format!("kernel `{id}` produced no failure to witness\n"),
            degraded: false,
            deadline_tripped: false,
        };
    };
    let min = minimize(&program, &schedule, 5_000);
    let witness = Witness::capture(&program, id, &min.schedule, 5_000);

    let mut degraded = false;
    let default_path = format!("{id}.witness.json");
    let path = out_path.unwrap_or(&default_path);
    let mut out = format!("{kernel}\nwitness outcome: {}\n", witness.outcome_display);
    match witness.save(path) {
        Ok(()) => out.push_str(&format!("saved: {path}\n")),
        Err(e) => {
            degraded = true;
            out.push_str(&format!("SAVE FAILED: {e}\n"));
        }
    }
    if let Some(chrome) = chrome_path {
        // One pid per kernel: its 1-based position in the registry.
        let pid = registry::all()
            .iter()
            .position(|k| k.id == kernel.id)
            .map_or(0, |p| p as u64 + 1);
        let trace_sink = ChromeTraceSink::new();
        match witness.emit_chrome(&program, pid, &trace_sink) {
            Ok(()) => match trace_sink.write_to(chrome) {
                Ok(()) => out.push_str(&format!("chrome trace: {chrome}\n")),
                Err(e) => {
                    degraded = true;
                    out.push_str(&format!("CHROME TRACE FAILED: {chrome}: {e}\n"));
                }
            },
            Err(e) => {
                degraded = true;
                out.push_str(&format!("CHROME TRACE FAILED: {e}\n"));
            }
        }
    }

    let mut table = StatsTable::new(format!("witness ({id})"));
    table
        .row("schema", lfm_sim::WITNESS_SCHEMA)
        .row("fingerprint", format!("{:016x}", witness.fingerprint))
        .row(
            "schedule",
            format!("{} -> {} choices", schedule.len(), witness.schedule.len()),
        )
        .row(
            "switches",
            format!("{} -> {}", min.switches_before, min.switches_after),
        )
        .row("threads", witness.stats.threads)
        .row("conflicting accesses", witness.stats.conflicting_accesses)
        .row("conflict objects", witness.stats.conflict_objects)
        .row("events", witness.stats.events)
        .row("ddmin replays", min.replays)
        .histogram("replay steps", &min.replay_steps);
    out.push('\n');
    out.push_str(&table.to_string());

    let (trace, _) =
        lfm_sim::explore::trace_of(&program, &witness.schedule, witness.schedule.len());
    out.push('\n');
    out.push_str(&lfm_sim::render_timeline(&trace, Some(&program)));
    RunOutput {
        text: out,
        degraded,
        deadline_tripped: false,
    }
}

/// The `replay` command: load a saved witness, re-execute it against the
/// named kernel, and verify the recorded outcome bit-for-bit. Any
/// load/verification failure is a degraded (exit 1) run with the
/// diagnostic printed.
fn run_replay(path: &str) -> RunOutput {
    let witness = match Witness::load(path) {
        Ok(w) => w,
        Err(e) => {
            return RunOutput {
                text: format!("cannot load witness: {e}\n"),
                degraded: true,
                deadline_tripped: false,
            };
        }
    };
    let Some(kernel) = registry::by_id(&witness.kernel) else {
        return RunOutput {
            text: format!(
                "witness names unknown kernel `{}` (try `lfm list kernels`)\n",
                witness.kernel
            ),
            degraded: true,
            deadline_tripped: false,
        };
    };
    let program = kernel.buggy();
    match witness.replay(&program) {
        Ok(outcome) => RunOutput {
            text: format!(
                "replay OK: kernel `{}`, {} events, {} switches\noutcome verified: {outcome}\n",
                witness.kernel, witness.stats.events, witness.stats.switches
            ),
            degraded: false,
            deadline_tripped: false,
        },
        Err(e) => RunOutput {
            text: format!("replay FAILED: {e}\n"),
            degraded: true,
            deadline_tripped: false,
        },
    }
}

/// The `serve` command: start the fingerprint-keyed model-checking
/// service and block until a wire shutdown request drains it. The
/// listening address is printed (and flushed) *before* blocking so a
/// caller can scrape it; the drain summary is the command's output.
/// `--chaos` seeds sim-level faults into every exploration (and the
/// cache key), `--deadline` becomes the default per-request wall
/// budget, and `--metrics` writes a final OpenMetrics exposition at
/// drain — so a crashed or drained server always leaves its counters
/// behind, next to the flight-recorder tail the binary dumps on panic.
/// `serve` parameters (one struct so the runner's signature stays
/// readable).
struct ServeArgs {
    addr: Option<String>,
    dpor: bool,
    workers: Option<usize>,
    queue: Option<usize>,
    max_conns: Option<usize>,
    trace: Option<String>,
    trace_slow_ms: Option<u64>,
}

fn run_serve(args: ServeArgs, opts: &RunOptions, sink: &Arc<dyn Sink>) -> RunOutput {
    let mut config = lfm_serve::ServerConfig::default();
    if let Some(addr) = args.addr {
        config.addr = addr;
    }
    if let Some(workers) = args.workers {
        config.workers = workers;
    }
    if let Some(queue) = args.queue {
        config.queue_cap = queue;
    }
    if let Some(max_conns) = args.max_conns {
        config.max_conns = max_conns;
    }
    // --trace turns full capture on; --trace-slow-ms alone arms only
    // the slow-request recorder. Both feed the same ring the dump
    // drains at shutdown.
    config.trace = args.trace.is_some();
    config.trace_slow_ms = args.trace_slow_ms;
    config.caps.dpor = args.dpor;
    config.chaos = opts.chaos;
    config.default_deadline = opts.deadline;
    let handle = match lfm_serve::Server::start(config, Arc::clone(sink)) {
        Ok(handle) => handle,
        Err(e) => {
            return RunOutput {
                text: format!("cannot start server: {e}\n"),
                degraded: true,
                deadline_tripped: false,
            };
        }
    };
    // Printed eagerly: run_opts returns its text only after the server
    // exits, and anyone scripting this (CI included) needs the port now.
    println!("lfm serve listening on {}", handle.addr());
    let _ = std::io::Write::flush(&mut std::io::stdout());

    let stats = handle.stats();
    let cache = handle.cache();
    let tracer = handle.tracer();
    let summary = handle.wait();

    let mut degraded = !summary.clean;
    let mut out = format!(
        "drained: requests={} checks={} hits={} misses={} shed={} errors={} \
         write_errors={} worker_panics={} cache_entries={} clean={}\n",
        summary.requests,
        summary.checks,
        summary.hits,
        summary.misses,
        summary.shed,
        summary.errors,
        summary.write_errors,
        summary.worker_panics,
        summary.cache_entries,
        summary.clean,
    );
    out.push_str(&format!(
        "degrade histogram: exhaustive={} sleep-set={} preemption-bounded={} pct-sampling={}\n",
        summary.degrade[0], summary.degrade[1], summary.degrade[2], summary.degrade[3],
    ));
    if let Some(path) = &opts.metrics {
        let mut registry = Registry::new();
        stats.fill_registry(&mut registry, &cache);
        match registry.write_to(path) {
            Ok(()) => out.push_str(&format!("metrics: {path}\n")),
            Err(e) => {
                degraded = true;
                out.push_str(&format!("METRICS FAILED: {path}: {e}\n"));
            }
        }
    }
    if let Some(path) = &args.trace {
        match tracer.dump_chrome(path) {
            Ok(spans) => out.push_str(&format!("trace: {path} ({spans} spans)\n")),
            Err(e) => {
                degraded = true;
                out.push_str(&format!("TRACE FAILED: {path}: {e}\n"));
            }
        }
    }
    RunOutput {
        text: out,
        degraded,
        deadline_tripped: false,
    }
}

/// The `top` command: poll a running server's `stats` wire op and
/// render the rolling snapshot — uptime, queue, in-flight, rates,
/// per-stage and per-level quantiles. Loops until the server goes away
/// (or forever); `--once` prints a single snapshot for scripts and CI.
fn run_top(addr: &str, interval_ms: u64, once: bool) -> RunOutput {
    use std::net::ToSocketAddrs;
    let Some(resolved) = addr.to_socket_addrs().ok().and_then(|mut it| it.next()) else {
        return RunOutput {
            text: format!("cannot resolve server address `{addr}`\n"),
            degraded: true,
            deadline_tripped: false,
        };
    };
    let client = lfm_serve::Client::new(resolved).with_timeout(Duration::from_secs(5));
    let mut rounds = 0u64;
    loop {
        match client.stats() {
            Ok(snapshot) => {
                if once {
                    return RunOutput {
                        text: render_top(addr, &snapshot),
                        degraded: false,
                        deadline_tripped: false,
                    };
                }
                // Live mode: clear the screen between refreshes, like
                // any top. Printed eagerly — the loop only returns when
                // the server goes away.
                print!("\x1b[2J\x1b[H{}", render_top(addr, &snapshot));
                let _ = std::io::Write::flush(&mut std::io::stdout());
                rounds += 1;
            }
            Err(e) => {
                let text = format!("lfm top: server at {addr} unreachable: {e}\n");
                // Losing a server we were watching is a normal ending;
                // never reaching it is a failure.
                return RunOutput {
                    text,
                    degraded: rounds == 0,
                    deadline_tripped: false,
                };
            }
        }
        std::thread::sleep(Duration::from_millis(interval_ms));
    }
}

/// Renders one stats snapshot as the `top` screen.
fn render_top(addr: &str, s: &lfm_serve::StatsSnapshot) -> String {
    let mut out = format!(
        "lfm top — {addr}   uptime {:.1}s\n\
         requests {}   checks {}   in-flight {}   queue {}/{}   conns {}\n\
         hits {} ({:.0}%)   misses {}   coalesced {}   shed {} ({:.0}%)   errors {}\n\
         cache entries {}   write errors {}   worker panics {}\n\
         degrade: exhaustive={} sleep-set={} preemption-bounded={} pct-sampling={}\n\
         latency: n={} p50 {} us p99 {} us\n",
        s.uptime_ms as f64 / 1000.0,
        s.requests,
        s.checks,
        s.in_flight,
        s.queue_depth,
        s.queue_cap,
        s.conns,
        s.hits,
        s.hit_rate * 100.0,
        s.misses,
        s.coalesced,
        s.shed,
        s.shed_rate * 100.0,
        s.errors,
        s.cache_entries,
        s.write_errors,
        s.worker_panics,
        s.degrade[0],
        s.degrade[1],
        s.degrade[2],
        s.degrade[3],
        s.latency.count,
        s.latency.p50_us,
        s.latency.p99_us,
    );
    out.push_str("stage                 count        p50 us        p99 us\n");
    for (stage, row) in &s.stages {
        out.push_str(&format!(
            "{stage:<18} {:>9} {:>13} {:>13}\n",
            row.count, row.p50_us, row.p99_us
        ));
    }
    for (level, row) in &s.levels {
        out.push_str(&format!(
            "level {level:<12} {:>9} {:>13} {:>13}\n",
            row.count, row.p50_us, row.p99_us
        ));
    }
    out
}

/// `bench-serve` parameters (one struct so the runner's signature stays
/// readable).
struct BenchServeArgs {
    addr: Option<String>,
    clients: Option<usize>,
    requests: Option<usize>,
    seed: Option<u64>,
    chaos_net: Option<u64>,
    out: Option<String>,
    shutdown: bool,
}

/// The `bench-serve` command: a closed-loop zipf load run against a
/// server — an in-process one unless `--addr` points elsewhere —
/// optionally behind a seeded chaos proxy. Wrong answers or an unclean
/// drain degrade the exit; `--out` writes the `lfm-bench-serve/v1`
/// document the CI gate compares against.
fn run_bench_serve(args: &BenchServeArgs, opts: &RunOptions, sink: &Arc<dyn Sink>) -> RunOutput {
    use std::net::ToSocketAddrs;

    let mut degraded = false;
    let mut out = String::new();

    // Target resolution: an external server by address, or a fresh
    // in-process one (whose drain we then own).
    let mut handle = None;
    let server_addr = match &args.addr {
        Some(addr) => match addr.to_socket_addrs().ok().and_then(|mut it| it.next()) {
            Some(resolved) => resolved,
            None => {
                return RunOutput {
                    text: format!("cannot resolve server address `{addr}`\n"),
                    degraded: true,
                    deadline_tripped: false,
                };
            }
        },
        None => {
            let config = lfm_serve::ServerConfig {
                chaos: opts.chaos,
                default_deadline: opts.deadline,
                ..lfm_serve::ServerConfig::default()
            };
            match lfm_serve::Server::start(config, Arc::clone(sink)) {
                Ok(h) => {
                    let addr = h.addr();
                    handle = Some(h);
                    addr
                }
                Err(e) => {
                    return RunOutput {
                        text: format!("cannot start in-process server: {e}\n"),
                        degraded: true,
                        deadline_tripped: false,
                    };
                }
            }
        }
    };

    let proxy = match args.chaos_net {
        Some(seed) => {
            match lfm_serve::ChaosProxy::start(lfm_serve::NetFaultPlan::new(seed), server_addr) {
                Ok(proxy) => Some(proxy),
                Err(e) => {
                    return RunOutput {
                        text: format!("cannot start chaos proxy: {e}\n"),
                        degraded: true,
                        deadline_tripped: false,
                    };
                }
            }
        }
        None => None,
    };
    let load_target = proxy.as_ref().map_or(server_addr, |p| p.addr());

    let seed = args.seed.unwrap_or(lfm_bench::SERVE_SEED);
    let config = lfm_serve::LoadConfig {
        clients: args.clients.unwrap_or(8),
        requests_per_client: args.requests.unwrap_or(15),
        seed,
        deadline_ms: opts.deadline.map(|d| d.as_millis() as u64),
        ..lfm_serve::LoadConfig::default()
    };
    let scenario = match args.chaos_net {
        Some(chaos_seed) => format!("chaos-{chaos_seed}"),
        None => lfm_bench::SERVE_GATE_SCENARIO.to_owned(),
    };
    out.push_str(&format!(
        "bench-serve: {} clients x {} requests, seed {seed}, scenario {scenario}, target {}\n",
        config.clients, config.requests_per_client, load_target,
    ));
    let report = lfm_serve::run_load(load_target, &config);

    let faults_injected = match proxy {
        Some(proxy) => {
            let stats = proxy.stats();
            proxy.stop();
            stats.total_injected()
        }
        None => 0,
    };

    out.push_str(&format!(
        "requests: {} ({} ok, {} failed, {} wrong)\n",
        report.requests, report.ok, report.failed, report.wrong
    ));
    out.push_str(&format!(
        "cache hit rate: {:.2}   shed rate: {:.2}   transport errors: {}   faults injected: {}\n",
        report.hit_rate(),
        report.shed_rate(),
        report.transport_errors,
        faults_injected,
    ));
    out.push_str(&format!(
        "latency: p50 {} us, p99 {} us   throughput: {:.0} req/sec\n",
        report.latency.p50(),
        report.latency.p99(),
        report.requests_per_sec(),
    ));
    out.push_str(&format!(
        "retries: {} total, worst request {}\n",
        report.retries_total, report.max_retries,
    ));
    out.push_str(&format!(
        "degrade histogram: exhaustive={} sleep-set={} preemption-bounded={} pct-sampling={}\n",
        report.degrade[0], report.degrade[1], report.degrade[2], report.degrade[3],
    ));
    if report.wrong > 0 {
        degraded = true;
        out.push_str(&format!(
            "WRONG ANSWERS: {} — the service broke the correctness contract\n",
            report.wrong
        ));
    }

    // Graceful shutdown: request it over the wire for an external
    // server; an in-process server is always drained before we return.
    if args.shutdown && handle.is_none() {
        match lfm_serve::Client::new(server_addr).shutdown() {
            Ok(()) => out.push_str("shutdown: requested, server acknowledged\n"),
            Err(e) => {
                degraded = true;
                out.push_str(&format!("SHUTDOWN FAILED: {e}\n"));
            }
        }
    }
    let mut clean_drain = true;
    if let Some(handle) = handle {
        let stats = handle.stats();
        let cache = handle.cache();
        let server_degrade = stats.degrade_histogram();
        handle.request_shutdown();
        let summary = handle.wait();
        clean_drain = summary.clean;
        if !summary.clean {
            degraded = true;
        }
        out.push_str(&format!(
            "drained: requests={} hits={} misses={} shed={} worker_panics={} clean={}\n",
            summary.requests,
            summary.hits,
            summary.misses,
            summary.shed,
            summary.worker_panics,
            summary.clean,
        ));
        let _ = server_degrade;
        if let Some(path) = &opts.metrics {
            let mut registry = Registry::new();
            stats.fill_registry(&mut registry, &cache);
            match registry.write_to(path) {
                Ok(()) => out.push_str(&format!("metrics: {path}\n")),
                Err(e) => {
                    degraded = true;
                    out.push_str(&format!("METRICS FAILED: {path}: {e}\n"));
                }
            }
        }
    }

    if let Some(path) = &args.out {
        let row = lfm_bench::ServeRow {
            scenario,
            requests: report.requests,
            ok: report.ok,
            failed: report.failed,
            wrong: report.wrong,
            hit_rate: report.hit_rate(),
            shed_rate: report.shed_rate(),
            p50_us: report.latency.p50(),
            p99_us: report.latency.p99(),
            requests_per_sec: report.requests_per_sec(),
            retries_total: report.retries_total,
            max_retries: report.max_retries,
            degrade: report.degrade,
            faults_injected,
            clean_drain,
        };
        let doc = lfm_bench::serve_json(&lfm_bench::ServeReport {
            seed,
            host_parallelism: std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1),
            rows: vec![row],
        });
        match std::fs::write(path, &doc) {
            Ok(()) => out.push_str(&format!("report: {path}\n")),
            Err(e) => {
                degraded = true;
                out.push_str(&format!("REPORT FAILED: {path}: {e}\n"));
            }
        }
    }

    RunOutput {
        text: out,
        degraded,
        deadline_tripped: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &[&str]) -> Vec<String> {
        s.iter().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_help_variants() {
        assert_eq!(parse(&args(&[])).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["help"])).unwrap(), Command::Help);
        assert_eq!(parse(&args(&["--help"])).unwrap(), Command::Help);
    }

    #[test]
    fn parses_list_bugs_with_filters() {
        assert_eq!(
            parse(&args(&["list", "bugs"])).unwrap(),
            Command::ListBugs {
                app: None,
                class: None
            }
        );
        assert_eq!(
            parse(&args(&[
                "list", "bugs", "--app", "mysql", "--class", "deadlock"
            ]))
            .unwrap(),
            Command::ListBugs {
                app: Some(App::MySql),
                class: Some(BugClass::Deadlock)
            }
        );
        assert!(parse(&args(&["list", "bugs", "--app", "xyz"])).is_err());
        assert!(parse(&args(&["list", "bugs", "--app"])).is_err());
    }

    #[test]
    fn parses_list_kernels() {
        assert_eq!(
            parse(&args(&["list", "kernels", "--family", "deadlock"])).unwrap(),
            Command::ListKernels {
                family: Some(Family::Deadlock)
            }
        );
        assert!(parse(&args(&["list", "widgets"])).is_err());
    }

    #[test]
    fn parses_show_and_kernel() {
        assert_eq!(
            parse(&args(&["show", "mysql-791"])).unwrap(),
            Command::Show {
                id: "mysql-791".into()
            }
        );
        assert_eq!(
            parse(&args(&["kernel", "abba", "--source"])).unwrap(),
            Command::Kernel {
                id: "abba".into(),
                source: true,
                witness: false,
                stats: false
            }
        );
        assert_eq!(
            parse(&args(&["kernel", "abba", "--witness"])).unwrap(),
            Command::Kernel {
                id: "abba".into(),
                source: false,
                witness: true,
                stats: false
            }
        );
        assert_eq!(
            parse(&args(&["kernel", "abba", "--stats"])).unwrap(),
            Command::Kernel {
                id: "abba".into(),
                source: false,
                witness: false,
                stats: true
            }
        );
        assert!(parse(&args(&["show"])).is_err());
        assert!(parse(&args(&["kernel"])).is_err());
        assert!(parse(&args(&["kernel", "abba", "--bogus"])).is_err());
    }

    #[test]
    fn parses_explore() {
        assert_eq!(
            parse(&args(&["explore", "abba"])).unwrap(),
            Command::Explore {
                id: "abba".into(),
                jobs: None,
                dpor: false,
                no_fuse: false,
                stats: false,
                progress: false
            }
        );
        assert_eq!(
            parse(&args(&["explore", "abba", "--jobs", "4", "--stats"])).unwrap(),
            Command::Explore {
                id: "abba".into(),
                jobs: Some(4),
                dpor: false,
                no_fuse: false,
                stats: true,
                progress: false
            }
        );
        assert_eq!(
            parse(&args(&["explore", "abba", "--progress"])).unwrap(),
            Command::Explore {
                id: "abba".into(),
                jobs: None,
                dpor: false,
                no_fuse: false,
                stats: false,
                progress: true
            }
        );
        assert_eq!(
            parse(&args(&["explore", "abba", "--dpor"])).unwrap(),
            Command::Explore {
                id: "abba".into(),
                jobs: None,
                dpor: true,
                no_fuse: false,
                stats: false,
                progress: false
            }
        );
        assert_eq!(
            parse(&args(&["explore", "abba", "--no-fuse"])).unwrap(),
            Command::Explore {
                id: "abba".into(),
                jobs: None,
                dpor: false,
                no_fuse: true,
                stats: false,
                progress: false
            }
        );
        assert!(parse(&args(&["explore"])).is_err());
        assert!(parse(&args(&["explore", "abba", "--jobs"])).is_err());
        assert!(parse(&args(&["explore", "abba", "--jobs", "zero"])).is_err());
        assert!(parse(&args(&["explore", "abba", "--jobs", "0"])).is_err());
        assert!(parse(&args(&["explore", "abba", "--bogus"])).is_err());
    }

    #[test]
    fn parses_version() {
        assert_eq!(parse(&args(&["version"])).unwrap(), Command::Version);
        assert_eq!(parse(&args(&["--version"])).unwrap(), Command::Version);
        assert_eq!(parse(&args(&["-V"])).unwrap(), Command::Version);
    }

    #[test]
    fn parses_serve() {
        assert_eq!(
            parse(&args(&["serve"])).unwrap(),
            Command::Serve {
                addr: None,
                dpor: false,
                workers: None,
                queue: None,
                max_conns: None,
                trace: None,
                trace_slow_ms: None,
            }
        );
        assert_eq!(
            parse(&args(&[
                "serve",
                "--addr",
                "127.0.0.1:7777",
                "--workers",
                "3",
                "--queue",
                "8",
                "--max-conns",
                "64",
                "--dpor",
                "--trace",
                "spans.json",
                "--trace-slow-ms",
                "250"
            ]))
            .unwrap(),
            Command::Serve {
                addr: Some("127.0.0.1:7777".into()),
                dpor: true,
                workers: Some(3),
                queue: Some(8),
                max_conns: Some(64),
                trace: Some("spans.json".into()),
                trace_slow_ms: Some(250),
            }
        );
        assert!(parse(&args(&["serve", "--addr"])).is_err());
        assert!(parse(&args(&["serve", "--workers"])).is_err());
        assert!(parse(&args(&["serve", "--workers", "0"])).is_err());
        assert!(parse(&args(&["serve", "--workers", "many"])).is_err());
        assert!(parse(&args(&["serve", "--queue", "0"])).is_err());
        assert!(parse(&args(&["serve", "--trace"])).is_err());
        assert!(parse(&args(&["serve", "--trace-slow-ms"])).is_err());
        assert!(parse(&args(&["serve", "--trace-slow-ms", "soon"])).is_err());
        assert!(parse(&args(&["serve", "--bogus"])).is_err());
        assert!(parse(&args(&["serve", "extra"])).is_err());
    }

    #[test]
    fn parses_top() {
        assert_eq!(
            parse(&args(&["top", "--addr", "127.0.0.1:7777"])).unwrap(),
            Command::Top {
                addr: "127.0.0.1:7777".into(),
                interval_ms: 1_000,
                once: false,
            }
        );
        assert_eq!(
            parse(&args(&[
                "top",
                "--addr",
                "127.0.0.1:7777",
                "--interval-ms",
                "250",
                "--once"
            ]))
            .unwrap(),
            Command::Top {
                addr: "127.0.0.1:7777".into(),
                interval_ms: 250,
                once: true,
            }
        );
        assert!(parse(&args(&["top"])).is_err(), "--addr is required");
        assert!(parse(&args(&["top", "--addr"])).is_err());
        assert!(parse(&args(&["top", "--addr", "a:1", "--interval-ms"])).is_err());
        assert!(parse(&args(&["top", "--addr", "a:1", "--interval-ms", "0"])).is_err());
        assert!(parse(&args(&["top", "--addr", "a:1", "--bogus"])).is_err());
    }

    #[test]
    fn parses_bench_serve() {
        assert_eq!(
            parse(&args(&["bench-serve"])).unwrap(),
            Command::BenchServe {
                addr: None,
                clients: None,
                requests: None,
                seed: None,
                chaos_net: None,
                out: None,
                shutdown: false,
            }
        );
        assert_eq!(
            parse(&args(&[
                "bench-serve",
                "--addr",
                "127.0.0.1:7777",
                "--clients",
                "4",
                "--requests",
                "10",
                "--seed",
                "9",
                "--chaos-net",
                "42",
                "--out",
                "b.json",
                "--shutdown"
            ]))
            .unwrap(),
            Command::BenchServe {
                addr: Some("127.0.0.1:7777".into()),
                clients: Some(4),
                requests: Some(10),
                seed: Some(9),
                chaos_net: Some(42),
                out: Some("b.json".into()),
                shutdown: true,
            }
        );
        assert!(parse(&args(&["bench-serve", "--clients"])).is_err());
        assert!(parse(&args(&["bench-serve", "--clients", "0"])).is_err());
        assert!(parse(&args(&["bench-serve", "--seed", "pi"])).is_err());
        assert!(parse(&args(&["bench-serve", "--chaos-net"])).is_err());
        assert!(parse(&args(&["bench-serve", "--bogus"])).is_err());
        assert!(parse(&args(&["bench-serve", "extra"])).is_err());
    }

    #[test]
    fn run_version_prints_binary_and_schema_versions() {
        let out = run(Command::Version);
        assert!(out.starts_with(&format!("lfm {}", env!("CARGO_PKG_VERSION"))));
        assert!(out.contains("lfm-obs/v1"), "{out}");
        assert!(out.contains("lfm-trace/v1"), "{out}");
        assert!(out.contains("lfm-bench-explore/v1"), "{out}");
        assert!(out.contains("lfm-serve/v1"), "{out}");
        assert!(out.contains("lfm-serve-stats/v1"), "{out}");
        assert!(out.contains("lfm-serve-trace/v1"), "{out}");
        assert!(out.contains("lfm-bench-serve/v1"), "{out}");
    }

    #[test]
    fn run_explore_matches_serial_kernel_numbers() {
        let out = run(Command::Explore {
            id: "counter_rmw".into(),
            jobs: Some(2),
            dpor: false,
            no_fuse: false,
            stats: false,
            progress: false,
        });
        assert!(out.contains("workers: 2"));
        // Same counts the serial explorer reports for this kernel under
        // dedup: the merged report is bit-identical by construction.
        let program = registry::by_id("counter_rmw").unwrap().buggy();
        let serial = Explorer::new(&program).dedup_states().run();
        assert!(out.contains(&format!(
            "buggy: {} interleavings, {} manifest",
            serial.schedules_run,
            serial.counts.failures()
        )));
    }

    #[test]
    fn run_explore_dpor_reports_the_reduction() {
        let out = run(Command::Explore {
            id: "counter_rmw".into(),
            jobs: Some(2),
            dpor: true,
            no_fuse: false,
            stats: true,
            progress: false,
        });
        assert!(out.contains("dpor: on"), "{out}");
        assert!(out.contains("dpor prunes"), "{out}");
        // The DPOR run is bit-identical to the serial DPOR explorer's.
        let program = registry::by_id("counter_rmw").unwrap().buggy();
        let serial = Explorer::new(&program).dpor().run();
        assert!(
            out.contains(&format!(
                "buggy: {} interleavings, {} manifest",
                serial.schedules_run,
                serial.counts.failures()
            )),
            "{out}"
        );
    }

    #[test]
    fn run_explore_no_fuse_matches_fused_verdicts_and_prints_counters() {
        // livelock_retry is full of yields: fused and unfused runs must
        // agree on the verdict while the fused one runs fewer
        // schedules, and --stats surfaces all three fusion counters.
        let fused = run(Command::Explore {
            id: "livelock_retry".into(),
            jobs: Some(2),
            dpor: false,
            no_fuse: false,
            stats: true,
            progress: false,
        });
        assert!(fused.contains("fused steps"), "{fused}");
        assert!(fused.contains("branch points"), "{fused}");
        assert!(fused.contains("snapshots elided"), "{fused}");
        let unfused = run(Command::Explore {
            id: "livelock_retry".into(),
            jobs: Some(2),
            dpor: false,
            no_fuse: true,
            stats: true,
            progress: false,
        });
        assert!(unfused.contains("fuse: off"), "{unfused}");
        assert!(!fused.contains("fuse: off"), "{fused}");
        let schedules = |out: &str| {
            out.lines()
                .find(|l| l.starts_with("buggy: "))
                .and_then(|l| l.strip_prefix("buggy: "))
                .and_then(|l| l.split(' ').next())
                .and_then(|n| n.parse::<u64>().ok())
                .expect("report line present")
        };
        assert!(
            schedules(&fused) < schedules(&unfused),
            "fusion did not shrink the schedule count:\n{fused}\n{unfused}"
        );
    }

    #[test]
    fn run_explore_stats_lists_every_worker() {
        let out = run(Command::Explore {
            id: "counter_rmw".into(),
            jobs: Some(3),
            dpor: false,
            no_fuse: false,
            stats: true,
            progress: false,
        });
        assert!(out.contains("parallel stats (counter_rmw, 3 workers)"));
        for i in 0..3 {
            assert!(out.contains(&format!("worker {i}")), "missing worker {i}");
        }
        assert!(out.contains("tasks spawned"));
        // Phase attribution: --stats enables the sampling profiler, so
        // the hot-path phases show up with their estimated share.
        assert!(out.contains("phase step"), "missing phase rows:\n{out}");
        assert!(out.contains("phase commit"), "missing phase rows:\n{out}");
        // And the progress estimator's prediction is always reported.
        assert!(out.contains("est. total schedules:"), "{out}");
    }

    #[test]
    fn run_explore_writes_openmetrics_exposition() {
        let path = std::env::temp_dir().join("lfm_cli_explore_metrics.txt");
        let opts = RunOptions {
            metrics: Some(path.to_string_lossy().into_owned()),
            ..RunOptions::default()
        };
        let out = run_opts(
            Command::Explore {
                id: "counter_rmw".into(),
                jobs: Some(2),
                dpor: false,
                no_fuse: false,
                stats: false,
                progress: false,
            },
            Arc::new(NoopSink),
            &opts,
        );
        assert!(!out.degraded, "{}", out.text);
        assert!(!out.deadline_tripped);
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        let samples = lfm_obs::check_exposition(&text).expect("exposition parses");
        assert!(samples > 10, "only {samples} samples:\n{text}");
        for needle in [
            "# TYPE lfm_explore_schedules counter",
            "lfm_explore_schedules_total{kernel=\"counter_rmw\"}",
            "lfm_explore_branch_points_total{kernel=\"counter_rmw\"}",
            "lfm_explore_fused_steps_total{kernel=\"counter_rmw\"}",
            "lfm_explore_snapshots_elided_total{kernel=\"counter_rmw\"}",
            "lfm_explore_states_per_sec{kernel=\"counter_rmw\"}",
            "lfm_explore_est_total_schedules{kernel=\"counter_rmw\"}",
            "lfm_explore_worker_claimed_total{kernel=\"counter_rmw\",worker=\"0\"}",
            "lfm_explore_phase_nanos{kernel=\"counter_rmw\",phase=\"step\"}",
        ] {
            assert!(text.contains(needle), "missing {needle:?}:\n{text}");
        }
    }

    #[test]
    fn run_explore_observed_output_matches_unobserved() {
        // --progress and --metrics must not change the report the user
        // sees: same schedules, failures, estimate — the whole stdout
        // text is identical (progress lines go to stderr).
        let base = run(Command::Explore {
            id: "counter_rmw".into(),
            jobs: Some(2),
            dpor: false,
            no_fuse: false,
            stats: false,
            progress: false,
        });
        let path = std::env::temp_dir().join("lfm_cli_observed_metrics.txt");
        let opts = RunOptions {
            metrics: Some(path.to_string_lossy().into_owned()),
            ..RunOptions::default()
        };
        let observed = run_opts(
            Command::Explore {
                id: "counter_rmw".into(),
                jobs: Some(2),
                dpor: false,
                no_fuse: false,
                stats: false,
                progress: true,
            },
            Arc::new(NoopSink),
            &opts,
        );
        let _ = std::fs::remove_file(&path);
        // Everything except the measured wall line (a clock writes
        // that, not the search) must match byte for byte.
        let semantic = |s: &str| {
            s.lines()
                .filter(|l| !l.starts_with("wall:"))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(semantic(&base), semantic(&observed.text));
    }

    #[test]
    fn run_explore_unknown_kernel_reports_error() {
        let out = run(Command::Explore {
            id: "nope".into(),
            jobs: None,
            dpor: false,
            no_fuse: false,
            stats: false,
            progress: false,
        });
        assert!(out.contains("no kernel `nope`"));
    }

    #[test]
    fn parses_global_log_jsonl_anywhere() {
        let inv = parse_invocation(&args(&["--log-jsonl", "run.jsonl", "kernel", "abba"])).unwrap();
        assert_eq!(inv.log_jsonl.as_deref(), Some("run.jsonl"));
        assert_eq!(
            inv.command,
            Command::Kernel {
                id: "abba".into(),
                source: false,
                witness: false,
                stats: false
            }
        );
        // Also accepted after the command.
        let inv = parse_invocation(&args(&["kernel", "abba", "--log-jsonl", "x.jsonl"])).unwrap();
        assert_eq!(inv.log_jsonl.as_deref(), Some("x.jsonl"));
        // Without it, nothing changes.
        let inv = parse_invocation(&args(&["help"])).unwrap();
        assert_eq!(inv.log_jsonl, None);
        assert_eq!(inv.command, Command::Help);
        assert!(parse_invocation(&args(&["kernel", "abba", "--log-jsonl"])).is_err());
    }

    #[test]
    fn parses_tables() {
        assert_eq!(
            parse(&args(&["tables"])).unwrap(),
            Command::Tables {
                only: None,
                markdown: false
            }
        );
        assert_eq!(
            parse(&args(&["tables", "t3", "--markdown"])).unwrap(),
            Command::Tables {
                only: Some(Artifact::Table(3)),
                markdown: true
            }
        );
        assert!(parse(&args(&["tables", "t42"])).is_err());
    }

    #[test]
    fn parses_and_runs_export() {
        assert_eq!(parse(&args(&["export"])).unwrap(), Command::Export);
        let out = run(Command::Export);
        assert!(out.contains("\"count\": 105"));
    }

    #[test]
    fn unknown_command_is_an_error() {
        let err = parse(&args(&["frobnicate"])).unwrap_err();
        assert!(err.to_string().contains("frobnicate"));
    }

    #[test]
    fn run_list_bugs_filters() {
        let out = run(Command::ListBugs {
            app: Some(App::Apache),
            class: Some(BugClass::Deadlock),
        });
        assert!(out.starts_with("4 bugs"));
        assert!(out.contains("apache-dl-"));
    }

    #[test]
    fn run_show_known_and_unknown() {
        let out = run(Command::Show {
            id: "mozilla-61369".into(),
        });
        assert!(out.contains("nsThread"));
        assert!(out.contains("kernel:   use_before_init_mozilla"));
        let out = run(Command::Show {
            id: "nope-1".into(),
        });
        assert!(out.contains("no bug"));
    }

    #[test]
    fn run_kernel_source_prints_pseudocode() {
        let out = run(Command::Kernel {
            id: "counter_rmw".into(),
            source: true,
            witness: false,
            stats: false,
        });
        assert!(out.contains("// ---- buggy variant ----"));
        assert!(out.contains("tmp = counter;"));
        assert!(out.contains("// ---- fixed: add/change lock ----"));
        assert!(out.contains("lock(m0);"));
    }

    #[test]
    fn run_kernel_explore_proves_fixes() {
        let out = run(Command::Kernel {
            id: "abba".into(),
            source: false,
            witness: false,
            stats: false,
        });
        assert!(out.contains("deadlock"));
        assert!(out.contains("(proved)"));
        assert!(!out.contains("BROKEN"));
        // The one-line histogram is the counts rendering.
        assert!(out.contains("ok=") && out.contains("total="));
    }

    #[test]
    fn run_kernel_stats_prints_metrics_block() {
        let out = run(Command::Kernel {
            id: "counter_rmw".into(),
            source: false,
            witness: false,
            stats: true,
        });
        for needle in [
            "stats (counter_rmw, buggy variant)",
            "schedules/sec",
            "branch points",
            "snapshots",
            "sleep-set prunes",
            "dedup hits",
            "wall (buggy)",
            "wall (fix:",
        ] {
            assert!(out.contains(needle), "missing {needle:?} in:\n{out}");
        }
    }

    #[test]
    fn run_with_sink_streams_explore_events_without_changing_output() {
        let command = Command::Kernel {
            id: "counter_rmw".into(),
            source: false,
            witness: false,
            stats: false,
        };
        let sink = Arc::new(lfm_obs::MemorySink::new());
        let logged = run_with(command.clone(), Arc::clone(&sink) as Arc<dyn Sink>);
        assert_eq!(logged, run(command));
        // One report per exploration: the buggy variant plus every fix.
        let kernel = registry::by_id("counter_rmw").unwrap();
        let reports = sink.events_named("explore", "report");
        assert_eq!(reports.len(), 1 + kernel.fixes.len());
        assert!(reports[0].field("schedules").is_some());
    }

    #[test]
    fn run_kernel_witness_prints_timeline() {
        let out = run(Command::Kernel {
            id: "counter_rmw".into(),
            source: false,
            witness: true,
            stats: false,
        });
        assert!(out.contains("witness outcome:"));
        assert!(out.contains("seq | t1"));
        assert!(out.contains("read counter -> 0"));
    }

    #[test]
    fn parses_witness_and_replay() {
        assert_eq!(
            parse(&args(&["witness", "abba"])).unwrap(),
            Command::Witness {
                id: "abba".into(),
                out: None,
                chrome: None
            }
        );
        assert_eq!(
            parse(&args(&[
                "witness", "abba", "--out", "w.json", "--chrome", "t.json"
            ]))
            .unwrap(),
            Command::Witness {
                id: "abba".into(),
                out: Some("w.json".into()),
                chrome: Some("t.json".into())
            }
        );
        assert!(parse(&args(&["witness"])).is_err());
        assert!(parse(&args(&["witness", "abba", "--out"])).is_err());
        assert!(parse(&args(&["witness", "abba", "--bogus"])).is_err());
        assert_eq!(
            parse(&args(&["replay", "w.json"])).unwrap(),
            Command::Replay {
                path: "w.json".into()
            }
        );
        assert!(parse(&args(&["replay"])).is_err());
        assert!(parse(&args(&["replay", "a", "b"])).is_err());
    }

    #[test]
    fn witness_save_replay_round_trip() {
        let dir = std::env::temp_dir();
        let wpath = dir.join("lfm_cli_witness_test.json");
        let cpath = dir.join("lfm_cli_witness_test.trace.json");
        let out = run_opts(
            Command::Witness {
                id: "counter_rmw".into(),
                out: Some(wpath.to_string_lossy().into_owned()),
                chrome: Some(cpath.to_string_lossy().into_owned()),
            },
            Arc::new(NoopSink),
            &RunOptions::default(),
        );
        assert!(!out.degraded, "{}", out.text);
        assert!(out.text.contains("saved: "), "{}", out.text);
        assert!(out.text.contains("chrome trace: "), "{}", out.text);
        assert!(out.text.contains("witness (counter_rmw)"), "{}", out.text);
        assert!(out.text.contains("replay steps p50"), "{}", out.text);
        assert!(out.text.contains("seq | t1"), "{}", out.text);

        let chrome = std::fs::read_to_string(&cpath).unwrap();
        assert!(chrome.contains("\"traceEvents\""));

        let replay = run_opts(
            Command::Replay {
                path: wpath.to_string_lossy().into_owned(),
            },
            Arc::new(NoopSink),
            &RunOptions::default(),
        );
        assert!(!replay.degraded, "{}", replay.text);
        assert!(replay.text.contains("replay OK"), "{}", replay.text);
        assert!(replay.text.contains("outcome verified:"), "{}", replay.text);
        let _ = std::fs::remove_file(&wpath);
        let _ = std::fs::remove_file(&cpath);
    }

    #[test]
    fn replay_of_missing_or_corrupt_witness_degrades() {
        let out = run_opts(
            Command::Replay {
                path: "/nonexistent/lfm/w.json".into(),
            },
            Arc::new(NoopSink),
            &RunOptions::default(),
        );
        assert!(out.degraded);
        assert!(out.text.contains("cannot load witness"), "{}", out.text);

        let path = std::env::temp_dir().join("lfm_cli_corrupt_witness.json");
        std::fs::write(&path, "{\"schema\":\"lfm-trace/v1\",").unwrap();
        let out = run_opts(
            Command::Replay {
                path: path.to_string_lossy().into_owned(),
            },
            Arc::new(NoopSink),
            &RunOptions::default(),
        );
        let _ = std::fs::remove_file(&path);
        assert!(out.degraded);
        assert!(out.text.contains("malformed witness"), "{}", out.text);
    }

    #[test]
    fn witness_of_unknown_kernel_is_not_degraded() {
        let out = run_opts(
            Command::Witness {
                id: "bogus".into(),
                out: None,
                chrome: None,
            },
            Arc::new(NoopSink),
            &RunOptions::default(),
        );
        assert!(!out.degraded);
        assert!(out.text.contains("no kernel"));
    }

    #[test]
    fn run_list_kernels_counts() {
        let out = run(Command::ListKernels { family: None });
        assert!(out.starts_with("29 kernels"));
    }

    #[test]
    fn run_tables_single_artifact() {
        let out = run(Command::Tables {
            only: Some(Artifact::Table(2)),
            markdown: false,
        });
        assert!(out.contains("T2:"));
        assert!(out.contains("105"));
    }

    #[test]
    fn parses_chaos_and_deadline_flags_anywhere() {
        let inv = parse_invocation(&args(&[
            "kernel",
            "abba",
            "--chaos",
            "42",
            "--deadline",
            "10",
        ]))
        .unwrap();
        assert_eq!(inv.chaos, Some(42));
        assert_eq!(inv.deadline, Some(Duration::from_secs(10)));
        assert!(inv.options().active());
        // Fractional seconds, flags before the command.
        let inv = parse_invocation(&args(&["--deadline", "0.5", "kernel", "abba"])).unwrap();
        assert_eq!(inv.deadline, Some(Duration::from_millis(500)));
        assert_eq!(inv.chaos, None);
        // Without them, options are inert.
        let inv = parse_invocation(&args(&["kernel", "abba"])).unwrap();
        assert!(!inv.options().active());
    }

    #[test]
    fn parses_metrics_flag_anywhere() {
        let inv = parse_invocation(&args(&["--metrics", "m.txt", "explore", "abba"])).unwrap();
        assert_eq!(inv.metrics.as_deref(), Some("m.txt"));
        assert_eq!(inv.options().metrics.as_deref(), Some("m.txt"));
        let inv = parse_invocation(&args(&["tables", "t1", "--metrics", "m.txt"])).unwrap();
        assert_eq!(inv.metrics.as_deref(), Some("m.txt"));
        assert!(parse_invocation(&args(&["explore", "abba", "--metrics"])).is_err());
    }

    #[test]
    fn run_opts_tables_writes_metrics() {
        let path = std::env::temp_dir().join("lfm_cli_tables_metrics.txt");
        let opts = RunOptions {
            metrics: Some(path.to_string_lossy().into_owned()),
            ..RunOptions::default()
        };
        let out = run_opts(
            Command::Tables {
                only: Some(Artifact::Table(2)),
                markdown: false,
            },
            Arc::new(NoopSink),
            &opts,
        );
        assert!(!out.degraded, "{}", out.text);
        let text = std::fs::read_to_string(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert!(lfm_obs::check_exposition(&text).is_ok(), "{text}");
        assert!(
            text.contains("lfm_tables_artifacts_rendered_total 1"),
            "{text}"
        );
        assert!(
            text.contains("lfm_tables_artifacts_failed_total 0"),
            "{text}"
        );
        assert!(text.contains("lfm_tables_wall_seconds"), "{text}");
    }

    #[test]
    fn rejects_malformed_chaos_and_deadline() {
        assert!(parse_invocation(&args(&["kernel", "abba", "--chaos"])).is_err());
        assert!(parse_invocation(&args(&["kernel", "abba", "--chaos", "banana"])).is_err());
        assert!(parse_invocation(&args(&["kernel", "abba", "--deadline"])).is_err());
        assert!(parse_invocation(&args(&["kernel", "abba", "--deadline", "-3"])).is_err());
        assert!(parse_invocation(&args(&["kernel", "abba", "--deadline", "0"])).is_err());
        assert!(parse_invocation(&args(&["kernel", "abba", "--deadline", "nan"])).is_err());
        assert!(parse_invocation(&args(&["kernel", "abba", "--deadline", "inf"])).is_err());
    }

    fn kernel_cmd(id: &str, stats: bool) -> Command {
        Command::Kernel {
            id: id.into(),
            source: false,
            witness: false,
            stats,
        }
    }

    #[test]
    fn run_opts_deadline_reports_level_and_confidence() {
        let opts = RunOptions {
            chaos: None,
            deadline: Some(Duration::from_secs(10)),
            metrics: None,
        };
        let out = run_opts(kernel_cmd("abba", false), Arc::new(NoopSink), &opts);
        assert!(!out.degraded);
        assert!(out.text.contains("deadline:"), "{}", out.text);
        assert!(out.text.contains("per variant"), "{}", out.text);
        assert!(out.text.contains("level: "), "{}", out.text);
        assert!(out.text.contains("confidence: "), "{}", out.text);
        assert!(out.text.contains("(proved)"), "{}", out.text);
        assert!(!out.text.contains("BROKEN"), "{}", out.text);
    }

    #[test]
    fn run_opts_chaos_still_proves_fixes() {
        let opts = RunOptions {
            chaos: Some(42),
            deadline: None,
            metrics: None,
        };
        let out = run_opts(kernel_cmd("counter_rmw", false), Arc::new(NoopSink), &opts);
        assert!(!out.degraded);
        assert!(out.text.contains("chaos seed: 42"), "{}", out.text);
        assert!(out.text.contains("witness:"), "{}", out.text);
        assert!(out.text.contains("(proved)"), "{}", out.text);
        assert!(!out.text.contains("BROKEN"), "{}", out.text);
    }

    #[test]
    fn run_opts_budget_path_streams_budget_events() {
        let sink = Arc::new(lfm_obs::MemorySink::new());
        let opts = RunOptions {
            chaos: Some(7),
            deadline: Some(Duration::from_secs(5)),
            metrics: None,
        };
        run_opts(
            kernel_cmd("counter_rmw", false),
            Arc::clone(&sink) as Arc<dyn Sink>,
            &opts,
        );
        let kernel = registry::by_id("counter_rmw").unwrap();
        let reports = sink.events_named("budget", "report");
        assert_eq!(reports.len(), 1 + kernel.fixes.len());
        assert!(reports[0].field("level").is_some());
        assert!(reports[0].field("confidence").is_some());
    }

    #[test]
    fn run_opts_budget_stats_block() {
        let opts = RunOptions {
            chaos: None,
            deadline: Some(Duration::from_secs(10)),
            metrics: None,
        };
        let out = run_opts(kernel_cmd("counter_rmw", true), Arc::new(NoopSink), &opts);
        for needle in [
            "budget stats (counter_rmw, buggy variant)",
            "levels tried",
            "confidence",
            "wall (buggy)",
        ] {
            assert!(
                out.text.contains(needle),
                "missing {needle:?}:\n{}",
                out.text
            );
        }
    }

    #[test]
    fn run_opts_tables_is_not_degraded_on_success() {
        let out = run_opts(
            Command::Tables {
                only: Some(Artifact::Table(2)),
                markdown: false,
            },
            Arc::new(NoopSink),
            &RunOptions::default(),
        );
        assert!(!out.degraded);
        assert!(out.text.contains("T2:"));
        // Identical to the un-optioned renderer.
        assert_eq!(
            out.text,
            run(Command::Tables {
                only: Some(Artifact::Table(2)),
                markdown: false,
            })
        );
    }

    #[test]
    fn help_documents_the_robustness_surface() {
        for needle in [
            "--chaos",
            "--deadline",
            "--metrics",
            "--progress",
            "echaos",
            "edpor",
            "efuse",
            "--no-fuse",
            "eobs",
            "eserve",
            "lfm serve",
            "lfm bench-serve",
            "lfm top",
            "--trace",
            "--trace-slow-ms",
            "--interval-ms",
            "--once",
            "--chaos-net",
            "--shutdown",
            "lfm version",
            "EXIT STATUS",
            "flight recorder",
        ] {
            assert!(HELP.contains(needle), "missing {needle:?} in HELP");
        }
    }

    #[test]
    fn run_bench_serve_in_process_round_trip() {
        let dir = std::env::temp_dir().join(format!("lfm-cli-bench-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let out_path = dir.join("bench_serve.json");
        let sink: Arc<dyn Sink> = Arc::new(NoopSink);
        let out = run_bench_serve(
            &BenchServeArgs {
                addr: None,
                clients: Some(2),
                requests: Some(4),
                seed: Some(7),
                chaos_net: None,
                out: Some(out_path.to_string_lossy().into_owned()),
                shutdown: false,
            },
            &RunOptions::default(),
            &sink,
        );
        assert!(!out.degraded, "{}", out.text);
        for needle in [
            "bench-serve: 2 clients x 4 requests",
            "requests: 8 (",
            "cache hit rate:",
            "latency: p50",
            "retries: ",
            "degrade histogram:",
            "drained:",
            "clean=true",
            "report: ",
        ] {
            assert!(
                out.text.contains(needle),
                "missing {needle:?}:\n{}",
                out.text
            );
        }
        assert!(!out.text.contains("WRONG"), "{}", out.text);
        let doc = std::fs::read_to_string(&out_path).unwrap();
        assert!(doc.contains("\"schema\":\"lfm-bench-serve/v1\""), "{doc}");
        assert!(doc.contains("\"scenario\":\"no-chaos\""), "{doc}");
        assert!(doc.contains("\"retries_total\":"), "{doc}");
        assert!(doc.contains("\"max_retries\":"), "{doc}");
        assert!(doc.contains("\"clean_drain\":true"), "{doc}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_top_once_renders_a_live_snapshot() {
        let handle = lfm_serve::Server::start(
            lfm_serve::ServerConfig::default(),
            Arc::new(NoopSink) as Arc<dyn Sink>,
        )
        .expect("server starts");
        let addr = handle.addr().to_string();
        // Warm one check so the stage table has rows with counts.
        lfm_serve::Client::new(handle.addr())
            .check("counter_rmw", "buggy", None)
            .expect("check answers");
        let out = run_top(&addr, 1_000, true);
        assert!(!out.degraded, "{}", out.text);
        for needle in [
            "lfm top —",
            "uptime",
            "in-flight",
            "hits",
            "degrade:",
            "stage",
            "explore",
            "reply_write",
            "level exhaustive",
        ] {
            assert!(
                out.text.contains(needle),
                "missing {needle:?}:\n{}",
                out.text
            );
        }
        handle.request_shutdown();
        assert!(handle.wait().clean);
    }

    #[test]
    fn run_top_against_nothing_degrades() {
        // A dead port: bind, learn the address, drop the listener.
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        drop(listener);
        let out = run_top(&addr, 1_000, true);
        assert!(out.degraded, "{}", out.text);
        assert!(out.text.contains("unreachable"), "{}", out.text);
    }

    #[test]
    fn run_serve_writes_a_trace_dump_at_drain() {
        let dir = std::env::temp_dir().join(format!("lfm-cli-serve-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("serve-trace.json");
        let sink: Arc<dyn Sink> = Arc::new(NoopSink);
        // Drive the server from a second thread: one check, then a wire
        // shutdown so run_serve's wait() returns.
        let (addr_tx, addr_rx) = std::sync::mpsc::channel::<String>();
        let driver = std::thread::spawn(move || {
            let addr = addr_rx.recv().expect("server address");
            let resolved: std::net::SocketAddr = addr.parse().expect("addr parses");
            let client = lfm_serve::Client::new(resolved);
            client
                .check("counter_rmw", "buggy", None)
                .expect("check answers");
            client.shutdown().expect("shutdown acknowledged");
        });
        // run_serve announces its port on stdout, which this test can't
        // capture — so pick a free port up front (bind, read, release)
        // and pass it in explicitly.
        let probe = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = probe.local_addr().unwrap().to_string();
        drop(probe);
        addr_tx.send(addr.clone()).unwrap();
        let out = run_serve(
            ServeArgs {
                addr: Some(addr),
                dpor: false,
                workers: Some(2),
                queue: None,
                max_conns: None,
                trace: Some(trace_path.to_string_lossy().into_owned()),
                trace_slow_ms: None,
            },
            &RunOptions::default(),
            &sink,
        );
        driver.join().expect("driver thread");
        assert!(!out.degraded, "{}", out.text);
        assert!(out.text.contains("trace: "), "{}", out.text);
        let doc = std::fs::read_to_string(&trace_path).unwrap();
        assert!(doc.contains("\"schema\":\"lfm-serve-trace/v1\""), "{doc}");
        assert!(doc.contains("\"name\":\"explore\""), "{doc}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn run_bench_serve_unresolvable_addr_degrades() {
        let sink: Arc<dyn Sink> = Arc::new(NoopSink);
        let out = run_bench_serve(
            &BenchServeArgs {
                addr: Some("definitely-not-a-host^^:0".into()),
                clients: Some(1),
                requests: Some(1),
                seed: None,
                chaos_net: None,
                out: None,
                shutdown: false,
            },
            &RunOptions::default(),
            &sink,
        );
        assert!(out.degraded);
        assert!(out.text.contains("cannot resolve"), "{}", out.text);
    }
}
