//! # lfm-study — the study engine
//!
//! The primary contribution of the *Learning from Mistakes* (ASPLOS 2008)
//! reproduction: the analysis layer that turns the corpus, kernels,
//! detectors and STM substrates into the paper's artifacts —
//!
//! - [`tables`] — generators for the nine tables (applications, bug
//!   counts, patterns, manifestation scope, fix strategies, TM
//!   applicability), each computed from the corpus;
//! - [`findings`] — the findings checker: every headline fraction of the
//!   paper, measured and compared against the published value;
//! - [`figures`] — executable figure demos: each paper figure's bug
//!   kernel model-checked to a witness interleaving and its fixes proved;
//! - [`experiments`] — the implication experiments: E-scope (small-scope
//!   manifestation), E-detect (detector coverage matrix), E-tm
//!   (executable TM verdicts);
//! - [`report`] — full-report rendering used by the `tables` harness.
//!
//! # Example
//!
//! ```rust
//! use lfm_corpus::Corpus;
//! use lfm_study::findings::check_all;
//!
//! let corpus = Corpus::full();
//! let findings = check_all(&corpus);
//! assert!(findings.iter().all(|f| f.holds()));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod experiments;
pub mod figures;
pub mod findings;
pub mod profile;
pub mod report;
pub mod table;
pub mod tables;

pub use findings::{check_all, Finding};
pub use profile::{profile_tables, profile_tables_isolated, TableBuild, TableTiming};
pub use report::render_full_report;
pub use table::Table;
