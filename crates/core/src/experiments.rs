//! The implication experiments: E-scope (small-scope manifestation),
//! E-detect (detector coverage across kernels), E-tm (executable TM
//! verdicts vs. the corpus classification), E-wit (minimized witness
//! size vs. the paper's manifestation bands).

use std::fmt;

use lfm_corpus::{Corpus, TmApplicability};
use lfm_detect::{
    AtomicityDetector, DetectorKind, HappensBeforeDetector, LockOrderDetector, LocksetDetector,
    MuviDetector, OrderDetector,
};
use lfm_kernels::{registry, Family, Kernel};
use lfm_sim::{
    explore::trace_of, minimize, random::PctScheduler, Explorer, PairCoverage, RandomWalker, Trace,
    Witness,
};
use lfm_stm::{evaluate_all, TmVerdict};

use crate::table::{with_pct, Table};

// ---------------------------------------------------------------- E-scope

/// Per-kernel small-scope measurement.
#[derive(Debug, Clone)]
pub struct ScopeRow {
    /// Kernel id.
    pub kernel: &'static str,
    /// Kernel family.
    pub family: Family,
    /// Threads in the program.
    pub threads: usize,
    /// Schedules explored exhaustively.
    pub schedules: u64,
    /// Whether `schedules` hit the exploration cap.
    pub truncated: bool,
    /// Schedules explored under the sleep-set partial-order reduction.
    pub schedules_reduced: u64,
    /// Schedules that manifest the bug.
    pub failures: u64,
    /// Smallest preemption bound at which the bug manifests (0..=3), or
    /// `None` if it needs more.
    pub min_preemption_bound: Option<u32>,
}

/// Runs the small-scope experiment over every kernel: the study's
/// Findings 2/4 imply bugs manifest in tiny schedule spaces; we measure
/// the exact spaces.
pub fn scope_experiment() -> Vec<ScopeRow> {
    registry::all()
        .iter()
        .map(|kernel| {
            let program = kernel.buggy();
            let report = Explorer::new(&program).run();
            let reduced = Explorer::new(&program).sleep_sets().run();
            let mut min_bound = None;
            for bound in 0..=3 {
                let bounded = Explorer::new(&program).preemption_bound(bound).run();
                if bounded.counts.failures() > 0 {
                    min_bound = Some(bound);
                    break;
                }
            }
            ScopeRow {
                kernel: kernel.id,
                family: kernel.family,
                threads: program.n_threads(),
                schedules: report.schedules_run,
                truncated: report.truncated,
                schedules_reduced: reduced.schedules_run,
                failures: report.counts.failures(),
                min_preemption_bound: min_bound,
            }
        })
        .collect()
}

/// Renders the E-scope experiment as a table.
pub fn scope_table() -> Table {
    let rows = scope_experiment();
    let mut t = Table::new(
        "E-scope",
        "Small-scope manifestation (exhaustive exploration per kernel)",
        vec![
            "kernel",
            "family",
            "threads",
            "schedules",
            "sleep-set",
            "failing",
            "min preemptions",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.kernel.to_string(),
            r.family.to_string(),
            r.threads.to_string(),
            format!("{}{}", r.schedules, if r.truncated { "+" } else { "" }),
            r.schedules_reduced.to_string(),
            r.failures.to_string(),
            r.min_preemption_bound
                .map_or("> 3".to_string(), |b| b.to_string()),
        ]);
    }
    let within2 = rows
        .iter()
        .filter(|r| r.min_preemption_bound.is_some_and(|b| b <= 2))
        .count();
    t.note(format!(
        "{} of {} kernels manifest within a preemption bound of 2 — the \
         executable form of Findings 2/4",
        within2,
        rows.len()
    ));
    if rows.iter().any(|r| r.truncated) {
        t.note("'+' marks explorations cut off at the schedule cap");
    }
    t
}

// --------------------------------------------------------------- E-detect

/// Which detectors flag one kernel.
#[derive(Debug, Clone)]
pub struct CoverageRow {
    /// Kernel id.
    pub kernel: &'static str,
    /// Kernel family.
    pub family: Family,
    /// Variables the kernel involves.
    pub variables: usize,
    /// Detectors that flagged the kernel.
    pub flagged_by: Vec<DetectorKind>,
}

impl CoverageRow {
    /// `true` when the given detector flagged this kernel.
    pub fn flagged(&self, kind: DetectorKind) -> bool {
        self.flagged_by.contains(&kind)
    }
}

fn failing_trace(kernel: &Kernel) -> Option<(lfm_sim::Program, Trace)> {
    let program = kernel.buggy();
    let report = Explorer::new(&program).stop_on_first_failure().run();
    let (schedule, _) = report.first_failure?;
    let (trace, _) = trace_of(&program, &schedule, 5_000);
    Some((program, trace))
}

/// Runs every detector against every kernel: training traces come from
/// seeded random passing runs, the test trace is the model checker's
/// failure witness.
pub fn detector_coverage() -> Vec<CoverageRow> {
    registry::all()
        .iter()
        .map(|kernel| {
            let Some((program, test)) = failing_trace(kernel) else {
                return CoverageRow {
                    kernel: kernel.id,
                    family: kernel.family,
                    variables: kernel.variables,
                    flagged_by: Vec::new(),
                };
            };
            // Passing training runs for the invariant-based detectors.
            let training: Vec<Trace> = RandomWalker::new(&program, 7)
                .collect_traces(12)
                .into_iter()
                .filter(|(_, outcome)| outcome.is_ok())
                .map(|(t, _)| t)
                .collect();

            let mut flagged = Vec::new();
            if !HappensBeforeDetector::new().analyze(&test).is_empty() {
                flagged.push(DetectorKind::HappensBefore);
            }
            if !LocksetDetector::new().analyze(&test).is_empty() {
                flagged.push(DetectorKind::Lockset);
            }
            if !AtomicityDetector::train(training.iter())
                .analyze(&test)
                .is_empty()
            {
                flagged.push(DetectorKind::Atomicity);
            }
            if !OrderDetector::train(training.iter())
                .analyze(&test)
                .is_empty()
            {
                flagged.push(DetectorKind::Order);
            }
            if !MuviDetector::train(training.iter())
                .analyze(&test)
                .is_empty()
            {
                flagged.push(DetectorKind::Muvi);
            }
            let mut lockorder = LockOrderDetector::new();
            for t in training.iter().chain(std::iter::once(&test)) {
                lockorder.observe(t);
            }
            if !lockorder.cycles().is_empty() {
                flagged.push(DetectorKind::LockOrder);
            }
            CoverageRow {
                kernel: kernel.id,
                family: kernel.family,
                variables: kernel.variables,
                flagged_by: flagged,
            }
        })
        .collect()
}

/// Renders the E-detect experiment as a table.
pub fn coverage_table() -> Table {
    let rows = detector_coverage();
    let mut t = Table::new(
        "E-detect",
        "Detector coverage per kernel (x = flagged)",
        vec![
            "kernel",
            "family",
            "HB race",
            "lockset",
            "AVIO",
            "order",
            "MUVI",
            "lock-order",
        ],
    );
    for r in &rows {
        let mark = |k| if r.flagged(k) { "x" } else { "." };
        t.row(vec![
            r.kernel.to_string(),
            r.family.to_string(),
            mark(DetectorKind::HappensBefore).to_string(),
            mark(DetectorKind::Lockset).to_string(),
            mark(DetectorKind::Atomicity).to_string(),
            mark(DetectorKind::Order).to_string(),
            mark(DetectorKind::Muvi).to_string(),
            mark(DetectorKind::LockOrder).to_string(),
        ]);
    }
    let nd: Vec<_> = rows
        .iter()
        .filter(|r| r.family != Family::Deadlock)
        .collect();
    let caught_by_any = nd.iter().filter(|r| !r.flagged_by.is_empty()).count();
    let missed_by_hb = nd
        .iter()
        .filter(|r| !r.flagged(DetectorKind::HappensBefore))
        .count();
    t.note(format!(
        "non-deadlock kernels: {} flagged by at least one detector; \
         {} escape the race detector — no single detector family covers the \
         study's bug spectrum",
        with_pct(caught_by_any, nd.len()),
        missed_by_hb
    ));
    t
}

// ---------------------------------------------------------------- E-test

/// Per-kernel scheduler comparison: manifestation under naive random
/// scheduling vs. PCT vs. systematic exploration.
#[derive(Debug, Clone)]
pub struct SchedulerRow {
    /// Kernel id.
    pub kernel: &'static str,
    /// Manifestation rate over the random trials.
    pub random_rate: f64,
    /// Manifestation rate over the PCT trials (depth 3).
    pub pct_rate: f64,
    /// Trials used for each sampler.
    pub trials: u64,
    /// Schedules the bounded systematic search needed to find the bug
    /// (preemption bound 2, stop at first failure).
    pub systematic_schedules: u64,
}

/// Compares naive stress, PCT and bounded-systematic testing on every
/// kernel — the study's testing implication, measured. Seeded and
/// deterministic.
pub fn scheduler_comparison(trials: u64) -> Vec<SchedulerRow> {
    registry::all()
        .iter()
        .map(|kernel| {
            let program = kernel.buggy();
            let random = RandomWalker::new(&program, 0xC0FFEE).run_trials(trials);
            let pct = PctScheduler::new(&program, 0xC0FFEE, 3).run_trials(trials);
            let systematic = Explorer::new(&program)
                .preemption_bound(2)
                .stop_on_first_failure()
                .run();
            SchedulerRow {
                kernel: kernel.id,
                random_rate: random.failure_rate(),
                pct_rate: pct.failure_rate(),
                trials,
                systematic_schedules: systematic.schedules_run,
            }
        })
        .collect()
}

/// Renders the E-test experiment as a table.
pub fn scheduler_table(trials: u64) -> Table {
    let rows = scheduler_comparison(trials);
    let mut t = Table::new(
        "E-test",
        format!("Scheduler comparison over {trials} trials per sampler"),
        vec![
            "kernel",
            "random hit-rate",
            "PCT(d=3) hit-rate",
            "systematic schedules to bug",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.kernel.to_string(),
            format!("{:.0}%", 100.0 * r.random_rate),
            format!("{:.0}%", 100.0 * r.pct_rate),
            r.systematic_schedules.to_string(),
        ]);
    }
    let random_missed = rows.iter().filter(|r| r.random_rate == 0.0).count();
    let pct_missed = rows.iter().filter(|r| r.pct_rate == 0.0).count();
    t.note(format!(
        "random stress missed {random_missed} kernels entirely, PCT missed \
         {pct_missed}; bounded-systematic search found every bug — the \
         study's testing implication"
    ));
    t
}

// ----------------------------------------------------------------- E-cov

/// Per-kernel interleaving-coverage measurement.
#[derive(Debug, Clone)]
pub struct CoverageGrowthRow {
    /// Kernel id.
    pub kernel: &'static str,
    /// Total distinct conflicting access pairs across the exhaustive
    /// exploration (the coverage universe).
    pub total_pairs: usize,
    /// Pairs covered by 5 random trials.
    pub pairs_at_5: usize,
    /// Pairs covered by 25 random trials.
    pub pairs_at_25: usize,
    /// Whether those 25 random trials manifested the bug at least once.
    pub bug_found_at_25: bool,
}

/// Measures access-pair coverage growth under random testing against the
/// exhaustive-universe baseline — the executable form of "coverage
/// saturates while bugs lurk".
pub fn coverage_growth() -> Vec<CoverageGrowthRow> {
    registry::all()
        .iter()
        .filter(|k| k.id != "livelock_retry") // its exhaustive space is capped
        .map(|kernel| {
            let program = kernel.buggy();
            // The universe: union over every interleaving. Full
            // exploration, not sleep sets — pair coverage distinguishes
            // read-read orderings that partial-order reduction collapses.
            let mut universe = PairCoverage::new();
            Explorer::new(&program)
                .record_events()
                .run_with_callback(|exec, _| {
                    universe.observe_events(&exec.events());
                });
            // Random campaigns.
            let traces = RandomWalker::new(&program, 0xBEEF).collect_traces(25);
            let mut cov5 = PairCoverage::new();
            let mut cov25 = PairCoverage::new();
            let mut bug_found = false;
            for (i, (trace, outcome)) in traces.iter().enumerate() {
                if i < 5 {
                    cov5.observe_events(&trace.events);
                }
                cov25.observe_events(&trace.events);
                if outcome.is_failure() {
                    bug_found = true;
                }
            }
            CoverageGrowthRow {
                kernel: kernel.id,
                total_pairs: universe.len(),
                pairs_at_5: cov5.len(),
                pairs_at_25: cov25.len(),
                bug_found_at_25: bug_found,
            }
        })
        .collect()
}

/// Renders the E-cov experiment as a table.
pub fn coverage_growth_table() -> Table {
    let rows = coverage_growth();
    let mut t = Table::new(
        "E-cov",
        "Access-pair coverage growth under random testing (vs exhaustive universe)",
        vec![
            "kernel",
            "universe",
            "@5 trials",
            "@25 trials",
            "bug found @25",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.kernel.to_string(),
            r.total_pairs.to_string(),
            r.pairs_at_5.to_string(),
            r.pairs_at_25.to_string(),
            if r.bug_found_at_25 { "yes" } else { "NO" }.to_string(),
        ]);
    }
    let blind = rows.iter().filter(|r| r.total_pairs == 0).count();
    let saturated = rows
        .iter()
        .filter(|r| r.total_pairs > 0 && r.pairs_at_25 == r.total_pairs)
        .count();
    let with_pairs = rows.iter().filter(|r| r.total_pairs > 0).count();
    t.note(format!(
        "{saturated}/{with_pairs} memory-access kernels saturate their pair \
         universe within 25 random trials — yet E-test shows random testing \
         still misses manifestations at small budgets: covering pairs is not \
         the same as forcing the buggy conjunction"
    ));
    t.note(format!(
        "{blind} kernels (pure-synchronization deadlocks and lost wakeups) \
         have an EMPTY pair universe: access-pair coverage cannot even \
         express their bugs"
    ));
    t
}

// ----------------------------------------------------------------- E-wit

/// Per-kernel minimized-witness measurement: how small the bug's
/// manifestation really is once ddmin strips the exploration accidents
/// away.
#[derive(Debug, Clone)]
pub struct WitnessRow {
    /// Kernel id.
    pub kernel: &'static str,
    /// Kernel family.
    pub family: Family,
    /// Distinct threads the minimized schedule runs.
    pub threads: usize,
    /// Context switches in the minimized schedule.
    pub switches: usize,
    /// Operations in cross-thread conflicts (a deadlock's attempted
    /// acquisitions included).
    pub conflicting_accesses: usize,
    /// Distinct shared objects involved in those conflicts — the
    /// "resources" of the paper's deadlock bands.
    pub conflict_objects: usize,
    /// Choices in the explorer's first failing schedule.
    pub schedule_before: usize,
    /// Choices in the minimized schedule.
    pub schedule_after: usize,
    /// Validation replays ddmin spent.
    pub replays: usize,
}

/// The paper's manifestation bands, per family kind (non-deadlock vs
/// deadlock), as fractions of bugs in the band.
///
/// Findings 2/3/9/10 of the study: 96% of non-deadlock bugs involve at
/// most 2 threads and 92% at most 4 memory accesses; 97% of deadlock
/// bugs involve at most 2 threads and 96% at most 2 resources.
pub mod witness_bands {
    /// Non-deadlock: share of bugs with ≤ 2 threads.
    pub const NONDEADLOCK_THREADS_LE2: f64 = 0.96;
    /// Non-deadlock: share of bugs with ≤ 4 involved accesses.
    pub const NONDEADLOCK_ACCESSES_LE4: f64 = 0.92;
    /// Deadlock: share of bugs with ≤ 2 threads.
    pub const DEADLOCK_THREADS_LE2: f64 = 0.97;
    /// Deadlock: share of bugs with ≤ 2 resources.
    pub const DEADLOCK_RESOURCES_LE2: f64 = 0.96;
}

/// Runs the witness experiment: for every kernel, find the first failing
/// schedule, minimize it (each ddmin candidate validated by replay), and
/// measure the minimized witness — the executable counterpart of the
/// paper's "bugs manifest small" findings.
pub fn witness_experiment() -> Vec<WitnessRow> {
    registry::all()
        .iter()
        .filter_map(|kernel| {
            let program = kernel.buggy();
            let report = Explorer::new(&program).stop_on_first_failure().run();
            let (schedule, _) = report.first_failure?;
            let min = minimize(&program, &schedule, 5_000);
            let w = Witness::capture(&program, kernel.id, &min.schedule, 5_000);
            Some(WitnessRow {
                kernel: kernel.id,
                family: kernel.family,
                threads: w.stats.threads,
                switches: w.stats.switches,
                conflicting_accesses: w.stats.conflicting_accesses,
                conflict_objects: w.stats.conflict_objects,
                schedule_before: schedule.len(),
                schedule_after: min.schedule.len(),
                replays: min.replays,
            })
        })
        .collect()
}

/// Renders the E-wit experiment as a table, with the paper-band
/// comparison (and any deviating kernels, by name) in the notes.
pub fn witness_table() -> Table {
    let rows = witness_experiment();
    let mut t = Table::new(
        "E-wit",
        "Minimized witness size per kernel (ddmin, every candidate replay-validated)",
        vec![
            "kernel",
            "family",
            "threads",
            "switches",
            "confl. accesses",
            "objects",
            "schedule",
            "replays",
        ],
    );
    for r in &rows {
        t.row(vec![
            r.kernel.to_string(),
            r.family.to_string(),
            r.threads.to_string(),
            r.switches.to_string(),
            r.conflicting_accesses.to_string(),
            r.conflict_objects.to_string(),
            format!("{} -> {}", r.schedule_before, r.schedule_after),
            r.replays.to_string(),
        ]);
    }
    let (dead, nondead): (Vec<_>, Vec<_>) = rows.iter().partition(|r| r.family == Family::Deadlock);
    let nd_threads = nondead.iter().filter(|r| r.threads <= 2).count();
    let nd_accesses = nondead
        .iter()
        .filter(|r| r.conflicting_accesses <= 4)
        .count();
    let d_threads = dead.iter().filter(|r| r.threads <= 2).count();
    let d_resources = dead.iter().filter(|r| r.conflict_objects <= 2).count();
    t.note(format!(
        "non-deadlock: {} witnesses need <= 2 threads (paper: {:.0}%), \
         {} need <= 4 conflicting accesses (paper: {:.0}%)",
        with_pct(nd_threads, nondead.len()),
        100.0 * witness_bands::NONDEADLOCK_THREADS_LE2,
        with_pct(nd_accesses, nondead.len()),
        100.0 * witness_bands::NONDEADLOCK_ACCESSES_LE4,
    ));
    t.note(format!(
        "deadlock: {} witnesses need <= 2 threads (paper: {:.0}%), \
         {} need <= 2 resources (paper: {:.0}%)",
        with_pct(d_threads, dead.len()),
        100.0 * witness_bands::DEADLOCK_THREADS_LE2,
        with_pct(d_resources, dead.len()),
        100.0 * witness_bands::DEADLOCK_RESOURCES_LE2,
    ));
    let deviating: Vec<&str> = rows
        .iter()
        .filter(|r| {
            if r.family == Family::Deadlock {
                r.threads > 2 || r.conflict_objects > 2
            } else {
                r.threads > 2 || r.conflicting_accesses > 4
            }
        })
        .map(|r| r.kernel)
        .collect();
    if deviating.is_empty() {
        t.note("no kernel exceeds its paper band");
    } else {
        t.note(format!(
            "outside the paper bands: {} — kernels modeling the paper's \
             own >2-thread / >4-access tail",
            deviating.join(", ")
        ));
    }
    t
}

// ------------------------------------------------------------------ E-tm

/// The E-tm experiment: executable TM verdicts joined with the corpus
/// classification of the bugs each kernel models.
#[derive(Debug, Clone)]
pub struct TmExperiment {
    /// Verdicts per kernel from the STM evaluator.
    pub verdicts: Vec<TmVerdict>,
    /// Kernels where the executable verdict agrees with the corpus TM
    /// classification of the kernel's source bug.
    pub agreements: usize,
    /// Kernels with a linked source bug to compare against.
    pub comparable: usize,
}

/// Runs the E-tm experiment.
pub fn tm_experiment(corpus: &Corpus) -> TmExperiment {
    let verdicts = evaluate_all();
    let mut agreements = 0;
    let mut comparable = 0;
    for kernel in registry::all() {
        let Some(source) = kernel.source_bug else {
            continue;
        };
        let Some(bug) = corpus.get_str(source) else {
            continue;
        };
        let Some(verdict) = verdicts.iter().find(|v| v.kernel == kernel.id) else {
            continue;
        };
        comparable += 1;
        // `MaybeHelps` is the study's hedge (help requires restructuring
        // or has caveats); either executable verdict is consistent with
        // it. `Helps`/`CannotHelp` must match the verdict exactly.
        let agrees = match bug.tm {
            TmApplicability::Helps => verdict.helps,
            TmApplicability::MaybeHelps => true,
            TmApplicability::CannotHelp(_) => !verdict.helps,
        };
        if agrees {
            agreements += 1;
        }
    }
    TmExperiment {
        verdicts,
        agreements,
        comparable,
    }
}

impl fmt::Display for TmExperiment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "E-tm: executable TM applicability")?;
        for v in &self.verdicts {
            writeln!(f, "  {v}")?;
        }
        writeln!(
            f,
            "  verdicts agree with the corpus classification on {}/{} comparable kernels",
            self.agreements, self.comparable
        )
    }
}

/// Renders the E-tm experiment as a table.
pub fn tm_table(corpus: &Corpus) -> Table {
    let exp = tm_experiment(corpus);
    let mut t = Table::new(
        "E-tm",
        "Executable TM verdicts per kernel",
        vec!["kernel", "verdict", "io duplicated under aborts"],
    );
    for v in &exp.verdicts {
        let verdict = if v.helps {
            "helps".to_string()
        } else {
            match v.obstacle {
                Some(o) => format!("cannot ({o})"),
                None => "n/a".to_string(),
            }
        };
        t.row(vec![
            v.kernel.clone(),
            verdict,
            if v.io_duplicated() { "yes" } else { "-" }.to_string(),
        ]);
    }
    let helped = exp.verdicts.iter().filter(|v| v.helps).count();
    t.note(format!(
        "TM removes the bug in {} kernels; agreement with corpus \
         classification: {}/{}",
        with_pct(helped, exp.verdicts.len()),
        exp.agreements,
        exp.comparable
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_rows_cover_all_kernels() {
        let rows = scope_experiment();
        assert_eq!(rows.len(), registry::all().len());
        for r in &rows {
            assert!(r.failures > 0, "{} must manifest", r.kernel);
            assert!(
                r.min_preemption_bound.is_some(),
                "{} should manifest within 3 preemptions",
                r.kernel
            );
        }
    }

    #[test]
    fn coverage_shows_detector_blind_spots() {
        let rows = detector_coverage();
        assert_eq!(rows.len(), registry::all().len());

        // The pure-atomic multi-variable kernel escapes the race detector
        // — but the MUVI correlation detector catches it (and it alone).
        let dc = rows
            .iter()
            .find(|r| r.kernel == "double_counter_invariant")
            .unwrap();
        assert!(
            !dc.flagged(DetectorKind::HappensBefore),
            "{:?}",
            dc.flagged_by
        );
        assert!(dc.flagged(DetectorKind::Muvi), "{:?}", dc.flagged_by);

        // Every multi-variable kernel is covered by MUVI.
        for r in rows.iter().filter(|r| r.family == Family::MultiVariable) {
            assert!(
                r.flagged(DetectorKind::Muvi),
                "{}: {:?}",
                r.kernel,
                r.flagged_by
            );
        }

        // The single-variable racy counter is caught by HB and AVIO.
        let cr = rows.iter().find(|r| r.kernel == "counter_rmw").unwrap();
        assert!(cr.flagged(DetectorKind::HappensBefore));
        assert!(cr.flagged(DetectorKind::Atomicity));

        // The ABBA cycle is predicted by the lock-order graph.
        let abba = rows.iter().find(|r| r.kernel == "abba").unwrap();
        assert!(abba.flagged(DetectorKind::LockOrder));

        // The use-before-init order violation is caught by the order
        // detector.
        let ubi = rows
            .iter()
            .find(|r| r.kernel == "use_before_init_mozilla")
            .unwrap();
        assert!(ubi.flagged(DetectorKind::Order), "{:?}", ubi.flagged_by);
    }

    #[test]
    fn coverage_growth_is_monotone_and_bounded() {
        let rows = coverage_growth();
        assert!(!rows.is_empty());
        for r in &rows {
            assert!(r.pairs_at_5 <= r.pairs_at_25, "{}", r.kernel);
            assert!(
                r.pairs_at_25 <= r.total_pairs,
                "{}: sampled coverage exceeded the universe ({} > {})",
                r.kernel,
                r.pairs_at_25,
                r.total_pairs
            );
        }
        // Memory-access bugs have a non-empty pair universe…
        let counter = rows.iter().find(|r| r.kernel == "counter_rmw").unwrap();
        assert!(counter.total_pairs > 0);
        // …while the pure-synchronization lost-wakeup bug is *invisible*
        // to access-pair coverage: zero pairs, bug anyway. Another
        // coverage blind spot, measured.
        let missed = rows.iter().find(|r| r.kernel == "missed_signal").unwrap();
        assert_eq!(missed.total_pairs, 0);
    }

    #[test]
    fn tm_experiment_agrees_with_corpus_mostly() {
        let corpus = Corpus::full();
        let exp = tm_experiment(&corpus);
        assert!(exp.comparable >= 20);
        assert!(
            exp.agreements * 10 >= exp.comparable * 8,
            "agreement too low: {}/{}",
            exp.agreements,
            exp.comparable
        );
    }

    #[test]
    fn tables_render() {
        assert!(!scope_table().is_empty());
        assert!(!coverage_table().is_empty());
        assert!(!tm_table(&Corpus::full()).is_empty());
    }

    #[test]
    fn witness_rows_cover_all_kernels_and_shrink() {
        let rows = witness_experiment();
        assert_eq!(rows.len(), registry::all().len());
        for r in &rows {
            assert!(r.schedule_after > 0, "{}", r.kernel);
            assert!(r.threads >= 1, "{}", r.kernel);
            assert!(r.replays >= 2, "{}", r.kernel);
            // Deadlocks other than the self-deadlock (relocking a held
            // mutex) involve a second thread — possibly one that never
            // ran a step and is only blocked at the end.
            if r.family == Family::Deadlock && r.kernel != "self_relock" {
                assert!(r.threads >= 2, "{}", r.kernel);
                assert!(r.conflict_objects >= 1, "{}", r.kernel);
            }
        }
        // The self-deadlock is the 1-thread/1-resource extreme of the
        // paper's deadlock distribution.
        let relock = rows.iter().find(|r| r.kernel == "self_relock").unwrap();
        assert_eq!(relock.threads, 1);
        assert!(relock.conflict_objects <= 1, "{relock:?}");
        // The single-variable race shrinks to the paper's minimal shape.
        let counter = rows.iter().find(|r| r.kernel == "counter_rmw").unwrap();
        assert!(counter.threads <= 2);
        assert!(counter.conflicting_accesses <= 4, "{counter:?}");
        // ABBA is the canonical 2-thread / 2-resource deadlock.
        let abba = rows.iter().find(|r| r.kernel == "abba").unwrap();
        assert_eq!(abba.threads, 2);
        assert_eq!(abba.conflict_objects, 2);
    }

    #[test]
    fn witness_table_reports_band_comparison() {
        let t = witness_table();
        assert!(!t.is_empty());
        let s = t.to_string();
        assert!(s.contains("E-wit"), "{s}");
        assert!(s.contains("paper: 96%"), "{s}");
        assert!(s.contains("paper: 97%"), "{s}");
    }
}
