//! The findings checker: every headline statistic of the paper, computed
//! from the corpus and compared against the published value.

use std::fmt;

use lfm_corpus::{
    AccessCount, Corpus, DeadlockFix, NonDeadlockFix, ResourceCount, ThreadCount, TmApplicability,
    VariableCount,
};

/// One checked finding: a published fraction vs. the corpus-measured one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Short id, e.g. `"F1-pattern"`.
    pub id: &'static str,
    /// The paper's statement.
    pub statement: &'static str,
    /// Published (numerator, denominator).
    pub paper: (usize, usize),
    /// Measured (numerator, denominator).
    pub measured: (usize, usize),
}

impl Finding {
    /// `true` when measured matches published exactly.
    pub fn holds(&self) -> bool {
        self.paper == self.measured
    }

    /// The measured fraction as a percentage.
    pub fn measured_pct(&self) -> f64 {
        if self.measured.1 == 0 {
            0.0
        } else {
            100.0 * self.measured.0 as f64 / self.measured.1 as f64
        }
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} — paper {}/{}, measured {}/{} ({:.0}%){}",
            self.id,
            self.statement,
            self.paper.0,
            self.paper.1,
            self.measured.0,
            self.measured.1,
            self.measured_pct(),
            if self.holds() { "" } else { "  ** MISMATCH **" }
        )
    }
}

/// Computes and checks all findings over a corpus.
pub fn check_all(corpus: &Corpus) -> Vec<Finding> {
    let nd: Vec<_> = corpus.non_deadlock();
    let d: Vec<_> = corpus.deadlock();
    let n_nd = nd.len();
    let n_d = d.len();
    let n = corpus.len();

    let a_or_o = nd
        .iter()
        .filter(|b| b.patterns().unwrap().is_atomicity_or_order())
        .count();
    let le2_threads = corpus
        .iter()
        .filter(|b| b.threads != ThreadCount::MoreThanTwo)
        .count();
    let one_var = nd
        .iter()
        .filter(|b| b.variables() == Some(VariableCount::One))
        .count();
    let le4_acc = nd
        .iter()
        .filter(|b| b.accesses() == Some(AccessCount::AtMostFour))
        .count();
    let le2_res = d
        .iter()
        .filter(|b| b.resources() != Some(ResourceCount::MoreThanTwo))
        .count();
    let one_res = d
        .iter()
        .filter(|b| b.resources() == Some(ResourceCount::One))
        .count();
    let lock_fixes = nd
        .iter()
        .filter(|b| {
            matches!(
                b.fix(),
                lfm_corpus::FixStrategy::NonDeadlock(NonDeadlockFix::AddOrChangeLock)
            )
        })
        .count();
    let cond_fixes = nd
        .iter()
        .filter(|b| {
            matches!(
                b.fix(),
                lfm_corpus::FixStrategy::NonDeadlock(NonDeadlockFix::ConditionCheck)
            )
        })
        .count();
    let give_up = d
        .iter()
        .filter(|b| {
            matches!(
                b.fix(),
                lfm_corpus::FixStrategy::Deadlock(DeadlockFix::GiveUpResource)
            )
        })
        .count();
    let tm_helps = corpus
        .iter()
        .filter(|b| matches!(b.tm, TmApplicability::Helps))
        .count();
    let tm_cannot = corpus
        .iter()
        .filter(|b| matches!(b.tm, TmApplicability::CannotHelp(_)))
        .count();

    vec![
        Finding {
            id: "F1-pattern",
            statement: "non-deadlock bugs are atomicity or order violations",
            paper: (72, 74),
            measured: (a_or_o, n_nd),
        },
        Finding {
            id: "F2-threads",
            statement: "bugs manifest with at most two threads",
            paper: (101, 105),
            measured: (le2_threads, n),
        },
        Finding {
            id: "F3-variables",
            statement: "non-deadlock bugs involve a single variable",
            paper: (49, 74),
            measured: (one_var, n_nd),
        },
        Finding {
            id: "F4-accesses",
            statement: "non-deadlock bugs manifest by ordering at most 4 accesses",
            paper: (68, 74),
            measured: (le4_acc, n_nd),
        },
        Finding {
            id: "F5-resources",
            statement: "deadlocks involve at most two resources",
            paper: (30, 31),
            measured: (le2_res, n_d),
        },
        Finding {
            id: "F5b-self",
            statement: "deadlocks involve a single resource (self-deadlock)",
            paper: (7, 31),
            measured: (one_res, n_d),
        },
        Finding {
            id: "F6-lockfix",
            statement: "non-deadlock fixes that add or change locks",
            paper: (20, 74),
            measured: (lock_fixes, n_nd),
        },
        Finding {
            id: "F6b-condfix",
            statement: "non-deadlock fixes that add condition checks",
            paper: (19, 74),
            measured: (cond_fixes, n_nd),
        },
        Finding {
            id: "F7-giveup",
            statement: "deadlock fixes that give up a resource",
            paper: (19, 31),
            measured: (give_up, n_d),
        },
        Finding {
            id: "F8-tm-helps",
            statement: "bugs TM could directly help",
            paper: (42, 105),
            measured: (tm_helps, n),
        },
        Finding {
            id: "F8b-tm-cannot",
            statement: "bugs TM cannot help",
            paper: (26, 105),
            measured: (tm_cannot, n),
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_finding_holds_on_the_full_corpus() {
        let findings = check_all(&Corpus::full());
        assert_eq!(findings.len(), 11);
        for finding in &findings {
            assert!(finding.holds(), "{finding}");
        }
    }

    #[test]
    fn finding_percentages() {
        let findings = check_all(&Corpus::full());
        let f1 = findings.iter().find(|f| f.id == "F1-pattern").unwrap();
        assert!((f1.measured_pct() - 97.3).abs() < 0.1);
        let f2 = findings.iter().find(|f| f.id == "F2-threads").unwrap();
        assert!((f2.measured_pct() - 96.2).abs() < 0.1);
    }

    #[test]
    fn mismatch_is_detected_and_displayed() {
        // Remove one bug: several findings must now fail.
        let full = Corpus::full();
        let truncated: Corpus = full.iter().skip(1).cloned().collect();
        let findings = check_all(&truncated);
        assert!(findings.iter().any(|f| !f.holds()));
        let broken = findings.iter().find(|f| !f.holds()).unwrap();
        assert!(broken.to_string().contains("MISMATCH"));
    }

    #[test]
    fn class_filters_are_disjoint() {
        let corpus = Corpus::full();
        let nd = corpus
            .query()
            .class(lfm_corpus::BugClass::NonDeadlock)
            .count();
        let d = corpus.query().class(lfm_corpus::BugClass::Deadlock).count();
        assert_eq!(nd + d, corpus.len());
    }
}
