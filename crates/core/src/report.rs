//! Full-study report rendering: every table, finding, figure and
//! experiment in one document.

use lfm_corpus::Corpus;

use crate::experiments::{
    coverage_growth_table, coverage_table, scheduler_table, scope_table, tm_table,
};
use crate::figures::all_figures;
use crate::findings::check_all;
use crate::tables::all_tables;

/// Renders the complete study report as plain text. This is what the
/// `tables` harness binary prints; `EXPERIMENTS.md` records a snapshot.
pub fn render_full_report(corpus: &Corpus) -> String {
    let mut out = String::new();
    out.push_str(
        "LEARNING FROM MISTAKES — reproduction report\n\
         =============================================\n\n",
    );

    out.push_str("## Findings (paper vs measured)\n\n");
    for finding in check_all(corpus) {
        out.push_str(&format!("{finding}\n"));
    }
    out.push('\n');

    out.push_str("## Tables\n\n");
    for table in all_tables(corpus) {
        out.push_str(&table.to_string());
        out.push('\n');
    }

    out.push_str("## Figures (kernel demos)\n\n");
    for figure in all_figures() {
        out.push_str(&figure.to_string());
        out.push('\n');
    }

    out.push_str("## Implication experiments\n\n");
    out.push_str(&scope_table().to_string());
    out.push('\n');
    out.push_str(&coverage_table().to_string());
    out.push('\n');
    out.push_str(&scheduler_table(100).to_string());
    out.push('\n');
    out.push_str(&coverage_growth_table().to_string());
    out.push('\n');
    out.push_str(&tm_table(corpus).to_string());

    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_contains_all_sections() {
        let report = render_full_report(&Corpus::full());
        for needle in [
            "## Findings",
            "## Tables",
            "## Figures",
            "## Implication experiments",
            "T1:",
            "T9:",
            "F1:",
            "F5:",
            "E-scope",
            "E-detect",
            "E-test",
            "E-cov",
            "E-tm",
        ] {
            assert!(report.contains(needle), "missing {needle}");
        }
    }

    #[test]
    fn report_shows_no_mismatches() {
        let report = render_full_report(&Corpus::full());
        assert!(!report.contains("MISMATCH"));
    }
}
