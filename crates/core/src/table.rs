//! A lightweight typed table with aligned-ASCII and Markdown rendering —
//! the output format of every regenerated paper table.

use std::fmt;

/// One regenerable table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    /// Identifier, e.g. `"T3"`.
    pub id: String,
    /// Title as printed above the table.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Row cells (each row must have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
    /// Footnotes (provenance, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        headers: Vec<impl Into<String>>,
    ) -> Table {
        Table {
            id: id.into(),
            title: title.into(),
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics when the row width does not match the header width.
    pub fn row(&mut self, cells: Vec<impl Into<String>>) -> &mut Table {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
        self
    }

    /// Appends a footnote.
    pub fn note(&mut self, note: impl Into<String>) -> &mut Table {
        self.notes.push(note.into());
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when there are no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.chars().count());
            }
        }
        widths
    }

    /// Renders as a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = format!("### {}: {}\n\n", self.id, self.title);
        out.push('|');
        for h in &self.headers {
            out.push_str(&format!(" {h} |"));
        }
        out.push_str("\n|");
        for _ in &self.headers {
            out.push_str("---|");
        }
        out.push('\n');
        for row in &self.rows {
            out.push('|');
            for cell in row {
                out.push_str(&format!(" {cell} |"));
            }
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("\n> {note}\n"));
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}: {}", self.id, self.title)?;
        let widths = self.widths();
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        writeln!(f, "+{sep}+")?;
        let render_row = |cells: &[String]| -> String {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(&widths) {
                line.push_str(&format!(" {cell:w$} |", w = w));
            }
            line
        };
        writeln!(f, "{}", render_row(&self.headers))?;
        writeln!(f, "+{sep}+")?;
        for row in &self.rows {
            writeln!(f, "{}", render_row(row))?;
        }
        writeln!(f, "+{sep}+")?;
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Formats `part` of `whole` as `"part (pp%)"`.
pub fn with_pct(part: usize, whole: usize) -> String {
    if whole == 0 {
        format!("{part} (–)")
    } else {
        format!("{part} ({:.0}%)", 100.0 * part as f64 / whole as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new("T0", "demo", vec!["app", "bugs"]);
        t.row(vec!["MySQL", "23"]);
        t.row(vec!["Apache", "17"]);
        t.note("synthesized");
        t
    }

    #[test]
    fn display_is_aligned() {
        let s = sample().to_string();
        assert!(s.contains("T0: demo"));
        assert!(s.contains("| app    | bugs |"));
        assert!(s.contains("| MySQL  | 23   |"));
        assert!(s.contains("note: synthesized"));
    }

    #[test]
    fn markdown_has_header_separator() {
        let md = sample().to_markdown();
        assert!(md.contains("| app | bugs |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("> synthesized"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn row_width_checked() {
        let mut t = Table::new("T0", "demo", vec!["a", "b"]);
        t.row(vec!["only-one"]);
    }

    #[test]
    fn pct_formatting() {
        assert_eq!(with_pct(72, 74), "72 (97%)");
        assert_eq!(with_pct(0, 74), "0 (0%)");
        assert_eq!(with_pct(1, 0), "1 (–)");
    }

    #[test]
    fn len_and_empty() {
        assert_eq!(sample().len(), 2);
        assert!(!sample().is_empty());
        assert!(Table::new("T", "t", vec!["h"]).is_empty());
    }
}
