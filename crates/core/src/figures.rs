//! Figure demos (F1–F5).
//!
//! The paper's figures are code excerpts of representative bugs. The
//! executable equivalent: run the corresponding kernel's buggy variant
//! under the model checker (exhibiting the witness interleaving the
//! figure's caption describes) and each fixed variant to proof.

use std::fmt;

use lfm_kernels::{registry, FixKind, Kernel, Variant};
use lfm_sim::{pseudocode, Explorer, Outcome, Schedule};

/// The result of one figure demo.
#[derive(Debug, Clone)]
pub struct FigureDemo {
    /// Figure id, e.g. `"F1"`.
    pub id: &'static str,
    /// Paper-figure description.
    pub caption: &'static str,
    /// The kernel demonstrated.
    pub kernel_id: &'static str,
    /// Interleavings explored on the buggy variant.
    pub schedules_explored: u64,
    /// Interleavings that manifested the bug.
    pub failing_schedules: u64,
    /// One witness interleaving.
    pub witness: Option<(Schedule, Outcome)>,
    /// Fix strategies proved correct by exhaustive exploration.
    pub fixes_proved: Vec<FixKind>,
    /// The buggy variant rendered as paper-figure pseudo-code.
    pub source: String,
}

impl fmt::Display for FigureDemo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: {} (kernel `{}`)",
            self.id, self.caption, self.kernel_id
        )?;
        for line in self.source.lines() {
            writeln!(f, "  | {line}")?;
        }
        writeln!(
            f,
            "  buggy: {}/{} interleavings manifest the bug",
            self.failing_schedules, self.schedules_explored
        )?;
        if let Some((schedule, outcome)) = &self.witness {
            writeln!(f, "  witness: [{schedule}] -> {outcome}")?;
        }
        if self.fixes_proved.is_empty() {
            writeln!(f, "  fixes: (none implemented)")?;
        } else {
            let fixes: Vec<String> = self.fixes_proved.iter().map(|x| x.to_string()).collect();
            writeln!(f, "  fixes proved correct: {}", fixes.join(", "))?;
        }
        Ok(())
    }
}

fn demo(id: &'static str, caption: &'static str, kernel: &Kernel) -> FigureDemo {
    let buggy = kernel.buggy();
    let source = pseudocode(&buggy);
    let report = Explorer::new(&buggy).run();
    let mut fixes_proved = Vec::new();
    for &fix in kernel.fixes {
        let program = kernel.build(Variant::Fixed(fix));
        if Explorer::new(&program).run().proved_ok() {
            fixes_proved.push(fix);
        }
    }
    FigureDemo {
        id,
        caption,
        kernel_id: kernel.id,
        schedules_explored: report.schedules_run,
        failing_schedules: report.counts.failures(),
        witness: report.first_failure,
        fixes_proved,
        source,
    }
}

/// F1 — the Apache log-buffer atomicity violation.
pub fn figure1() -> FigureDemo {
    demo(
        "F1",
        "atomicity violation: Apache shared log buffer",
        &registry::by_id("log_buffer_apache").expect("kernel exists"),
    )
}

/// F2 — the Mozilla use-before-init order violation.
pub fn figure2() -> FigureDemo {
    demo(
        "F2",
        "order violation: Mozilla nsThread used before init",
        &registry::by_id("use_before_init_mozilla").expect("kernel exists"),
    )
}

/// F3 — the Mozilla multi-variable cache invariant violation.
pub fn figure3() -> FigureDemo {
    demo(
        "F3",
        "multi-variable violation: js cache count vs entries",
        &registry::by_id("cache_pair_invariant").expect("kernel exists"),
    )
}

/// F4 — the ABBA deadlock.
pub fn figure4() -> FigureDemo {
    demo(
        "F4",
        "deadlock: two locks acquired in opposite orders",
        &registry::by_id("abba").expect("kernel exists"),
    )
}

/// F5 — fix-strategy comparison on the check-then-act shape.
pub fn figure5() -> FigureDemo {
    demo(
        "F5",
        "fix strategies on a check-then-act bug (condition check vs lock vs TM)",
        &registry::by_id("check_then_act_null").expect("kernel exists"),
    )
}

/// All five figure demos.
pub fn all_figures() -> Vec<FigureDemo> {
    vec![figure1(), figure2(), figure3(), figure4(), figure5()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_figure_manifests_and_proves_fixes() {
        for fig in all_figures() {
            assert!(fig.failing_schedules > 0, "{}: no manifestation", fig.id);
            assert!(fig.witness.is_some(), "{}: no witness", fig.id);
            assert!(
                !fig.fixes_proved.is_empty(),
                "{}: no fix proved correct",
                fig.id
            );
            assert!(
                fig.failing_schedules < fig.schedules_explored,
                "{}: bug should hide in most interleavings",
                fig.id
            );
        }
    }

    #[test]
    fn figure4_is_a_deadlock() {
        let fig = figure4();
        let (_, outcome) = fig.witness.unwrap();
        assert!(outcome.is_deadlock());
    }

    #[test]
    fn figure5_proves_multiple_strategies() {
        let fig = figure5();
        assert!(fig.fixes_proved.len() >= 2, "{:?}", fig.fixes_proved);
        assert!(fig.fixes_proved.contains(&FixKind::CondCheck));
    }

    #[test]
    fn display_mentions_witness_and_source() {
        let s = figure1().to_string();
        assert!(s.contains("witness"));
        assert!(s.contains("log_buffer_apache"));
        // The paper-figure pseudo-code is embedded.
        assert!(s.contains("| thread w1() {"));
        assert!(s.contains("p = buf_pos;"));
    }
}
