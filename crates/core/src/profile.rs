//! Per-table build timings for the study pipeline.
//!
//! [`profile_tables`] is [`all_tables`](crate::tables::all_tables) with a
//! stopwatch around each generator, so regressions in corpus-query cost
//! show up per table instead of as one opaque total. The tables produced
//! are identical to the plain path — timing is observation only.

use std::time::Duration;

use lfm_corpus::Corpus;
use lfm_obs::{fmt_duration, Event, Sink, StatsTable, Stopwatch, Value};

use crate::table::Table;
use crate::tables;

/// Wall-clock time of one table's build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableTiming {
    /// Table identifier (`"T1"` … `"T9"`).
    pub id: String,
    /// Time spent generating the table from the corpus.
    pub wall: Duration,
}

/// Builds all nine tables, timing each build and streaming one `study`
/// scope `table` event per table (plus a final `tables` total) to `sink`.
pub fn profile_tables(corpus: &Corpus, sink: &dyn Sink) -> (Vec<Table>, Vec<TableTiming>) {
    type Builder = fn(&Corpus) -> Table;
    let builders: [Builder; 9] = [
        tables::table1,
        tables::table2,
        tables::table3,
        tables::table4,
        tables::table5,
        tables::table6,
        tables::table7,
        tables::table8,
        tables::table9,
    ];
    let total_watch = Stopwatch::start();
    let mut out = Vec::with_capacity(builders.len());
    let mut timings = Vec::with_capacity(builders.len());
    for build in builders {
        let watch = Stopwatch::start();
        let table = build(corpus);
        let wall = watch.elapsed();
        if sink.enabled() {
            sink.emit(&Event {
                scope: "study",
                name: "table",
                fields: &[
                    ("id", Value::Str(&table.id)),
                    ("rows", Value::U64(table.len() as u64)),
                    ("wall_us", Value::U64(wall.as_micros() as u64)),
                ],
            });
        }
        timings.push(TableTiming {
            id: table.id.clone(),
            wall,
        });
        out.push(table);
    }
    if sink.enabled() {
        sink.emit(&Event {
            scope: "study",
            name: "tables",
            fields: &[
                ("tables", Value::U64(out.len() as u64)),
                (
                    "wall_us",
                    Value::U64(total_watch.elapsed().as_micros() as u64),
                ),
            ],
        });
    }
    (out, timings)
}

/// Renders timings as an aligned stats table (one row per paper table).
pub fn timings_table(timings: &[TableTiming]) -> StatsTable {
    let mut t = StatsTable::new("table build times");
    for timing in timings {
        t.row(&timing.id, fmt_duration(timing.wall));
    }
    t.row("total", fmt_duration(timings.iter().map(|t| t.wall).sum()));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_obs::MemorySink;

    #[test]
    fn profiled_tables_match_plain_build() {
        let corpus = Corpus::full();
        let sink = MemorySink::new();
        let (tables, timings) = profile_tables(&corpus, &sink);
        assert_eq!(tables, tables::all_tables(&corpus));
        assert_eq!(timings.len(), 9);
        assert_eq!(timings[0].id, "T1");
        assert_eq!(timings[8].id, "T9");
        assert_eq!(sink.events_named("study", "table").len(), 9);
        assert_eq!(sink.events_named("study", "tables").len(), 1);
    }

    #[test]
    fn timings_table_lists_every_table_and_a_total() {
        let corpus = Corpus::full();
        let (_, timings) = profile_tables(&corpus, &lfm_obs::NoopSink);
        let rendered = timings_table(&timings).to_string();
        for id in ["T1", "T5", "T9", "total"] {
            assert!(rendered.contains(id), "{rendered} missing {id}");
        }
    }
}
