//! Per-table build timings for the study pipeline.
//!
//! [`profile_tables`] is [`all_tables`](crate::tables::all_tables) with a
//! stopwatch around each generator, so regressions in corpus-query cost
//! show up per table instead of as one opaque total. The tables produced
//! are identical to the plain path — timing is observation only.
//!
//! [`profile_tables_isolated`] adds *panic isolation*: each builder runs
//! under `catch_unwind`, a panicking table becomes a
//! [`TableBuild::Failed`] entry (with the rendered payload) while every
//! other table still builds, and the failure is emitted as a
//! `study`/`table_failed` event. One broken query must degrade one
//! artifact, not abort the whole study run.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use lfm_corpus::Corpus;
use lfm_obs::{fmt_duration, Event, Sink, StatsTable, Stopwatch, Value};

use crate::table::Table;
use crate::tables;

/// Wall-clock time of one table's build.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableTiming {
    /// Table identifier (`"T1"` … `"T9"`).
    pub id: String,
    /// Time spent generating the table from the corpus.
    pub wall: Duration,
}

/// Builds all nine tables, timing each build and streaming one `study`
/// scope `table` event per table (plus a final `tables` total) to `sink`.
pub fn profile_tables(corpus: &Corpus, sink: &dyn Sink) -> (Vec<Table>, Vec<TableTiming>) {
    type Builder = fn(&Corpus) -> Table;
    let builders: [Builder; 9] = [
        tables::table1,
        tables::table2,
        tables::table3,
        tables::table4,
        tables::table5,
        tables::table6,
        tables::table7,
        tables::table8,
        tables::table9,
    ];
    let total_watch = Stopwatch::start();
    let mut out = Vec::with_capacity(builders.len());
    let mut timings = Vec::with_capacity(builders.len());
    for build in builders {
        let watch = Stopwatch::start();
        let table = build(corpus);
        let wall = watch.elapsed();
        if sink.enabled() {
            sink.emit(&Event {
                scope: "study",
                name: "table",
                fields: &[
                    ("id", Value::Str(&table.id)),
                    ("rows", Value::U64(table.len() as u64)),
                    ("wall_us", Value::U64(wall.as_micros() as u64)),
                ],
            });
        }
        timings.push(TableTiming {
            id: table.id.clone(),
            wall,
        });
        out.push(table);
    }
    if sink.enabled() {
        sink.emit(&Event {
            scope: "study",
            name: "tables",
            fields: &[
                ("tables", Value::U64(out.len() as u64)),
                (
                    "wall_us",
                    Value::U64(total_watch.elapsed().as_micros() as u64),
                ),
            ],
        });
    }
    (out, timings)
}

/// One table's isolated build result: the table, or the panic that
/// prevented it.
#[derive(Debug, Clone, PartialEq)]
pub enum TableBuild {
    /// The builder returned normally.
    Built(Table),
    /// The builder panicked; the run continued without this table.
    Failed {
        /// Table identifier (`"T1"` … `"T9"`).
        id: String,
        /// Rendered panic payload.
        payload: String,
    },
}

impl TableBuild {
    /// The table identifier, whether or not the build succeeded.
    pub fn id(&self) -> &str {
        match self {
            TableBuild::Built(table) => &table.id,
            TableBuild::Failed { id, .. } => id,
        }
    }

    /// The built table, when there is one.
    pub fn table(&self) -> Option<&Table> {
        match self {
            TableBuild::Built(table) => Some(table),
            TableBuild::Failed { .. } => None,
        }
    }

    /// `true` when the builder panicked.
    pub fn is_failed(&self) -> bool {
        matches!(self, TableBuild::Failed { .. })
    }
}

/// [`profile_tables`] with per-table panic isolation: a panicking
/// builder yields [`TableBuild::Failed`] and the remaining tables still
/// build. Callers inspect the results and degrade (non-zero exit)
/// instead of aborting.
pub fn profile_tables_isolated(
    corpus: &Corpus,
    sink: &dyn Sink,
) -> (Vec<TableBuild>, Vec<TableTiming>) {
    run_builders_isolated(
        corpus,
        &[
            ("T1", tables::table1),
            ("T2", tables::table2),
            ("T3", tables::table3),
            ("T4", tables::table4),
            ("T5", tables::table5),
            ("T6", tables::table6),
            ("T7", tables::table7),
            ("T8", tables::table8),
            ("T9", tables::table9),
        ],
        sink,
    )
}

/// A table generator as wired into the isolation loop.
pub type TableBuilder = fn(&Corpus) -> Table;

/// The isolation loop behind [`profile_tables_isolated`], parameterized
/// over the builder list so tests can inject a deliberately panicking
/// builder.
#[doc(hidden)]
pub fn run_builders_isolated(
    corpus: &Corpus,
    builders: &[(&str, TableBuilder)],
    sink: &dyn Sink,
) -> (Vec<TableBuild>, Vec<TableTiming>) {
    let total_watch = Stopwatch::start();
    let mut out = Vec::with_capacity(builders.len());
    let mut timings = Vec::with_capacity(builders.len());
    let mut built = 0u64;
    for &(id, build) in builders {
        let watch = Stopwatch::start();
        let result = catch_unwind(AssertUnwindSafe(|| build(corpus)));
        let wall = watch.elapsed();
        timings.push(TableTiming {
            id: id.to_owned(),
            wall,
        });
        match result {
            Ok(table) => {
                if sink.enabled() {
                    sink.emit(&Event {
                        scope: "study",
                        name: "table",
                        fields: &[
                            ("id", Value::Str(&table.id)),
                            ("rows", Value::U64(table.len() as u64)),
                            ("wall_us", Value::U64(wall.as_micros() as u64)),
                        ],
                    });
                }
                built += 1;
                out.push(TableBuild::Built(table));
            }
            Err(panic) => {
                let payload = panic_payload(panic.as_ref());
                if sink.enabled() {
                    sink.emit(&Event {
                        scope: "study",
                        name: "table_failed",
                        fields: &[
                            ("id", Value::Str(id)),
                            ("payload", Value::Str(&payload)),
                            ("wall_us", Value::U64(wall.as_micros() as u64)),
                        ],
                    });
                }
                out.push(TableBuild::Failed {
                    id: id.to_owned(),
                    payload,
                });
            }
        }
    }
    if sink.enabled() {
        sink.emit(&Event {
            scope: "study",
            name: "tables",
            fields: &[
                ("tables", Value::U64(built)),
                ("failed", Value::U64((out.len() as u64) - built)),
                (
                    "wall_us",
                    Value::U64(total_watch.elapsed().as_micros() as u64),
                ),
            ],
        });
    }
    (out, timings)
}

fn panic_payload(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Renders timings as an aligned stats table (one row per paper table).
pub fn timings_table(timings: &[TableTiming]) -> StatsTable {
    let mut t = StatsTable::new("table build times");
    for timing in timings {
        t.row(&timing.id, fmt_duration(timing.wall));
    }
    t.row("total", fmt_duration(timings.iter().map(|t| t.wall).sum()));
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_obs::MemorySink;

    #[test]
    fn profiled_tables_match_plain_build() {
        let corpus = Corpus::full();
        let sink = MemorySink::new();
        let (tables, timings) = profile_tables(&corpus, &sink);
        assert_eq!(tables, tables::all_tables(&corpus));
        assert_eq!(timings.len(), 9);
        assert_eq!(timings[0].id, "T1");
        assert_eq!(timings[8].id, "T9");
        assert_eq!(sink.events_named("study", "table").len(), 9);
        assert_eq!(sink.events_named("study", "tables").len(), 1);
    }

    #[test]
    fn isolated_build_matches_plain_build_when_nothing_panics() {
        let corpus = Corpus::full();
        let sink = MemorySink::new();
        let (builds, timings) = profile_tables_isolated(&corpus, &sink);
        let tables: Vec<_> = builds
            .iter()
            .filter_map(TableBuild::table)
            .cloned()
            .collect();
        assert_eq!(tables, tables::all_tables(&corpus));
        assert_eq!(timings.len(), 9);
        assert!(builds.iter().all(|b| !b.is_failed()));
        assert_eq!(sink.events_named("study", "table_failed").len(), 0);
    }

    #[test]
    fn a_panicking_builder_degrades_only_its_own_table() {
        fn boom(_: &Corpus) -> Table {
            panic!("table exploded")
        }
        let corpus = Corpus::full();
        let sink = MemorySink::new();
        let (builds, timings) = run_builders_isolated(
            &corpus,
            &[("T1", tables::table1), ("TX", boom), ("T2", tables::table2)],
            &sink,
        );
        assert_eq!(builds.len(), 3);
        assert_eq!(timings.len(), 3);
        assert!(!builds[0].is_failed());
        assert!(!builds[2].is_failed(), "tables after the panic still build");
        match &builds[1] {
            TableBuild::Failed { id, payload } => {
                assert_eq!(id, "TX");
                assert_eq!(payload, "table exploded");
            }
            other => panic!("expected a failed build, got {other:?}"),
        }
        let failed = sink.events_named("study", "table_failed");
        assert_eq!(failed.len(), 1);
        assert_eq!(
            failed[0]
                .field("payload")
                .and_then(|v| v.as_str().map(String::from)),
            Some("table exploded".to_owned())
        );
        // The summary event separates built from failed counts.
        let summary = &sink.events_named("study", "tables")[0];
        assert_eq!(summary.field("tables").and_then(|v| v.as_u64()), Some(2));
        assert_eq!(summary.field("failed").and_then(|v| v.as_u64()), Some(1));
    }

    #[test]
    fn timings_table_lists_every_table_and_a_total() {
        let corpus = Corpus::full();
        let (_, timings) = profile_tables(&corpus, &lfm_obs::NoopSink);
        let rendered = timings_table(&timings).to_string();
        for id in ["T1", "T5", "T9", "total"] {
            assert!(rendered.contains(id), "{rendered} missing {id}");
        }
    }
}
