//! Generators for the study's nine tables (T1–T9), each computed from
//! the corpus (never hard-coded): the numbers printed here are *measured*
//! over the dataset, and the findings checker separately asserts they
//! match the paper.

use lfm_corpus::{
    all_apps, AccessCount, App, Corpus, DeadlockFix, NonDeadlockFix, ResourceCount, ThreadCount,
    TmApplicability, TmObstacle, VariableCount,
};

use crate::table::{with_pct, Table};

/// T1 — applications studied.
pub fn table1(_corpus: &Corpus) -> Table {
    let mut t = Table::new(
        "T1",
        "Applications studied",
        vec!["application", "description", "~MLoC", "bug database"],
    );
    for info in all_apps() {
        t.row(vec![
            info.app.to_string(),
            info.description.to_string(),
            format!("{:.2}", info.approx_mloc),
            info.bug_database.to_string(),
        ]);
    }
    t.note("sizes reconstructed to order of magnitude; see EXPERIMENTS.md");
    t
}

/// T2 — sampled bug counts per application and class.
pub fn table2(corpus: &Corpus) -> Table {
    let mut t = Table::new(
        "T2",
        "Concurrency bugs examined",
        vec!["application", "non-deadlock", "deadlock", "total"],
    );
    let mut nd_total = 0;
    let mut d_total = 0;
    for app in App::ALL {
        let nd = corpus
            .query()
            .app(app)
            .class(lfm_corpus::BugClass::NonDeadlock)
            .count();
        let d = corpus
            .query()
            .app(app)
            .class(lfm_corpus::BugClass::Deadlock)
            .count();
        nd_total += nd;
        d_total += d;
        t.row(vec![
            app.to_string(),
            nd.to_string(),
            d.to_string(),
            (nd + d).to_string(),
        ]);
    }
    t.row(vec![
        "Total".to_string(),
        nd_total.to_string(),
        d_total.to_string(),
        (nd_total + d_total).to_string(),
    ]);
    t
}

/// T3 — bug pattern distribution over non-deadlock bugs.
pub fn table3(corpus: &Corpus) -> Table {
    let mut t = Table::new(
        "T3",
        "Root-cause patterns of non-deadlock bugs",
        vec![
            "application",
            "atomicity",
            "order",
            "both",
            "other",
            "total",
        ],
    );
    let mut totals = [0usize; 5];
    for app in App::ALL {
        let nd: Vec<_> = corpus
            .query()
            .app(app)
            .class(lfm_corpus::BugClass::NonDeadlock)
            .collect();
        let a = nd
            .iter()
            .filter(|b| {
                let p = b.patterns().unwrap();
                p.atomicity && !p.order
            })
            .count();
        let o = nd
            .iter()
            .filter(|b| {
                let p = b.patterns().unwrap();
                p.order && !p.atomicity
            })
            .count();
        let both = nd
            .iter()
            .filter(|b| {
                let p = b.patterns().unwrap();
                p.atomicity && p.order
            })
            .count();
        let other = nd.iter().filter(|b| b.patterns().unwrap().other).count();
        totals[0] += a;
        totals[1] += o;
        totals[2] += both;
        totals[3] += other;
        totals[4] += nd.len();
        t.row(vec![
            app.to_string(),
            a.to_string(),
            o.to_string(),
            both.to_string(),
            other.to_string(),
            nd.len().to_string(),
        ]);
    }
    t.row(vec![
        "Total".to_string(),
        totals[0].to_string(),
        totals[1].to_string(),
        totals[2].to_string(),
        totals[3].to_string(),
        totals[4].to_string(),
    ]);
    let a_or_o = totals[0] + totals[1] + totals[2];
    t.note(format!(
        "{} of {} ({:.0}%) are atomicity or order violations (Finding 1)",
        a_or_o,
        totals[4],
        100.0 * a_or_o as f64 / totals[4] as f64
    ));
    t
}

/// T4 — threads involved in the manifestation.
pub fn table4(corpus: &Corpus) -> Table {
    let mut t = Table::new(
        "T4",
        "Threads involved in bug manifestation",
        vec!["class", "1 thread", "2 threads", "> 2 threads", "total"],
    );
    for (label, class) in [
        ("non-deadlock", lfm_corpus::BugClass::NonDeadlock),
        ("deadlock", lfm_corpus::BugClass::Deadlock),
    ] {
        let bugs: Vec<_> = corpus.query().class(class).collect();
        let count = |tc: ThreadCount| bugs.iter().filter(|b| b.threads == tc).count();
        t.row(vec![
            label.to_string(),
            count(ThreadCount::One).to_string(),
            count(ThreadCount::Two).to_string(),
            count(ThreadCount::MoreThanTwo).to_string(),
            bugs.len().to_string(),
        ]);
    }
    let le2 = corpus
        .iter()
        .filter(|b| b.threads != ThreadCount::MoreThanTwo)
        .count();
    t.note(format!(
        "{} — bugs involving at most 2 threads (Finding 2)",
        with_pct(le2, corpus.len())
    ));
    t
}

/// T5 — variables involved (non-deadlock bugs).
pub fn table5(corpus: &Corpus) -> Table {
    let mut t = Table::new(
        "T5",
        "Variables involved in non-deadlock bugs",
        vec!["application", "1 variable", "> 1 variable", "total"],
    );
    let mut one_total = 0;
    let mut multi_total = 0;
    for app in App::ALL {
        let nd: Vec<_> = corpus
            .query()
            .app(app)
            .class(lfm_corpus::BugClass::NonDeadlock)
            .collect();
        let one = nd
            .iter()
            .filter(|b| b.variables() == Some(VariableCount::One))
            .count();
        let multi = nd.len() - one;
        one_total += one;
        multi_total += multi;
        t.row(vec![
            app.to_string(),
            one.to_string(),
            multi.to_string(),
            nd.len().to_string(),
        ]);
    }
    let total = one_total + multi_total;
    t.row(vec![
        "Total".to_string(),
        one_total.to_string(),
        multi_total.to_string(),
        total.to_string(),
    ]);
    t.note(format!(
        "{} involve a single variable (Finding 3); the {} multi-variable \
         bugs escape single-variable detectors",
        with_pct(one_total, total),
        multi_total
    ));
    t
}

/// T6 — accesses involved (non-deadlock) and resources (deadlock).
pub fn table6(corpus: &Corpus) -> Table {
    let mut t = Table::new(
        "T6",
        "Manifestation scope: accesses (non-deadlock) / resources (deadlock)",
        vec!["class", "scope", "bugs"],
    );
    let nd: Vec<_> = corpus.non_deadlock();
    let le4 = nd
        .iter()
        .filter(|b| b.accesses() == Some(AccessCount::AtMostFour))
        .count();
    t.row(vec![
        "non-deadlock".to_string(),
        "<= 4 accesses".to_string(),
        with_pct(le4, nd.len()),
    ]);
    t.row(vec![
        "non-deadlock".to_string(),
        "> 4 accesses".to_string(),
        with_pct(nd.len() - le4, nd.len()),
    ]);
    let d: Vec<_> = corpus.deadlock();
    for (label, rc) in [
        ("1 resource", ResourceCount::One),
        ("2 resources", ResourceCount::Two),
        ("> 2 resources", ResourceCount::MoreThanTwo),
    ] {
        let n = d.iter().filter(|b| b.resources() == Some(rc)).count();
        t.row(vec![
            "deadlock".to_string(),
            label.to_string(),
            with_pct(n, d.len()),
        ]);
    }
    t.note(
        "Finding 4: ordering <= 4 accesses guarantees manifestation for 92% of non-deadlock bugs",
    );
    t.note("Finding 5: 97% of deadlocks involve at most 2 resources");
    t
}

/// T7 — non-deadlock fix strategies.
pub fn table7(corpus: &Corpus) -> Table {
    let mut t = Table::new(
        "T7",
        "Fix strategies of non-deadlock bugs",
        vec!["strategy", "bugs"],
    );
    let nd = corpus.non_deadlock();
    for (label, fix) in [
        ("condition check", NonDeadlockFix::ConditionCheck),
        ("code switch", NonDeadlockFix::CodeSwitch),
        ("design change", NonDeadlockFix::DesignChange),
        ("add/change lock", NonDeadlockFix::AddOrChangeLock),
        ("other", NonDeadlockFix::Other),
    ] {
        let n = nd
            .iter()
            .filter(|b| matches!(b.fix(), lfm_corpus::FixStrategy::NonDeadlock(f) if f == fix))
            .count();
        t.row(vec![label.to_string(), with_pct(n, nd.len())]);
    }
    t.note("Finding 6: adding/changing locks fixes only about a quarter of non-deadlock bugs");
    t
}

/// T8 — deadlock fix strategies.
pub fn table8(corpus: &Corpus) -> Table {
    let mut t = Table::new(
        "T8",
        "Fix strategies of deadlock bugs",
        vec!["strategy", "bugs"],
    );
    let d = corpus.deadlock();
    for (label, fix) in [
        ("give up resource", DeadlockFix::GiveUpResource),
        ("acquire in order", DeadlockFix::AcquireInOrder),
        ("split resource", DeadlockFix::SplitResource),
        ("other", DeadlockFix::Other),
    ] {
        let n = d
            .iter()
            .filter(|b| matches!(b.fix(), lfm_corpus::FixStrategy::Deadlock(f) if f == fix))
            .count();
        t.row(vec![label.to_string(), with_pct(n, d.len())]);
    }
    t.note(
        "Finding 7: most deadlocks are fixed by giving up a resource — a strategy \
         that can itself introduce non-deadlock bugs",
    );
    t
}

/// T9 — transactional-memory applicability.
pub fn table9(corpus: &Corpus) -> Table {
    let mut t = Table::new(
        "T9",
        "Transactional memory applicability",
        vec!["verdict", "bugs"],
    );
    let total = corpus.len();
    let helps = corpus
        .iter()
        .filter(|b| matches!(b.tm, TmApplicability::Helps))
        .count();
    let maybe = corpus
        .iter()
        .filter(|b| matches!(b.tm, TmApplicability::MaybeHelps))
        .count();
    t.row(vec!["TM helps".to_string(), with_pct(helps, total)]);
    t.row(vec!["TM may help".to_string(), with_pct(maybe, total)]);
    for (label, obstacle) in [
        ("cannot: I/O in region", TmObstacle::IoInRegion),
        ("cannot: region too long", TmObstacle::LongRegion),
        (
            "cannot: not atomicity intent",
            TmObstacle::NotAtomicityIntent,
        ),
    ] {
        let n = corpus
            .iter()
            .filter(|b| b.tm == TmApplicability::CannotHelp(obstacle))
            .count();
        t.row(vec![label.to_string(), with_pct(n, total)]);
    }
    t.note("Finding 8: TM can directly help ~40% of the studied bugs");
    t.note("see the E-tm experiment for the executable verdicts on the kernels");
    t
}

/// All nine tables.
pub fn all_tables(corpus: &Corpus) -> Vec<Table> {
    vec![
        table1(corpus),
        table2(corpus),
        table3(corpus),
        table4(corpus),
        table5(corpus),
        table6(corpus),
        table7(corpus),
        table8(corpus),
        table9(corpus),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        Corpus::full()
    }

    #[test]
    fn table1_lists_four_apps() {
        let t = table1(&corpus());
        assert_eq!(t.len(), 4);
    }

    #[test]
    fn table2_totals() {
        let t = table2(&corpus());
        let last = t.rows.last().unwrap();
        assert_eq!(last, &vec!["Total", "74", "31", "105"]);
    }

    #[test]
    fn table3_matches_finding_one() {
        let t = table3(&corpus());
        let last = t.rows.last().unwrap();
        // pureA=48, pureO=21, both=3, other=2, total=74
        assert_eq!(last, &vec!["Total", "48", "21", "3", "2", "74"]);
        assert!(t.notes[0].contains("72 of 74 (97%)"));
    }

    #[test]
    fn table4_matches_finding_two() {
        let t = table4(&corpus());
        assert_eq!(t.rows[0], vec!["non-deadlock", "0", "71", "3", "74"]);
        assert_eq!(t.rows[1], vec!["deadlock", "7", "23", "1", "31"]);
        assert!(t.notes[0].contains("101 (96%)"));
    }

    #[test]
    fn table5_matches_finding_three() {
        let t = table5(&corpus());
        let last = t.rows.last().unwrap();
        assert_eq!(last, &vec!["Total", "49", "25", "74"]);
        assert!(t.notes[0].contains("49 (66%)"));
    }

    #[test]
    fn table6_scopes() {
        let t = table6(&corpus());
        assert!(t.rows[0][2].contains("68 (92%)"));
        assert!(t.rows[2][2].contains("7 (23%)")); // 1-resource deadlocks
        assert!(t.rows[3][2].contains("23 (74%)"));
    }

    #[test]
    fn table7_lock_fixes_are_the_minority() {
        let t = table7(&corpus());
        let lock_row = t
            .rows
            .iter()
            .find(|r| r[0] == "add/change lock")
            .expect("lock row");
        assert!(lock_row[1].contains("20 (27%)"));
    }

    #[test]
    fn table8_give_up_dominates() {
        let t = table8(&corpus());
        assert!(t.rows[0][1].contains("19 (61%)"));
    }

    #[test]
    fn table9_tm_split() {
        let t = table9(&corpus());
        assert!(t.rows[0][1].contains("42 (40%)"));
        assert!(t.rows[1][1].contains("37 (35%)"));
    }

    #[test]
    fn all_tables_returns_nine() {
        assert_eq!(all_tables(&corpus()).len(), 9);
    }
}
