//! # lfm-stm — software transactional memory and TM-applicability
//!
//! The ASPLOS'08 study's Section on transactional memory asks: *for each
//! studied bug, would TM have helped?* This crate makes that question
//! executable twice over:
//!
//! - [`tl2`] — a real word-based, lazy-versioning STM for native Rust
//!   threads (TL2-style global version clock, per-word versioned locks,
//!   commit-time write locking and read-set validation). Used by the
//!   benchmark harness to compare transactional and lock-based versions
//!   of the study's hot shapes under real parallelism.
//! - [`evaluate`] — the TM-applicability evaluator: rebuilds each
//!   `lfm-kernels` kernel with its critical region as a transaction (the
//!   simulator's `TxBegin`/`TxCommit` give TL2 semantics including
//!   per-read opacity validation), model-checks the result, and
//!   classifies the kernel as *helps* / *cannot help* with the study's
//!   obstacle taxonomy (I/O in region, ordering intent, …).
//!
//! # Example
//!
//! ```rust
//! use lfm_stm::tl2::TSpace;
//!
//! let space = TSpace::new(1);
//! space.atomically(|tx| {
//!     let v = tx.read(0)?;
//!     tx.write(0, v + 1);
//!     Ok(())
//! });
//! assert_eq!(space.read_now(0), 1);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod evaluate;
pub mod tl2;

pub use evaluate::{evaluate_all, evaluate_kernel, TmObstacleKind, TmVerdict};
pub use tl2::{Retry, StmStats, TSpace, Txn};
