//! The TM-applicability evaluator.
//!
//! Reproduces the study's Section-7 analysis *experimentally*: for every
//! kernel, rebuild the buggy critical region as a transaction, model-check
//! the result exhaustively, and classify:
//!
//! - **helps** — the transactional version is proved bug-free and the
//!   region is TM-compatible;
//! - **cannot help: I/O in region** — the transactional version avoids
//!   the bug but performs irrevocable I/O inside the transaction (the
//!   evaluator *measures* the duplicated I/O that aborts cause);
//! - **cannot help: ordering/locking intent** — the bug is about
//!   ordering or resource-acquisition protocol, which TM's atomicity
//!   guarantee does not express (order-violation and deadlock kernels
//!   without a transactional rewrite).

use std::fmt;

use lfm_kernels::{Family, FixKind, Kernel, Variant};
use lfm_sim::{ExploreLimits, Explorer, Stmt};

/// Why TM cannot (cleanly) help a kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TmObstacleKind {
    /// Irrevocable I/O inside the would-be transaction.
    IoInRegion,
    /// The intent is ordering or lock-protocol, not atomicity.
    OrderingIntent,
}

impl fmt::Display for TmObstacleKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TmObstacleKind::IoInRegion => "I/O in critical region",
            TmObstacleKind::OrderingIntent => "ordering/locking intent",
        })
    }
}

/// The evaluator's verdict for one kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TmVerdict {
    /// The kernel evaluated.
    pub kernel: String,
    /// `true` when TM removes the bug with no obstacle.
    pub helps: bool,
    /// The obstacle, when TM does not cleanly help.
    pub obstacle: Option<TmObstacleKind>,
    /// Whether the transactional variant still failed under exploration
    /// (should be `false`; kept for honest reporting).
    pub residual_failures: bool,
    /// Measured: the maximum number of I/O effects observed across
    /// explored transactional executions (aborts re-run irrevocable I/O).
    pub max_io_observed: usize,
    /// The I/O count of one abort-free execution, for comparison.
    pub baseline_io: usize,
}

impl TmVerdict {
    /// `true` when aborts were observed to duplicate I/O effects.
    pub fn io_duplicated(&self) -> bool {
        self.max_io_observed > self.baseline_io
    }
}

impl fmt::Display for TmVerdict {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.helps {
            write!(f, "{}: TM helps", self.kernel)
        } else {
            match self.obstacle {
                Some(o) => write!(f, "{}: TM cannot help ({o})", self.kernel),
                None => write!(f, "{}: TM does not apply", self.kernel),
            }
        }
    }
}

/// Counts `Io` statements lexically inside `TxBegin`/`TxCommit` spans.
fn io_inside_tx(program: &lfm_sim::Program) -> bool {
    for thread in program.threads() {
        if scan_block(thread.body(), false) {
            return true;
        }
    }
    false
}

fn scan_block(block: &[Stmt], in_tx: bool) -> bool {
    let mut depth = in_tx;
    for stmt in block {
        match stmt {
            Stmt::TxBegin => depth = true,
            Stmt::TxCommit => depth = false,
            Stmt::Io { .. } if depth => return true,
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } if (scan_block(then_branch, depth) || scan_block(else_branch, depth)) => {
                return true;
            }
            Stmt::While { body, .. } if scan_block(body, depth) => {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// Evaluates one kernel.
pub fn evaluate_kernel(kernel: &Kernel) -> TmVerdict {
    match kernel.try_build(Variant::Fixed(FixKind::Transaction)) {
        None => {
            // No transactional rewrite exists: order-violation and
            // deadlock kernels synchronize for ordering / resource
            // protocol, which a transaction does not express.
            let obstacle = match kernel.family {
                Family::Order | Family::Deadlock | Family::OtherNonDeadlock => {
                    TmObstacleKind::OrderingIntent
                }
                // Atomicity kernels without a Transaction fix carry I/O
                // that makes the region non-transactional by design.
                Family::AtomicitySingleVar | Family::MultiVariable => TmObstacleKind::IoInRegion,
            };
            TmVerdict {
                kernel: kernel.id.to_owned(),
                helps: false,
                obstacle: Some(obstacle),
                residual_failures: false,
                max_io_observed: 0,
                baseline_io: 0,
            }
        }
        Some(program) => {
            let mut max_io = 0usize;
            let report = Explorer::new(&program)
                .limits(ExploreLimits {
                    max_steps: 2_000,
                    max_schedules: 200_000,
                    dedup_states: true,
                    ..ExploreLimits::default()
                })
                .run_with_callback(|exec, _| {
                    max_io = max_io.max(exec.io_journal().len());
                });
            // Baseline: the serial execution has no aborts, so its I/O
            // count is the intended one.
            let mut serial = lfm_sim::Executor::new(&program);
            serial.run_sequential(10_000);
            let baseline_io = serial.io_journal().len();

            let residual = report.counts.failures() > 0 || report.truncated;
            let has_io = io_inside_tx(&program);
            TmVerdict {
                kernel: kernel.id.to_owned(),
                helps: !residual && !has_io,
                obstacle: if has_io {
                    Some(TmObstacleKind::IoInRegion)
                } else {
                    None
                },
                residual_failures: residual,
                max_io_observed: max_io,
                baseline_io,
            }
        }
    }
}

/// Evaluates every kernel in the registry.
pub fn evaluate_all() -> Vec<TmVerdict> {
    lfm_kernels::registry::all()
        .iter()
        .map(evaluate_kernel)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_kernels::registry;

    #[test]
    fn counter_rmw_is_helped() {
        let v = evaluate_kernel(&registry::by_id("counter_rmw").unwrap());
        assert!(v.helps, "{v}");
        assert!(!v.residual_failures);
        assert_eq!(v.obstacle, None);
    }

    #[test]
    fn multivar_kernels_are_helped() {
        for id in [
            "cache_pair_invariant",
            "len_data_desync",
            "double_counter_invariant",
        ] {
            let v = evaluate_kernel(&registry::by_id(id).unwrap());
            assert!(v.helps, "{v}");
        }
    }

    #[test]
    fn log_buffer_hits_the_io_obstacle_and_duplicates_io() {
        let v = evaluate_kernel(&registry::by_id("log_buffer_apache").unwrap());
        assert!(!v.helps);
        assert_eq!(v.obstacle, Some(TmObstacleKind::IoInRegion));
        // The measurement, not just the classification: some explored
        // execution re-ran the I/O after an abort.
        assert!(
            v.io_duplicated(),
            "aborts should duplicate the I/O: max {} vs baseline {}",
            v.max_io_observed,
            v.baseline_io
        );
        // And yet the *memory* bug is gone.
        assert!(!v.residual_failures);
    }

    #[test]
    fn lock_elision_helps_the_pure_lock_deadlocks() {
        // The study's Section 7: replacing lock-based critical regions
        // with transactions removes lock-order deadlocks outright.
        for id in ["abba", "self_relock", "lock_cycle_3", "rwlock_upgrade"] {
            let v = evaluate_kernel(&registry::by_id(id).unwrap());
            assert!(v.helps, "{v}");
        }
    }

    #[test]
    fn completion_protocol_deadlocks_are_ordering_intent() {
        // Waiting for another thread's completion is not an atomicity
        // intent; TM cannot express it.
        for id in ["wait_holding_lock", "join_under_lock"] {
            let v = evaluate_kernel(&registry::by_id(id).unwrap());
            assert!(!v.helps, "{v}");
            assert_eq!(v.obstacle, Some(TmObstacleKind::OrderingIntent));
        }
    }

    #[test]
    fn retry_expresses_conditional_order_synchronization() {
        // Harris-style retry lets transactions wait for a condition, so
        // the init/publish order kernels become TM-helped.
        for id in [
            "use_before_init_mozilla",
            "publish_before_init",
            "join_less_exit",
        ] {
            let v = evaluate_kernel(&registry::by_id(id).unwrap());
            assert!(v.helps, "{v}");
        }
    }

    #[test]
    fn order_kernels_without_tx_fix_are_ordering_intent() {
        let v = evaluate_kernel(&registry::by_id("shutdown_order").unwrap());
        assert!(!v.helps);
        assert_eq!(v.obstacle, Some(TmObstacleKind::OrderingIntent));
    }

    #[test]
    fn evaluate_all_covers_every_kernel() {
        let verdicts = evaluate_all();
        assert_eq!(verdicts.len(), registry::all().len());
        let helped = verdicts.iter().filter(|v| v.helps).count();
        // The atomicity + multivar kernels with clean regions are helped;
        // order/deadlock/IO kernels are not — both classes non-empty.
        assert!(helped >= 7, "helped = {helped}");
        assert!(helped < verdicts.len());
        // Nothing residual anywhere: TM semantics in the simulator are
        // sound even where TM is the wrong tool.
        assert!(verdicts.iter().all(|v| !v.residual_failures));
    }
}
