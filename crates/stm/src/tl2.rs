//! A TL2-style word-based software transactional memory for native
//! threads.
//!
//! Design (following Dice, Shalev, Shavit's TL2):
//!
//! - a global version clock, advanced by 2 at every writing commit;
//! - per-word *versioned locks*: a single `AtomicU64` whose LSB is the
//!   lock bit and whose upper bits are the word's version;
//! - transactions read a snapshot (`rv` = clock at begin), validate every
//!   read against `rv` at read time (opacity) and the whole read set at
//!   commit, lock their write set in index order, then publish.
//!
//! Values are `i64` words, matching the study's "word-based TM"
//! terminology and the simulator's shared variables.

use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

use lfm_obs::Counter;

/// Internal: the lock bit of a versioned lock.
const LOCKED: u64 = 1;

/// A transactional word: value + versioned lock.
#[derive(Debug)]
struct Word {
    value: AtomicI64,
    /// `version << 1 | locked`.
    vlock: AtomicU64,
}

impl Word {
    fn new(value: i64) -> Word {
        Word {
            value: AtomicI64::new(value),
            vlock: AtomicU64::new(0),
        }
    }
}

/// Error signalling that the transaction observed inconsistent state and
/// must retry. Returned by [`Txn::read`]; user closures propagate it with
/// `?` and [`TSpace::atomically`] handles the retry loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Retry;

/// A fixed-size space of transactional words.
///
/// The word-count-at-construction design mirrors the simulator's variable
/// model and keeps the hot path allocation-free.
#[derive(Debug)]
pub struct TSpace {
    clock: AtomicU64,
    words: Vec<Word>,
    /// Attempt/commit/abort/retry counters, maintained on the side of the
    /// retry loop — the committed state never depends on them.
    starts: Counter,
    commits: Counter,
    aborts: Counter,
    body_retries: Counter,
}

/// A point-in-time snapshot of a [`TSpace`]'s transaction counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StmStats {
    /// Transaction attempts begun (first tries plus re-executions).
    pub starts: u64,
    /// Successful commits (read-only included).
    pub commits: u64,
    /// Commit-time validation/locking failures.
    pub aborts: u64,
    /// Read-time [`Retry`] signals raised by transaction bodies.
    pub body_retries: u64,
}

impl StmStats {
    /// Commits per attempt, in `[0, 1]`.
    pub fn commit_rate(&self) -> f64 {
        if self.starts == 0 {
            0.0
        } else {
            self.commits as f64 / self.starts as f64
        }
    }
}

impl fmt::Display for StmStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "starts={} commits={} aborts={} body-retries={} commit-rate={:.3}",
            self.starts,
            self.commits,
            self.aborts,
            self.body_retries,
            self.commit_rate()
        )
    }
}

impl TSpace {
    /// Creates a space of `n` words, all zero.
    pub fn new(n: usize) -> TSpace {
        TSpace::with_values(&vec![0; n])
    }

    /// Creates a space initialized from `values`.
    pub fn with_values(values: &[i64]) -> TSpace {
        TSpace {
            clock: AtomicU64::new(0),
            words: values.iter().map(|&v| Word::new(v)).collect(),
            starts: Counter::new(),
            commits: Counter::new(),
            aborts: Counter::new(),
            body_retries: Counter::new(),
        }
    }

    /// Number of words.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` when the space has no words.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Non-transactional read of the current committed value. Only safe
    /// for quiescent inspection (tests, reporting).
    pub fn read_now(&self, index: usize) -> i64 {
        self.words[index].value.load(Ordering::SeqCst)
    }

    /// Runs `body` transactionally until it commits, returning its
    /// result. The closure may be executed multiple times; side effects
    /// inside it must be idempotent (the study's I/O obstacle, made
    /// concrete by the type system being unable to stop you).
    pub fn atomically<T>(&self, mut body: impl FnMut(&mut Txn<'_>) -> Result<T, Retry>) -> T {
        let mut backoff = 0u32;
        loop {
            self.starts.inc();
            let mut tx = Txn {
                space: self,
                rv: self.clock.load(Ordering::SeqCst),
                reads: Vec::new(),
                writes: Vec::new(),
            };
            match body(&mut tx) {
                Ok(result) => {
                    if tx.commit() {
                        self.commits.inc();
                        return result;
                    }
                    self.aborts.inc();
                }
                Err(Retry) => {
                    self.body_retries.inc();
                }
            }
            // Bounded exponential backoff keeps contended commits live.
            backoff = (backoff + 1).min(6);
            for _ in 0..(1u32 << backoff) {
                std::hint::spin_loop();
            }
        }
    }

    /// Number of committed writing transactions so far (clock / 2).
    pub fn commit_count(&self) -> u64 {
        self.clock.load(Ordering::SeqCst) / 2
    }

    /// Snapshots the attempt/commit/abort/retry counters.
    pub fn stats(&self) -> StmStats {
        StmStats {
            starts: self.starts.get(),
            commits: self.commits.get(),
            aborts: self.aborts.get(),
            body_retries: self.body_retries.get(),
        }
    }
}

/// An in-flight transaction over a [`TSpace`].
#[derive(Debug)]
pub struct Txn<'s> {
    space: &'s TSpace,
    rv: u64,
    reads: Vec<(usize, u64)>,
    writes: Vec<(usize, i64)>,
}

impl Txn<'_> {
    /// Transactional read of word `index`.
    ///
    /// # Errors
    ///
    /// Returns [`Retry`] when the word is locked or newer than the
    /// transaction's snapshot — the caller propagates it with `?` and
    /// [`TSpace::atomically`] restarts the transaction.
    pub fn read(&mut self, index: usize) -> Result<i64, Retry> {
        // Redo-log hit first.
        if let Some(&(_, v)) = self.writes.iter().rev().find(|(i, _)| *i == index) {
            return Ok(v);
        }
        let word = &self.space.words[index];
        let v1 = word.vlock.load(Ordering::SeqCst);
        let value = word.value.load(Ordering::SeqCst);
        let v2 = word.vlock.load(Ordering::SeqCst);
        if v1 != v2 || v1 & LOCKED != 0 || (v1 >> 1) > self.rv {
            return Err(Retry);
        }
        self.reads.push((index, v1));
        Ok(value)
    }

    /// Buffers a transactional write of `value` to word `index`.
    pub fn write(&mut self, index: usize, value: i64) {
        if let Some(entry) = self.writes.iter_mut().find(|(i, _)| *i == index) {
            entry.1 = value;
        } else {
            self.writes.push((index, value));
        }
    }

    /// Attempts to commit. Returns `false` when validation failed and the
    /// transaction must retry.
    fn commit(mut self) -> bool {
        if self.writes.is_empty() {
            // Read-only transactions are already validated per read.
            return true;
        }
        // Lock the write set in index order (deadlock-free).
        self.writes.sort_unstable_by_key(|(i, _)| *i);
        self.writes.dedup_by_key(|(i, _)| *i);
        let mut locked = Vec::with_capacity(self.writes.len());
        for &(index, _) in &self.writes {
            let word = &self.space.words[index];
            let cur = word.vlock.load(Ordering::SeqCst);
            if cur & LOCKED != 0
                || word
                    .vlock
                    .compare_exchange(cur, cur | LOCKED, Ordering::SeqCst, Ordering::SeqCst)
                    .is_err()
            {
                for &i in &locked {
                    let w: &Word = &self.space.words[i];
                    w.vlock.fetch_and(!LOCKED, Ordering::SeqCst);
                }
                return false;
            }
            locked.push(index);
        }
        // Validate the read set: unchanged, within snapshot, and not
        // locked by anyone else.
        for &(index, seen) in &self.reads {
            let cur = self.space.words[index].vlock.load(Ordering::SeqCst);
            let locked_by_me = self.writes.iter().any(|(i, _)| *i == index);
            let effective = if locked_by_me { cur & !LOCKED } else { cur };
            if effective != seen || (!locked_by_me && cur & LOCKED != 0) {
                for &i in &locked {
                    let w: &Word = &self.space.words[i];
                    w.vlock.fetch_and(!LOCKED, Ordering::SeqCst);
                }
                return false;
            }
        }
        // Publish with a fresh write version.
        let wv = self.space.clock.fetch_add(2, Ordering::SeqCst) + 2;
        for &(index, value) in &self.writes {
            let word = &self.space.words[index];
            word.value.store(value, Ordering::SeqCst);
            word.vlock.store(wv << 1, Ordering::SeqCst);
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn single_threaded_read_write() {
        let space = TSpace::with_values(&[10, 20]);
        let sum = space.atomically(|tx| {
            let a = tx.read(0)?;
            let b = tx.read(1)?;
            tx.write(0, a + 1);
            Ok(a + b)
        });
        assert_eq!(sum, 30);
        assert_eq!(space.read_now(0), 11);
        assert_eq!(space.read_now(1), 20);
        assert_eq!(space.commit_count(), 1);
        let stats = space.stats();
        assert_eq!(stats.starts, 1);
        assert_eq!(stats.commits, 1);
        assert_eq!(stats.aborts, 0);
        assert_eq!(stats.body_retries, 0);
        assert_eq!(stats.commit_rate(), 1.0);
    }

    #[test]
    fn stats_account_for_every_attempt() {
        const THREADS: usize = 4;
        const PER_THREAD: usize = 200;
        let space = Arc::new(TSpace::new(1));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let space = Arc::clone(&space);
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        space.atomically(|tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1);
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = space.stats();
        assert_eq!(stats.commits, (THREADS * PER_THREAD) as u64);
        // Every attempt either committed, aborted at commit time, or was
        // restarted by a read-time Retry.
        assert_eq!(
            stats.starts,
            stats.commits + stats.aborts + stats.body_retries
        );
        assert!(stats.commit_rate() > 0.0 && stats.commit_rate() <= 1.0);
        let line = stats.to_string();
        assert!(line.contains("commits=800"), "{line}");
    }

    #[test]
    fn read_your_own_writes() {
        let space = TSpace::new(1);
        space.atomically(|tx| {
            tx.write(0, 5);
            assert_eq!(tx.read(0)?, 5);
            tx.write(0, 7);
            assert_eq!(tx.read(0)?, 7);
            Ok(())
        });
        assert_eq!(space.read_now(0), 7);
    }

    #[test]
    fn read_only_transactions_do_not_advance_clock() {
        let space = TSpace::with_values(&[1]);
        let v = space.atomically(|tx| tx.read(0));
        assert_eq!(v, 1);
        assert_eq!(space.commit_count(), 0);
    }

    #[test]
    fn concurrent_increments_are_exact() {
        const THREADS: usize = 8;
        const PER_THREAD: usize = 500;
        let space = Arc::new(TSpace::new(1));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let space = Arc::clone(&space);
                std::thread::spawn(move || {
                    for _ in 0..PER_THREAD {
                        space.atomically(|tx| {
                            let v = tx.read(0)?;
                            tx.write(0, v + 1);
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(space.read_now(0), (THREADS * PER_THREAD) as i64);
    }

    #[test]
    fn pair_invariant_holds_under_concurrency() {
        // The multi-variable shape: two words must stay equal. Writers
        // bump both inside one transaction; readers must never observe a
        // mismatch.
        const WRITERS: usize = 4;
        const READERS: usize = 4;
        const OPS: usize = 300;
        let space = Arc::new(TSpace::new(2));
        let mut handles = Vec::new();
        for _ in 0..WRITERS {
            let space = Arc::clone(&space);
            handles.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    space.atomically(|tx| {
                        let a = tx.read(0)?;
                        let b = tx.read(1)?;
                        tx.write(0, a + 1);
                        tx.write(1, b + 1);
                        Ok(())
                    });
                }
            }));
        }
        for _ in 0..READERS {
            let space = Arc::clone(&space);
            handles.push(std::thread::spawn(move || {
                for _ in 0..OPS {
                    let (a, b) = space.atomically(|tx| Ok((tx.read(0)?, tx.read(1)?)));
                    assert_eq!(a, b, "pair invariant violated");
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(space.read_now(0), (WRITERS * OPS) as i64);
        assert_eq!(space.read_now(1), (WRITERS * OPS) as i64);
    }

    #[test]
    fn bank_transfer_conserves_money() {
        const THREADS: usize = 6;
        const OPS: usize = 200;
        let space = Arc::new(TSpace::with_values(&[500, 500]));
        let handles: Vec<_> = (0..THREADS)
            .map(|i| {
                let space = Arc::clone(&space);
                std::thread::spawn(move || {
                    let (from, to) = if i % 2 == 0 { (0, 1) } else { (1, 0) };
                    for _ in 0..OPS {
                        space.atomically(|tx| {
                            let a = tx.read(from)?;
                            if a >= 10 {
                                let b = tx.read(to)?;
                                tx.write(from, a - 10);
                                tx.write(to, b + 10);
                            }
                            Ok(())
                        });
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(space.read_now(0) + space.read_now(1), 1000);
        assert!(space.read_now(0) >= 0);
        assert!(space.read_now(1) >= 0);
    }

    #[test]
    fn disjoint_writes_commute() {
        let space = Arc::new(TSpace::new(2));
        let s1 = Arc::clone(&space);
        let s2 = Arc::clone(&space);
        let h1 = std::thread::spawn(move || {
            for _ in 0..1000 {
                s1.atomically(|tx| {
                    let v = tx.read(0)?;
                    tx.write(0, v + 1);
                    Ok(())
                });
            }
        });
        let h2 = std::thread::spawn(move || {
            for _ in 0..1000 {
                s2.atomically(|tx| {
                    let v = tx.read(1)?;
                    tx.write(1, v + 1);
                    Ok(())
                });
            }
        });
        h1.join().unwrap();
        h2.join().unwrap();
        assert_eq!(space.read_now(0), 1000);
        assert_eq!(space.read_now(1), 1000);
    }
}
