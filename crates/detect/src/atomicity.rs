//! AVIO-style atomicity-violation detection.
//!
//! For every shared variable the detector scans the trace's total order
//! for triples (local access *p*, remote access *r*, local access *c*)
//! where *p* and *c* are consecutive accesses by one thread and *r* by
//! another thread lands between them. Four of the eight read/write
//! combinations are unserializable — no serial order of the local pair
//! and the remote access explains the observed values:
//!
//! | p | r | c | serializable? |
//! |---|---|---|---------------|
//! | R | W | R | **no** (two local reads disagree) |
//! | W | W | R | **no** (local read sees remote write) |
//! | W | R | W | **no** (remote reads an intermediate value) |
//! | R | W | W | **no** (remote write silently lost) |
//!
//! With training (AVIO's *access-interleaving invariants*), triples whose
//! signature also occurs in passing runs are assumed benign and filtered.

use std::collections::BTreeSet;

use lfm_sim::{ThreadId, Trace, VarId};

use crate::util::{indexed_accesses, ScanCounts};

/// The four unserializable interleaving cases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnserializableCase {
    /// read / remote-write / read.
    ReadWriteRead,
    /// write / remote-write / read.
    WriteWriteRead,
    /// write / remote-read / write.
    WriteReadWrite,
    /// read / remote-write / write.
    ReadWriteWrite,
}

impl UnserializableCase {
    fn classify(p_write: bool, r_write: bool, c_write: bool) -> Option<UnserializableCase> {
        match (p_write, r_write, c_write) {
            (false, true, false) => Some(UnserializableCase::ReadWriteRead),
            (true, true, false) => Some(UnserializableCase::WriteWriteRead),
            (true, false, true) => Some(UnserializableCase::WriteReadWrite),
            (false, true, true) => Some(UnserializableCase::ReadWriteWrite),
            _ => None,
        }
    }
}

/// One detected unserializable interleaving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnserializableInterleaving {
    /// The variable whose access pair was broken.
    pub var: VarId,
    /// The thread whose consecutive access pair was interleaved.
    pub local_thread: ThreadId,
    /// The interleaving remote thread.
    pub remote_thread: ThreadId,
    /// Sequence number of the first local access.
    pub p_seq: usize,
    /// Sequence number of the remote access.
    pub r_seq: usize,
    /// Sequence number of the second local access.
    pub c_seq: usize,
    /// Which unserializable case this is.
    pub case: UnserializableCase,
}

/// Signature of an interleaving for invariant training: variable + case.
type Signature = (VarId, UnserializableCase);

/// AVIO-style atomicity-violation detector.
#[derive(Debug, Clone, Default)]
pub struct AtomicityDetector {
    trained: Option<BTreeSet<Signature>>,
}

impl AtomicityDetector {
    /// An untrained detector: reports every unserializable interleaving.
    pub fn new() -> AtomicityDetector {
        AtomicityDetector { trained: None }
    }

    /// Trains access-interleaving invariants from passing runs: any
    /// signature observed there is considered benign.
    pub fn train<'a>(traces: impl IntoIterator<Item = &'a Trace>) -> AtomicityDetector {
        let mut benign = BTreeSet::new();
        for trace in traces {
            for v in Self::raw_violations(trace, &mut ScanCounts::default()) {
                benign.insert((v.var, v.case));
            }
        }
        AtomicityDetector {
            trained: Some(benign),
        }
    }

    /// Analyzes one trace.
    pub fn analyze(&self, trace: &Trace) -> Vec<UnserializableInterleaving> {
        self.analyze_counting(trace, &mut ScanCounts::default())
    }

    /// [`AtomicityDetector::analyze`], also filling `counts`: `events` is
    /// the trace length, `candidates` the (p, r, c) triples whose
    /// serializability was classified.
    pub fn analyze_counting(
        &self,
        trace: &Trace,
        counts: &mut ScanCounts,
    ) -> Vec<UnserializableInterleaving> {
        counts.events += trace.events.len() as u64;
        let raw = Self::raw_violations(trace, counts);
        match &self.trained {
            None => raw,
            Some(benign) => raw
                .into_iter()
                .filter(|v| !benign.contains(&(v.var, v.case)))
                .collect(),
        }
    }

    fn raw_violations(trace: &Trace, counts: &mut ScanCounts) -> Vec<UnserializableInterleaving> {
        let accesses: Vec<_> = indexed_accesses(trace).map(|(_, e)| e).collect();
        let mut out = Vec::new();
        let mut seen: BTreeSet<(VarId, ThreadId, ThreadId, UnserializableCase)> = BTreeSet::new();

        // Group accesses per variable preserving total order.
        let mut vars: BTreeSet<VarId> = BTreeSet::new();
        for e in &accesses {
            vars.insert(e.kind.var().expect("access"));
        }
        for var in vars {
            let var_accesses: Vec<_> = accesses
                .iter()
                .filter(|e| e.kind.var() == Some(var))
                .collect();
            // For each local pair (p, c): consecutive accesses of the same
            // thread to `var` with exactly the remote accesses in between.
            for (i, p) in var_accesses.iter().enumerate() {
                // Find this thread's next access to var.
                let mut remote_between = Vec::new();
                let mut c_found = None;
                for e in var_accesses.iter().skip(i + 1) {
                    if e.thread == p.thread {
                        c_found = Some(*e);
                        break;
                    }
                    remote_between.push(*e);
                }
                let Some(c) = c_found else { continue };
                for r in remote_between {
                    counts.candidates += 1;
                    let Some(case) = UnserializableCase::classify(
                        p.kind.is_write_access(),
                        r.kind.is_write_access(),
                        c.kind.is_write_access(),
                    ) else {
                        continue;
                    };
                    if seen.insert((var, p.thread, r.thread, case)) {
                        out.push(UnserializableInterleaving {
                            var,
                            local_thread: p.thread,
                            remote_thread: r.thread,
                            p_seq: p.seq,
                            r_seq: r.seq,
                            c_seq: c.seq,
                            case,
                        });
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_sim::{Executor, Expr, ProgramBuilder, RecordMode, Schedule, Stmt};

    fn racy_counter() -> lfm_sim::Program {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::read(v, "t"),
                    Stmt::write(v, Expr::local("t") + Expr::lit(1)),
                ],
            );
        }
        b.build().unwrap()
    }

    fn t(i: usize) -> lfm_sim::ThreadId {
        lfm_sim::ThreadId::from_index(i)
    }

    fn trace_replay(p: &lfm_sim::Program, sched: Vec<lfm_sim::ThreadId>) -> Trace {
        let mut e = Executor::with_record(p, RecordMode::Full);
        e.replay(&Schedule::from(sched), 1000);
        e.into_trace()
    }

    #[test]
    fn detects_rww_lost_update() {
        let p = racy_counter();
        // a reads, b writes (its whole RMW), a writes: R-W-W on `x`.
        let trace = trace_replay(&p, vec![t(0), t(1), t(1), t(0)]);
        let violations = AtomicityDetector::new().analyze(&trace);
        assert!(violations
            .iter()
            .any(|v| v.case == UnserializableCase::ReadWriteWrite));
    }

    #[test]
    fn serial_run_has_no_violation() {
        let p = racy_counter();
        let trace = trace_replay(&p, vec![t(0), t(0), t(1), t(1)]);
        assert!(AtomicityDetector::new().analyze(&trace).is_empty());
    }

    #[test]
    fn detects_rwr_stale_recheck() {
        // Thread a reads x twice (check / use); b writes in between.
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        b.thread("a", vec![Stmt::read(v, "t1"), Stmt::read(v, "t2")]);
        b.thread("b", vec![Stmt::write(v, 9)]);
        let p = b.build().unwrap();
        let trace = trace_replay(&p, vec![t(0), t(1), t(0)]);
        let violations = AtomicityDetector::new().analyze(&trace);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].case, UnserializableCase::ReadWriteRead);
        assert_eq!(violations[0].remote_thread, t(1));
    }

    #[test]
    fn detects_wrw_intermediate_read() {
        // a writes twice (temporarily-inconsistent pair), b reads between.
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        b.thread("a", vec![Stmt::write(v, -1), Stmt::write(v, 1)]);
        b.thread("b", vec![Stmt::read(v, "t")]);
        let p = b.build().unwrap();
        let trace = trace_replay(&p, vec![t(0), t(1), t(0)]);
        let violations = AtomicityDetector::new().analyze(&trace);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].case, UnserializableCase::WriteReadWrite);
    }

    #[test]
    fn remote_read_between_local_reads_is_serializable() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        b.thread("a", vec![Stmt::read(v, "t1"), Stmt::read(v, "t2")]);
        b.thread("b", vec![Stmt::read(v, "t")]);
        let p = b.build().unwrap();
        let trace = trace_replay(&p, vec![t(0), t(1), t(0)]);
        assert!(AtomicityDetector::new().analyze(&trace).is_empty());
    }

    #[test]
    fn training_filters_benign_signatures() {
        let p = racy_counter();
        let buggy = trace_replay(&p, vec![t(0), t(1), t(1), t(0)]);
        // Train on the buggy interleaving itself (pretend it is benign):
        // the detector must then stay silent on the same signature.
        let trained = AtomicityDetector::train([&buggy]);
        assert!(trained.analyze(&buggy).is_empty());
        // While an untrained detector reports it.
        assert!(!AtomicityDetector::new().analyze(&buggy).is_empty());
    }

    #[test]
    fn training_on_serial_runs_keeps_detection() {
        let p = racy_counter();
        let serial = trace_replay(&p, vec![t(0), t(0), t(1), t(1)]);
        let buggy = trace_replay(&p, vec![t(0), t(1), t(1), t(0)]);
        let trained = AtomicityDetector::train([&serial]);
        assert!(!trained.analyze(&buggy).is_empty());
    }
}
