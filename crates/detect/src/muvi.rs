//! MUVI-style multi-variable correlation detection.
//!
//! The study's Finding 3 shows a third of non-deadlock bugs involve
//! *several* variables whose accesses must be mutually atomic — a class
//! invisible to every single-variable detector. MUVI (Lu et al.,
//! SOSP'07, by the same group) infers *access correlations*: pairs of
//! variables a thread habitually accesses together. A correlated pair
//! accessed with a remote write slipping in between is a multi-variable
//! atomicity violation.
//!
//! This detector reproduces that idea over `lfm-sim` traces:
//!
//! - **training** (passing runs): record every unordered variable pair
//!   that some thread accesses within a small window of consecutive
//!   accesses;
//! - **detection**: for a correlated pair `(x, y)`, flag thread-local
//!   access pairs `x … y` with a *conflicting* remote access to `x` or
//!   `y` between them in the trace's total order — a remote write, or a
//!   remote read when the local pair writes (a torn snapshot read).

use std::collections::BTreeSet;

use lfm_sim::{ThreadId, Trace, VarId};

use crate::util::{indexed_accesses, ScanCounts};

/// Window (in per-thread accesses) within which two variables count as
/// accessed "together".
const WINDOW: usize = 4;

/// A detected multi-variable atomicity violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuviViolation {
    /// First variable of the correlated pair (lower id).
    pub var_a: VarId,
    /// Second variable of the correlated pair.
    pub var_b: VarId,
    /// The thread whose correlated access pair was torn.
    pub local_thread: ThreadId,
    /// The remote thread whose write intervened.
    pub remote_thread: ThreadId,
    /// Sequence number of the first local access.
    pub first_seq: usize,
    /// Sequence number of the intervening remote write.
    pub remote_seq: usize,
    /// Sequence number of the second local access.
    pub second_seq: usize,
}

fn pair(a: VarId, b: VarId) -> (VarId, VarId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

/// MUVI-style detector: trained variable-pair correlations checked for
/// intervening remote writes.
#[derive(Debug, Clone, Default)]
pub struct MuviDetector {
    correlations: BTreeSet<(VarId, VarId)>,
}

impl MuviDetector {
    /// Learns access correlations from passing runs.
    pub fn train<'a>(traces: impl IntoIterator<Item = &'a Trace>) -> MuviDetector {
        let mut correlations = BTreeSet::new();
        for trace in traces {
            // Per-thread access sequences.
            for tid in 0..trace.n_threads {
                let thread = ThreadId::from_index(tid);
                let accesses: Vec<VarId> = trace
                    .thread_events(thread)
                    .filter_map(|e| e.kind.var())
                    .collect();
                for (i, &a) in accesses.iter().enumerate() {
                    for &b in accesses.iter().skip(i + 1).take(WINDOW - 1) {
                        if a != b {
                            correlations.insert(pair(a, b));
                        }
                    }
                }
            }
        }
        MuviDetector { correlations }
    }

    /// The learned correlated pairs.
    pub fn correlations(&self) -> impl Iterator<Item = (VarId, VarId)> + '_ {
        self.correlations.iter().copied()
    }

    /// Analyzes one trace against the learned correlations.
    pub fn analyze(&self, trace: &Trace) -> Vec<MuviViolation> {
        self.analyze_counting(trace, &mut ScanCounts::default())
    }

    /// [`MuviDetector::analyze`], also filling `counts`: `events` is the
    /// trace length, `candidates` the thread-local correlated access pairs
    /// scanned for intervening remote conflicts.
    pub fn analyze_counting(&self, trace: &Trace, counts: &mut ScanCounts) -> Vec<MuviViolation> {
        counts.events += trace.events.len() as u64;
        let accesses: Vec<_> = indexed_accesses(trace).map(|(_, e)| e).collect();
        let mut out = Vec::new();
        let mut seen: BTreeSet<(VarId, VarId, ThreadId, ThreadId)> = BTreeSet::new();

        // For each thread-local pair of consecutive-window accesses to a
        // correlated (x, y), look for remote writes in between.
        for (i, first) in accesses.iter().enumerate() {
            let var_a = first.kind.var().expect("access");
            let mut local_seen = 0usize;
            for second in accesses.iter().skip(i + 1) {
                if second.thread != first.thread {
                    continue;
                }
                local_seen += 1;
                if local_seen > WINDOW - 1 {
                    break;
                }
                let var_b = second.kind.var().expect("access");
                if var_a == var_b || !self.correlations.contains(&pair(var_a, var_b)) {
                    continue;
                }
                counts.candidates += 1;
                // Conflicting remote accesses to either variable strictly
                // between the two local accesses in the total order: a
                // remote write always conflicts; a remote read conflicts
                // when the local pair writes (it observes a torn
                // snapshot).
                let local_writes = first.kind.is_write_access() || second.kind.is_write_access();
                for remote in &accesses[i + 1..] {
                    if remote.seq >= second.seq {
                        break;
                    }
                    if remote.thread == first.thread {
                        continue;
                    }
                    let rv = remote.kind.var().expect("access");
                    let conflicts = remote.kind.is_write_access() || local_writes;
                    if (rv == var_a || rv == var_b) && conflicts {
                        let (pa, pb) = pair(var_a, var_b);
                        if seen.insert((pa, pb, first.thread, remote.thread)) {
                            out.push(MuviViolation {
                                var_a: pa,
                                var_b: pb,
                                local_thread: first.thread,
                                remote_thread: remote.thread,
                                first_seq: first.seq,
                                remote_seq: remote.seq,
                                second_seq: second.seq,
                            });
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_sim::{Executor, ProgramBuilder, RecordMode, Schedule, Stmt};

    fn t(i: usize) -> ThreadId {
        ThreadId::from_index(i)
    }

    /// checker reads (count, entries); updater bumps both — the
    /// cache_pair_invariant shape.
    fn pair_program() -> lfm_sim::Program {
        let mut b = ProgramBuilder::new("pair");
        let count = b.var("count", 0);
        let entries = b.var("entries", 0);
        b.thread(
            "updater",
            vec![Stmt::fetch_add(count, 1), Stmt::fetch_add(entries, 1)],
        );
        b.thread(
            "checker",
            vec![Stmt::read(count, "c"), Stmt::read(entries, "e")],
        );
        b.build().unwrap()
    }

    fn trace_replay(p: &lfm_sim::Program, sched: Vec<ThreadId>) -> Trace {
        let mut e = Executor::with_record(p, RecordMode::Full);
        e.replay(&Schedule::from(sched), 1000);
        e.into_trace()
    }

    #[test]
    fn learns_correlations_from_co_access() {
        let p = pair_program();
        let serial = trace_replay(&p, vec![t(0), t(0), t(1), t(1)]);
        let d = MuviDetector::train([&serial]);
        assert_eq!(d.correlations().count(), 1, "count↔entries correlated");
    }

    #[test]
    fn flags_remote_write_between_correlated_accesses() {
        let p = pair_program();
        let serial = trace_replay(&p, vec![t(0), t(0), t(1), t(1)]);
        let d = MuviDetector::train([&serial]);
        // checker reads count, updater's two bumps land, checker reads
        // entries — the torn snapshot.
        let torn = trace_replay(&p, vec![t(1), t(0), t(0), t(1)]);
        let violations = d.analyze(&torn);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].local_thread, t(1));
        assert_eq!(violations[0].remote_thread, t(0));
    }

    #[test]
    fn serial_runs_are_clean() {
        let p = pair_program();
        let serial = trace_replay(&p, vec![t(0), t(0), t(1), t(1)]);
        let d = MuviDetector::train([&serial]);
        assert!(d.analyze(&serial).is_empty());
    }

    #[test]
    fn remote_reads_do_not_violate() {
        // The remote thread only reads: a torn read-snapshot of readers
        // is harmless and must not be flagged.
        let mut b = ProgramBuilder::new("readers");
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        b.thread("r1", vec![Stmt::read(x, "a"), Stmt::read(y, "b")]);
        b.thread("r2", vec![Stmt::read(x, "a"), Stmt::read(y, "b")]);
        let p = b.build().unwrap();
        let serial = trace_replay(&p, vec![t(0), t(0), t(1), t(1)]);
        let d = MuviDetector::train([&serial]);
        let interleaved = trace_replay(&p, vec![t(0), t(1), t(0), t(1)]);
        assert!(d.analyze(&interleaved).is_empty());
    }

    #[test]
    fn uncorrelated_variables_are_ignored() {
        // Two threads on disjoint variables: nothing correlates across
        // threads, and remote writes to un-correlated vars don't flag.
        let mut b = ProgramBuilder::new("disjoint");
        let x = b.var("x", 0);
        let y = b.var("y", 0);
        b.thread("wx", vec![Stmt::write(x, 1), Stmt::write(x, 2)]);
        b.thread("wy", vec![Stmt::write(y, 1), Stmt::write(y, 2)]);
        let p = b.build().unwrap();
        let serial = trace_replay(&p, vec![t(0), t(0), t(1), t(1)]);
        let d = MuviDetector::train([&serial]);
        assert_eq!(d.correlations().count(), 0);
        let interleaved = trace_replay(&p, vec![t(0), t(1), t(0), t(1)]);
        assert!(d.analyze(&interleaved).is_empty());
    }

    #[test]
    fn untrained_detector_reports_nothing() {
        let p = pair_program();
        let torn = trace_replay(&p, vec![t(1), t(0), t(0), t(1)]);
        assert!(MuviDetector::default().analyze(&torn).is_empty());
    }
}
