//! Uniform detection summaries across all detector families.

use std::fmt;
use std::time::Duration;

use lfm_obs::{Event, NoopSink, Sink, Stopwatch, Value};
use lfm_sim::Trace;

use crate::atomicity::AtomicityDetector;
use crate::hb::HappensBeforeDetector;
use crate::lockorder::LockOrderDetector;
use crate::lockset::LocksetDetector;
use crate::muvi::MuviDetector;
use crate::order::OrderDetector;
use crate::util::ScanCounts;

/// The detector families implemented by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DetectorKind {
    /// Vector-clock data-race detection.
    HappensBefore,
    /// Eraser-style lockset analysis.
    Lockset,
    /// AVIO-style unserializable-interleaving detection.
    Atomicity,
    /// First-access order-invariant checking.
    Order,
    /// MUVI-style multi-variable correlation analysis.
    Muvi,
    /// Lock-order-graph deadlock prediction.
    LockOrder,
}

impl DetectorKind {
    /// All detector kinds.
    pub const ALL: [DetectorKind; 6] = [
        DetectorKind::HappensBefore,
        DetectorKind::Lockset,
        DetectorKind::Atomicity,
        DetectorKind::Order,
        DetectorKind::Muvi,
        DetectorKind::LockOrder,
    ];
}

impl fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DetectorKind::HappensBefore => "happens-before",
            DetectorKind::Lockset => "lockset",
            DetectorKind::Atomicity => "atomicity (AVIO)",
            DetectorKind::Order => "order invariant",
            DetectorKind::Muvi => "multi-variable (MUVI)",
            DetectorKind::LockOrder => "lock-order graph",
        })
    }
}

/// Aggregated findings of every detector over a set of traces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectionSummary {
    /// Data races found by happens-before.
    pub races: usize,
    /// Lockset violations.
    pub lockset_warnings: usize,
    /// Unserializable interleavings.
    pub atomicity_violations: usize,
    /// Order-invariant violations.
    pub order_violations: usize,
    /// Multi-variable correlation violations.
    pub muvi_violations: usize,
    /// Lock-order cycles.
    pub lock_order_cycles: usize,
}

impl DetectionSummary {
    /// `true` when any detector reported anything.
    pub fn any(&self) -> bool {
        self.races > 0
            || self.lockset_warnings > 0
            || self.atomicity_violations > 0
            || self.order_violations > 0
            || self.muvi_violations > 0
            || self.lock_order_cycles > 0
    }

    /// The count for one detector kind.
    pub fn count(&self, kind: DetectorKind) -> usize {
        match kind {
            DetectorKind::HappensBefore => self.races,
            DetectorKind::Lockset => self.lockset_warnings,
            DetectorKind::Atomicity => self.atomicity_violations,
            DetectorKind::Order => self.order_violations,
            DetectorKind::Muvi => self.muvi_violations,
            DetectorKind::LockOrder => self.lock_order_cycles,
        }
    }
}

impl fmt::Display for DetectionSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "races={} lockset={} atomicity={} order={} muvi={} lock-order-cycles={}",
            self.races,
            self.lockset_warnings,
            self.atomicity_violations,
            self.order_violations,
            self.muvi_violations,
            self.lock_order_cycles
        )
    }
}

/// Scan-volume and timing stats of one detector pass over the test set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PassStats {
    /// Which detector family ran.
    pub kind: DetectorKind,
    /// Trace events walked and candidates reaching the decisive check.
    pub counts: ScanCounts,
    /// Findings the pass reported.
    pub reports: u64,
    /// Wall-clock time of the pass (training excluded; analysis only).
    pub wall: Duration,
}

/// Per-pass stats of one [`detect_all_with_stats`] run, in
/// [`DetectorKind::ALL`] order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DetectStats {
    /// One entry per detector family.
    pub passes: Vec<PassStats>,
    /// Wall-clock time spent training the invariant-based detectors.
    pub training_wall: Duration,
}

impl DetectStats {
    /// The stats entry for one detector kind, if that pass ran.
    pub fn pass(&self, kind: DetectorKind) -> Option<&PassStats> {
        self.passes.iter().find(|p| p.kind == kind)
    }

    /// Total events scanned across every pass.
    pub fn events_scanned(&self) -> u64 {
        self.passes.iter().map(|p| p.counts.events).sum()
    }
}

/// Runs every detector over the given traces.
///
/// `training` traces (passing runs) train the invariant-based detectors
/// (atomicity and order); `test` traces are analyzed by all five
/// detectors and the findings summed.
pub fn detect_all(training: &[Trace], test: &[Trace]) -> DetectionSummary {
    detect_all_with_stats(training, test, &NoopSink).0
}

/// [`detect_all`], also returning per-pass [`DetectStats`] and streaming
/// `detect` scope events (one `pass` event per detector plus a final
/// `summary`) to `sink`. Observation only: the summary is identical
/// whatever the sink.
pub fn detect_all_with_stats(
    training: &[Trace],
    test: &[Trace],
    sink: &dyn Sink,
) -> (DetectionSummary, DetectStats) {
    let training_watch = Stopwatch::start();
    let hb = HappensBeforeDetector::new();
    let lockset = LocksetDetector::new();
    let atomicity = AtomicityDetector::train(training.iter());
    let order = OrderDetector::train(training.iter());
    let muvi = MuviDetector::train(training.iter());
    let mut lockorder = LockOrderDetector::new();
    let training_wall = training_watch.elapsed();

    let mut summary = DetectionSummary::default();
    let mut passes = Vec::with_capacity(DetectorKind::ALL.len());

    // Each pass walks the whole test set so its wall time is comparable
    // across detectors (and the lock-order pass also folds in training
    // traces, which only add graph edges, never cycles of their own).
    for kind in DetectorKind::ALL {
        let watch = Stopwatch::start();
        let mut counts = ScanCounts::default();
        let mut reports = 0u64;
        match kind {
            DetectorKind::HappensBefore => {
                for t in test {
                    let n = hb.analyze_counting(t, &mut counts).len();
                    summary.races += n;
                    reports += n as u64;
                }
            }
            DetectorKind::Lockset => {
                for t in test {
                    let n = lockset.analyze_counting(t, &mut counts).len();
                    summary.lockset_warnings += n;
                    reports += n as u64;
                }
            }
            DetectorKind::Atomicity => {
                for t in test {
                    let n = atomicity.analyze_counting(t, &mut counts).len();
                    summary.atomicity_violations += n;
                    reports += n as u64;
                }
            }
            DetectorKind::Order => {
                for t in test {
                    let n = order.analyze_counting(t, &mut counts).len();
                    summary.order_violations += n;
                    reports += n as u64;
                }
            }
            DetectorKind::Muvi => {
                for t in test {
                    let n = muvi.analyze_counting(t, &mut counts).len();
                    summary.muvi_violations += n;
                    reports += n as u64;
                }
            }
            DetectorKind::LockOrder => {
                for t in training.iter().chain(test) {
                    lockorder.observe_counting(t, &mut counts);
                }
                let n = lockorder.cycles().len();
                summary.lock_order_cycles = n;
                reports = n as u64;
            }
        }
        let pass = PassStats {
            kind,
            counts,
            reports,
            wall: watch.elapsed(),
        };
        if sink.enabled() {
            sink.emit(&Event {
                scope: "detect",
                name: "pass",
                fields: &[
                    ("detector", Value::Str(&kind.to_string())),
                    ("events", Value::U64(counts.events)),
                    ("candidates", Value::U64(counts.candidates)),
                    ("reports", Value::U64(reports)),
                    ("wall_us", Value::U64(pass.wall.as_micros() as u64)),
                ],
            });
        }
        passes.push(pass);
    }

    if sink.enabled() {
        sink.emit(&Event {
            scope: "detect",
            name: "summary",
            fields: &[
                ("training_traces", Value::U64(training.len() as u64)),
                ("test_traces", Value::U64(test.len() as u64)),
                ("races", Value::U64(summary.races as u64)),
                ("lockset", Value::U64(summary.lockset_warnings as u64)),
                ("atomicity", Value::U64(summary.atomicity_violations as u64)),
                ("order", Value::U64(summary.order_violations as u64)),
                ("muvi", Value::U64(summary.muvi_violations as u64)),
                (
                    "lock_order_cycles",
                    Value::U64(summary.lock_order_cycles as u64),
                ),
                (
                    "training_wall_us",
                    Value::U64(training_wall.as_micros() as u64),
                ),
            ],
        });
    }

    (
        summary,
        DetectStats {
            passes,
            training_wall,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_sim::{Executor, Expr, ProgramBuilder, RecordMode, Schedule, Stmt, ThreadId};

    fn t(i: usize) -> ThreadId {
        ThreadId::from_index(i)
    }

    fn racy_counter() -> lfm_sim::Program {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::read(v, "t"),
                    Stmt::write(v, Expr::local("t") + Expr::lit(1)),
                ],
            );
        }
        b.build().unwrap()
    }

    fn trace_replay(p: &lfm_sim::Program, sched: Vec<ThreadId>) -> Trace {
        let mut e = Executor::with_record(p, RecordMode::Full);
        e.replay(&Schedule::from(sched), 1000);
        e.into_trace()
    }

    #[test]
    fn detect_all_aggregates() {
        let p = racy_counter();
        let serial = trace_replay(&p, vec![t(0), t(0), t(1), t(1)]);
        let buggy = trace_replay(&p, vec![t(0), t(1), t(1), t(0)]);
        let summary = detect_all(&[serial], &[buggy]);
        assert!(summary.any());
        assert!(summary.races > 0);
        assert!(summary.lockset_warnings > 0);
        assert!(summary.atomicity_violations > 0);
        assert_eq!(summary.lock_order_cycles, 0);
        assert_eq!(summary.count(DetectorKind::HappensBefore), summary.races);
    }

    #[test]
    fn clean_program_yields_empty_summary() {
        let mut b = ProgramBuilder::new("clean");
        let v = b.var("x", 0);
        let m = b.mutex();
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::lock(m),
                    Stmt::read(v, "t"),
                    Stmt::write(v, Expr::local("t") + Expr::lit(1)),
                    Stmt::unlock(m),
                ],
            );
        }
        let p = b.build().unwrap();
        let tr1 = trace_replay(&p, vec![t(0); 8]);
        let tr2 = trace_replay(&p, vec![t(1); 8]);
        let summary = detect_all(&[tr1], &[tr2]);
        assert!(!summary.any(), "got {summary}");
    }

    #[test]
    fn display_lists_all_counters() {
        let s = DetectionSummary {
            races: 1,
            lockset_warnings: 2,
            atomicity_violations: 3,
            order_violations: 4,
            muvi_violations: 6,
            lock_order_cycles: 5,
        }
        .to_string();
        for needle in [
            "races=1",
            "lockset=2",
            "atomicity=3",
            "order=4",
            "muvi=6",
            "cycles=5",
        ] {
            assert!(s.contains(needle), "{s} missing {needle}");
        }
    }

    #[test]
    fn detector_kind_display() {
        assert_eq!(DetectorKind::ALL.len(), 6);
        assert_eq!(DetectorKind::Atomicity.to_string(), "atomicity (AVIO)");
    }

    #[test]
    fn stats_cover_every_pass_and_match_plain_detect_all() {
        let p = racy_counter();
        let serial = trace_replay(&p, vec![t(0), t(0), t(1), t(1)]);
        let buggy = trace_replay(&p, vec![t(0), t(1), t(1), t(0)]);
        let sink = lfm_obs::MemorySink::new();
        let (summary, stats) = detect_all_with_stats(
            std::slice::from_ref(&serial),
            std::slice::from_ref(&buggy),
            &sink,
        );
        assert_eq!(summary, detect_all(&[serial], &[buggy]));
        assert_eq!(stats.passes.len(), DetectorKind::ALL.len());
        for (pass, kind) in stats.passes.iter().zip(DetectorKind::ALL) {
            assert_eq!(pass.kind, kind);
            assert!(pass.counts.events > 0, "{kind} scanned no events");
            assert_eq!(pass.reports as usize, summary.count(kind));
        }
        assert!(stats.events_scanned() > 0);
        assert!(stats.pass(DetectorKind::HappensBefore).is_some());
        // One `pass` event per detector plus the final `summary`.
        assert_eq!(
            sink.events_named("detect", "pass").len(),
            DetectorKind::ALL.len()
        );
        assert_eq!(sink.events_named("detect", "summary").len(), 1);
    }
}
