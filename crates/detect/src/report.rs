//! Uniform detection summaries across all detector families.

use std::fmt;

use lfm_sim::Trace;

use crate::atomicity::AtomicityDetector;
use crate::hb::HappensBeforeDetector;
use crate::lockorder::LockOrderDetector;
use crate::lockset::LocksetDetector;
use crate::muvi::MuviDetector;
use crate::order::OrderDetector;

/// The detector families implemented by this crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DetectorKind {
    /// Vector-clock data-race detection.
    HappensBefore,
    /// Eraser-style lockset analysis.
    Lockset,
    /// AVIO-style unserializable-interleaving detection.
    Atomicity,
    /// First-access order-invariant checking.
    Order,
    /// MUVI-style multi-variable correlation analysis.
    Muvi,
    /// Lock-order-graph deadlock prediction.
    LockOrder,
}

impl DetectorKind {
    /// All detector kinds.
    pub const ALL: [DetectorKind; 6] = [
        DetectorKind::HappensBefore,
        DetectorKind::Lockset,
        DetectorKind::Atomicity,
        DetectorKind::Order,
        DetectorKind::Muvi,
        DetectorKind::LockOrder,
    ];
}

impl fmt::Display for DetectorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DetectorKind::HappensBefore => "happens-before",
            DetectorKind::Lockset => "lockset",
            DetectorKind::Atomicity => "atomicity (AVIO)",
            DetectorKind::Order => "order invariant",
            DetectorKind::Muvi => "multi-variable (MUVI)",
            DetectorKind::LockOrder => "lock-order graph",
        })
    }
}

/// Aggregated findings of every detector over a set of traces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DetectionSummary {
    /// Data races found by happens-before.
    pub races: usize,
    /// Lockset violations.
    pub lockset_warnings: usize,
    /// Unserializable interleavings.
    pub atomicity_violations: usize,
    /// Order-invariant violations.
    pub order_violations: usize,
    /// Multi-variable correlation violations.
    pub muvi_violations: usize,
    /// Lock-order cycles.
    pub lock_order_cycles: usize,
}

impl DetectionSummary {
    /// `true` when any detector reported anything.
    pub fn any(&self) -> bool {
        self.races > 0
            || self.lockset_warnings > 0
            || self.atomicity_violations > 0
            || self.order_violations > 0
            || self.muvi_violations > 0
            || self.lock_order_cycles > 0
    }

    /// The count for one detector kind.
    pub fn count(&self, kind: DetectorKind) -> usize {
        match kind {
            DetectorKind::HappensBefore => self.races,
            DetectorKind::Lockset => self.lockset_warnings,
            DetectorKind::Atomicity => self.atomicity_violations,
            DetectorKind::Order => self.order_violations,
            DetectorKind::Muvi => self.muvi_violations,
            DetectorKind::LockOrder => self.lock_order_cycles,
        }
    }
}

impl fmt::Display for DetectionSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "races={} lockset={} atomicity={} order={} muvi={} lock-order-cycles={}",
            self.races,
            self.lockset_warnings,
            self.atomicity_violations,
            self.order_violations,
            self.muvi_violations,
            self.lock_order_cycles
        )
    }
}

/// Runs every detector over the given traces.
///
/// `training` traces (passing runs) train the invariant-based detectors
/// (atomicity and order); `test` traces are analyzed by all five
/// detectors and the findings summed.
pub fn detect_all(training: &[Trace], test: &[Trace]) -> DetectionSummary {
    let hb = HappensBeforeDetector::new();
    let lockset = LocksetDetector::new();
    let atomicity = AtomicityDetector::train(training.iter());
    let order = OrderDetector::train(training.iter());
    let muvi = MuviDetector::train(training.iter());
    let mut lockorder = LockOrderDetector::new();
    for t in training.iter().chain(test) {
        lockorder.observe(t);
    }

    let mut summary = DetectionSummary::default();
    for t in test {
        summary.races += hb.analyze(t).len();
        summary.lockset_warnings += lockset.analyze(t).len();
        summary.atomicity_violations += atomicity.analyze(t).len();
        summary.order_violations += order.analyze(t).len();
        summary.muvi_violations += muvi.analyze(t).len();
    }
    summary.lock_order_cycles = lockorder.cycles().len();
    summary
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_sim::{Executor, Expr, ProgramBuilder, RecordMode, Schedule, Stmt, ThreadId};

    fn t(i: usize) -> ThreadId {
        ThreadId::from_index(i)
    }

    fn racy_counter() -> lfm_sim::Program {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::read(v, "t"),
                    Stmt::write(v, Expr::local("t") + Expr::lit(1)),
                ],
            );
        }
        b.build().unwrap()
    }

    fn trace_replay(p: &lfm_sim::Program, sched: Vec<ThreadId>) -> Trace {
        let mut e = Executor::with_record(p, RecordMode::Full);
        e.replay(&Schedule::from(sched), 1000);
        e.into_trace()
    }

    #[test]
    fn detect_all_aggregates() {
        let p = racy_counter();
        let serial = trace_replay(&p, vec![t(0), t(0), t(1), t(1)]);
        let buggy = trace_replay(&p, vec![t(0), t(1), t(1), t(0)]);
        let summary = detect_all(&[serial], &[buggy]);
        assert!(summary.any());
        assert!(summary.races > 0);
        assert!(summary.lockset_warnings > 0);
        assert!(summary.atomicity_violations > 0);
        assert_eq!(summary.lock_order_cycles, 0);
        assert_eq!(summary.count(DetectorKind::HappensBefore), summary.races);
    }

    #[test]
    fn clean_program_yields_empty_summary() {
        let mut b = ProgramBuilder::new("clean");
        let v = b.var("x", 0);
        let m = b.mutex();
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::lock(m),
                    Stmt::read(v, "t"),
                    Stmt::write(v, Expr::local("t") + Expr::lit(1)),
                    Stmt::unlock(m),
                ],
            );
        }
        let p = b.build().unwrap();
        let tr1 = trace_replay(&p, vec![t(0); 8]);
        let tr2 = trace_replay(&p, vec![t(1); 8]);
        let summary = detect_all(&[tr1], &[tr2]);
        assert!(!summary.any(), "got {summary}");
    }

    #[test]
    fn display_lists_all_counters() {
        let s = DetectionSummary {
            races: 1,
            lockset_warnings: 2,
            atomicity_violations: 3,
            order_violations: 4,
            muvi_violations: 6,
            lock_order_cycles: 5,
        }
        .to_string();
        for needle in ["races=1", "lockset=2", "atomicity=3", "order=4", "muvi=6", "cycles=5"] {
            assert!(s.contains(needle), "{s} missing {needle}");
        }
    }

    #[test]
    fn detector_kind_display() {
        assert_eq!(DetectorKind::ALL.len(), 6);
        assert_eq!(DetectorKind::Atomicity.to_string(), "atomicity (AVIO)");
    }
}
