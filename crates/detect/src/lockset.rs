//! Eraser-style lockset analysis.

use std::collections::{BTreeSet, HashMap};

use lfm_sim::{MutexId, ThreadId, Trace, VarId};

use crate::util::{indexed_plain_accesses, locksets_at_events, ScanCounts};

/// Per-variable state of the Eraser state machine.
#[derive(Debug, Clone, PartialEq, Eq)]
enum VarState {
    /// Only ever touched by its first thread.
    Exclusive(ThreadId),
    /// Read by multiple threads, never written after sharing.
    Shared,
    /// Written while shared — candidate lockset is enforced.
    SharedModified,
}

/// A lockset violation: a shared-modified variable whose candidate
/// lockset became empty.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocksetWarning {
    /// The variable with an empty candidate lockset.
    pub var: VarId,
    /// Sequence number of the access that emptied the lockset.
    pub at_seq: usize,
    /// Thread performing that access.
    pub thread: ThreadId,
}

/// Eraser-style lockset detector.
///
/// More aggressive than happens-before: it flags variables that are not
/// *consistently* protected by some lock, even when the recorded run
/// happened to order the accesses. The flip side — faithfully reproduced
/// here — is false positives on programs synchronized by condition
/// variables, semaphores, or fork/join instead of locks.
#[derive(Debug, Clone, Default)]
pub struct LocksetDetector {
    _private: (),
}

impl LocksetDetector {
    /// Creates the detector.
    pub fn new() -> LocksetDetector {
        LocksetDetector::default()
    }

    /// Analyzes one trace.
    pub fn analyze(&self, trace: &Trace) -> Vec<LocksetWarning> {
        self.analyze_counting(trace, &mut ScanCounts::default())
    }

    /// [`LocksetDetector::analyze`], also filling `counts`: `events` is
    /// the trace length, `candidates` the shared accesses on which the
    /// Eraser state machine refined a candidate lockset.
    pub fn analyze_counting(&self, trace: &Trace, counts: &mut ScanCounts) -> Vec<LocksetWarning> {
        counts.events += trace.events.len() as u64;
        let locksets = locksets_at_events(trace);
        let mut state: HashMap<VarId, VarState> = HashMap::new();
        let mut candidate: HashMap<VarId, BTreeSet<MutexId>> = HashMap::new();
        let mut warned: BTreeSet<VarId> = BTreeSet::new();
        let mut warnings = Vec::new();

        for (idx, event) in indexed_plain_accesses(trace) {
            let var = event.kind.var().expect("access event");
            let is_write = event.kind.is_write_access();
            let held = &locksets[idx];

            let st = state
                .entry(var)
                .or_insert(VarState::Exclusive(event.thread));
            match st {
                VarState::Exclusive(owner) => {
                    if *owner == event.thread {
                        continue;
                    }
                    // First sharing: initialize the candidate set from
                    // this access and transition. A sharing *write* with
                    // no lock held is already a violation, so fall
                    // through to the check in that case.
                    candidate.insert(var, held.clone());
                    counts.candidates += 1;
                    if is_write {
                        *st = VarState::SharedModified;
                    } else {
                        *st = VarState::Shared;
                        continue;
                    }
                }
                VarState::Shared => {
                    let cand = candidate.entry(var).or_default();
                    *cand = cand.intersection(held).copied().collect();
                    counts.candidates += 1;
                    if is_write {
                        *st = VarState::SharedModified;
                    } else {
                        continue;
                    }
                }
                VarState::SharedModified => {
                    let cand = candidate.entry(var).or_default();
                    *cand = cand.intersection(held).copied().collect();
                    counts.candidates += 1;
                }
            }

            // In SharedModified, an empty candidate set is a violation.
            if candidate.get(&var).is_none_or(|c| c.is_empty()) && warned.insert(var) {
                warnings.push(LocksetWarning {
                    var,
                    at_seq: event.seq,
                    thread: event.thread,
                });
            }
        }
        warnings
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_sim::{Executor, Expr, ProgramBuilder, RecordMode, Stmt};

    fn trace_sequential(p: &lfm_sim::Program) -> Trace {
        let mut e = Executor::with_record(p, RecordMode::Full);
        e.run_sequential(1000);
        e.into_trace()
    }

    #[test]
    fn flags_unlocked_shared_write_even_without_manifestation() {
        // The sequential run never interleaves badly, but lockset still
        // flags the unprotected counter — its key advantage over HB.
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::read(v, "t"),
                    Stmt::write(v, Expr::local("t") + Expr::lit(1)),
                ],
            );
        }
        let p = b.build().unwrap();
        let warnings = LocksetDetector::new().analyze(&trace_sequential(&p));
        assert_eq!(warnings.len(), 1);
        assert_eq!(warnings[0].var, v);
    }

    #[test]
    fn consistently_locked_variable_is_clean() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        let m = b.mutex();
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::lock(m),
                    Stmt::read(v, "t"),
                    Stmt::write(v, Expr::local("t") + Expr::lit(1)),
                    Stmt::unlock(m),
                ],
            );
        }
        let p = b.build().unwrap();
        assert!(LocksetDetector::new()
            .analyze(&trace_sequential(&p))
            .is_empty());
    }

    #[test]
    fn thread_local_variable_is_clean() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        b.thread(
            "a",
            vec![Stmt::write(v, 1), Stmt::read(v, "t"), Stmt::write(v, 2)],
        );
        b.thread("b", vec![Stmt::Yield]);
        let p = b.build().unwrap();
        assert!(LocksetDetector::new()
            .analyze(&trace_sequential(&p))
            .is_empty());
    }

    #[test]
    fn read_shared_variable_is_clean() {
        // Initialization by one thread, then read-only sharing: the Eraser
        // state machine must not warn.
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 7);
        b.thread("a", vec![Stmt::read(v, "t")]);
        b.thread("b", vec![Stmt::read(v, "t")]);
        b.thread("c", vec![Stmt::read(v, "t")]);
        let p = b.build().unwrap();
        assert!(LocksetDetector::new()
            .analyze(&trace_sequential(&p))
            .is_empty());
    }

    #[test]
    fn semaphore_synchronization_is_a_false_positive() {
        // Correct program (semaphore orders the accesses) — lockset still
        // warns. This false-positive behaviour is intentional Eraser
        // fidelity, and exactly why the study's order-violation class is
        // hard for lock-centric tools.
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        let s = b.semaphore(0);
        b.thread("producer", vec![Stmt::write(v, 1), Stmt::SemRelease(s)]);
        b.thread("consumer", vec![Stmt::SemAcquire(s), Stmt::write(v, 2)]);
        let p = b.build().unwrap();
        let warnings = LocksetDetector::new().analyze(&trace_sequential(&p));
        assert_eq!(warnings.len(), 1, "Eraser-style FP expected");
    }

    #[test]
    fn partially_locked_write_is_flagged() {
        // One thread locks, the other does not: candidate set empties.
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        let m = b.mutex();
        b.thread(
            "locked",
            vec![Stmt::lock(m), Stmt::write(v, 1), Stmt::unlock(m)],
        );
        b.thread("unlocked", vec![Stmt::write(v, 2)]);
        let p = b.build().unwrap();
        let warnings = LocksetDetector::new().analyze(&trace_sequential(&p));
        assert_eq!(warnings.len(), 1);
    }
}
