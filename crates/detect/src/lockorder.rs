//! Lock-order-graph deadlock prediction.
//!
//! Builds the acquisition-order graph (edge `m1 → m2` whenever some
//! thread acquires `m2` while holding `m1`) across one or more traces and
//! reports every cycle as a *potential* deadlock — even when the analyzed
//! runs never deadlocked. This matches the study's observation that 97%
//! of deadlocks involve at most two resources: most reported cycles are
//! 2-cycles, which are also the easiest to confirm.

use std::collections::{BTreeMap, BTreeSet};

use lfm_sim::{EventKind, MutexId, Trace};

use crate::util::{locksets_at_events, ScanCounts};

/// A cycle in the lock-order graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PotentialDeadlock {
    /// The mutexes forming the cycle, in cycle order (first repeated
    /// implicitly).
    pub cycle: Vec<MutexId>,
}

impl PotentialDeadlock {
    /// Number of resources in the cycle.
    pub fn resources(&self) -> usize {
        self.cycle.len()
    }
}

/// Lock-order-graph deadlock predictor.
#[derive(Debug, Clone, Default)]
pub struct LockOrderDetector {
    edges: BTreeMap<MutexId, BTreeSet<MutexId>>,
}

impl LockOrderDetector {
    /// Creates an empty detector; feed it traces with
    /// [`LockOrderDetector::observe`].
    pub fn new() -> LockOrderDetector {
        LockOrderDetector::default()
    }

    /// Adds one trace's acquisitions to the lock-order graph.
    pub fn observe(&mut self, trace: &Trace) {
        self.observe_counting(trace, &mut ScanCounts::default());
    }

    /// [`LockOrderDetector::observe`], also filling `counts`: `events` is
    /// the trace length, `candidates` the held→acquired edges recorded
    /// (including repeats of already-known edges).
    pub fn observe_counting(&mut self, trace: &Trace, counts: &mut ScanCounts) {
        counts.events += trace.events.len() as u64;
        let locksets = locksets_at_events(trace);
        for (idx, event) in trace.events.iter().enumerate() {
            let acquired = match &event.kind {
                EventKind::Lock(m) => Some(*m),
                EventKind::TryLock { mutex, success } if *success => Some(*mutex),
                EventKind::WaitEnd { mutex, .. } => Some(*mutex),
                _ => None,
            };
            let Some(acquired) = acquired else { continue };
            // locksets_at_events includes the just-acquired mutex; the
            // edges come from everything else held.
            for held in &locksets[idx] {
                if *held != acquired {
                    counts.candidates += 1;
                    self.edges.entry(*held).or_default().insert(acquired);
                }
            }
        }
    }

    /// Number of distinct held→acquired edges observed.
    pub fn edge_count(&self) -> usize {
        self.edges.values().map(BTreeSet::len).sum()
    }

    /// Reports every elementary cycle in the graph (deduplicated by the
    /// cycle's vertex set; each set reported once, starting from its
    /// smallest mutex).
    pub fn cycles(&self) -> Vec<PotentialDeadlock> {
        let mut found: BTreeSet<Vec<MutexId>> = BTreeSet::new();
        let nodes: Vec<MutexId> = self.edges.keys().copied().collect();
        for &start in &nodes {
            // DFS from each start, only visiting nodes >= start so every
            // cycle is found once rooted at its minimal vertex.
            let mut stack = vec![(start, vec![start])];
            while let Some((node, path)) = stack.pop() {
                let Some(nexts) = self.edges.get(&node) else {
                    continue;
                };
                for &next in nexts {
                    if next == start {
                        let mut cycle = path.clone();
                        // Canonical: already starts at minimal vertex.
                        if cycle.iter().min() == Some(&start) {
                            found.insert(std::mem::take(&mut cycle));
                        }
                    } else if next > start && !path.contains(&next) && path.len() < 8 {
                        let mut p = path.clone();
                        p.push(next);
                        stack.push((next, p));
                    }
                }
            }
        }
        found
            .into_iter()
            .map(|cycle| PotentialDeadlock { cycle })
            .collect()
    }

    /// Convenience: observe a batch of traces and report cycles.
    pub fn analyze<'a>(traces: impl IntoIterator<Item = &'a Trace>) -> Vec<PotentialDeadlock> {
        let mut d = LockOrderDetector::new();
        for t in traces {
            d.observe(t);
        }
        d.cycles()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_sim::{Executor, ProgramBuilder, RecordMode, Stmt};

    fn trace_sequential(p: &lfm_sim::Program) -> Trace {
        let mut e = Executor::with_record(p, RecordMode::Full);
        let out = e.run_sequential(1000);
        assert!(out.is_ok(), "training run must not deadlock: {out}");
        e.into_trace()
    }

    #[test]
    fn predicts_abba_from_a_passing_run() {
        let mut b = ProgramBuilder::new("abba");
        let m1 = b.mutex();
        let m2 = b.mutex();
        b.thread(
            "a",
            vec![
                Stmt::lock(m1),
                Stmt::lock(m2),
                Stmt::unlock(m2),
                Stmt::unlock(m1),
            ],
        );
        b.thread(
            "b",
            vec![
                Stmt::lock(m2),
                Stmt::lock(m1),
                Stmt::unlock(m1),
                Stmt::unlock(m2),
            ],
        );
        let p = b.build().unwrap();
        // The sequential run never deadlocks, yet the cycle is visible.
        let cycles = LockOrderDetector::analyze([&trace_sequential(&p)]);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].resources(), 2);
        assert_eq!(cycles[0].cycle, vec![m1, m2]);
    }

    #[test]
    fn consistent_order_has_no_cycle() {
        let mut b = ProgramBuilder::new("ordered");
        let m1 = b.mutex();
        let m2 = b.mutex();
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::lock(m1),
                    Stmt::lock(m2),
                    Stmt::unlock(m2),
                    Stmt::unlock(m1),
                ],
            );
        }
        let p = b.build().unwrap();
        let mut d = LockOrderDetector::new();
        d.observe(&trace_sequential(&p));
        assert_eq!(d.edge_count(), 1);
        assert!(d.cycles().is_empty());
    }

    #[test]
    fn three_lock_cycle_found_across_traces() {
        // Each trace contributes one edge; only together do they form the
        // 3-cycle — the cross-run aggregation matters.
        let mk = |a: usize, c: usize| {
            let mut b = ProgramBuilder::new("pair");
            let m: Vec<_> = (0..3).map(|_| b.mutex()).collect();
            b.thread(
                "t",
                vec![
                    Stmt::lock(m[a]),
                    Stmt::lock(m[c]),
                    Stmt::unlock(m[c]),
                    Stmt::unlock(m[a]),
                ],
            );
            b.build().unwrap()
        };
        let p01 = mk(0, 1);
        let p12 = mk(1, 2);
        let p20 = mk(2, 0);
        let t1 = trace_sequential(&p01);
        let t2 = trace_sequential(&p12);
        let t3 = trace_sequential(&p20);
        let cycles = LockOrderDetector::analyze([&t1, &t2, &t3]);
        assert_eq!(cycles.len(), 1);
        assert_eq!(cycles[0].resources(), 3);
    }

    #[test]
    fn trylock_acquisitions_contribute_edges() {
        let mut b = ProgramBuilder::new("try");
        let m1 = b.mutex();
        let m2 = b.mutex();
        b.thread(
            "a",
            vec![
                Stmt::lock(m1),
                Stmt::TryLock {
                    mutex: m2,
                    into: "ok",
                },
                Stmt::unlock(m2),
                Stmt::unlock(m1),
            ],
        );
        b.thread(
            "b",
            vec![
                Stmt::lock(m2),
                Stmt::lock(m1),
                Stmt::unlock(m1),
                Stmt::unlock(m2),
            ],
        );
        let p = b.build().unwrap();
        let cycles = LockOrderDetector::analyze([&trace_sequential(&p)]);
        assert_eq!(cycles.len(), 1);
    }
}
