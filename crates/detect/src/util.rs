//! Shared helpers for trace analysis: lockset reconstruction and access
//! iteration.

use std::collections::{BTreeSet, HashMap};

use lfm_sim::{Event, EventKind, MutexId, ThreadId, Trace};

/// Reconstructs, for every event index, the set of mutexes held by the
/// event's thread *at* that event (including a lock acquired by the event
/// itself, excluding one released by it).
pub(crate) fn locksets_at_events(trace: &Trace) -> Vec<BTreeSet<MutexId>> {
    let mut held: HashMap<ThreadId, BTreeSet<MutexId>> = HashMap::new();
    let mut out = Vec::with_capacity(trace.events.len());
    for event in &trace.events {
        let set = held.entry(event.thread).or_default();
        match &event.kind {
            EventKind::Lock(m) => {
                set.insert(*m);
            }
            EventKind::TryLock { mutex, success } if *success => {
                set.insert(*mutex);
            }
            EventKind::Unlock(m) => {
                set.remove(m);
            }
            EventKind::WaitBegin { mutex, .. } => {
                // The wait releases the mutex for its duration.
                set.remove(mutex);
            }
            EventKind::WaitEnd { mutex, .. } => {
                set.insert(*mutex);
            }
            _ => {}
        }
        out.push(held.get(&event.thread).cloned().unwrap_or_default());
    }
    out
}

/// Scan-volume counters filled by a detector pass: how many trace events
/// were walked and how many candidate sites/pairs/triples survived the
/// cheap filters and reached the pass's real check. Reported alongside
/// per-pass wall time by `detect_all_with_stats`.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct ScanCounts {
    /// Trace events walked by the pass.
    pub events: u64,
    /// Candidate sites/pairs/triples that reached the pass's decisive
    /// check (detector-specific; see each detector's docs).
    pub candidates: u64,
}

impl ScanCounts {
    /// Accumulates another pass's counters (e.g. across traces).
    pub fn merge(&mut self, other: ScanCounts) {
        self.events += other.events;
        self.candidates += other.candidates;
    }
}

/// `true` when two access kinds conflict (same variable assumed; at least
/// one writes).
pub(crate) fn conflicting(a: &EventKind, b: &EventKind) -> bool {
    a.is_write_access() || b.is_write_access()
}

/// Iterator item: an access event with its index into `trace.events`.
pub(crate) fn indexed_accesses(trace: &Trace) -> impl Iterator<Item = (usize, &Event)> {
    trace
        .events
        .iter()
        .enumerate()
        .filter(|(_, e)| e.kind.is_access())
}

/// Plain (non-atomic) accesses only: `Read` and `Write` events. Atomic
/// RMW/CAS operations are synchronization-like and do not constitute data
/// races, mirroring how race detectors treat C11 atomics.
pub(crate) fn indexed_plain_accesses(trace: &Trace) -> impl Iterator<Item = (usize, &Event)> {
    trace
        .events
        .iter()
        .enumerate()
        .filter(|(_, e)| matches!(e.kind, EventKind::Read { .. } | EventKind::Write { .. }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_sim::{Executor, Expr, ProgramBuilder, RecordMode, Stmt};

    #[test]
    fn lockset_tracks_lock_unlock_and_wait() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        let m = b.mutex();
        let c = b.cond();
        b.thread(
            "w",
            vec![
                Stmt::lock(m),
                Stmt::read(v, "t"),
                Stmt::Wait { cond: c, mutex: m },
                Stmt::read(v, "t"),
                Stmt::unlock(m),
            ],
        );
        b.thread("s", vec![Stmt::read(v, "r"), Stmt::Signal(c)]);
        let p = b.build().unwrap();
        let mut e = Executor::with_record(&p, RecordMode::Full);
        // w locks+reads+waits, s reads+signals, w resumes.
        e.run_with(100, |en| *en.last().unwrap());
        let trace = e.into_trace();
        let sets = locksets_at_events(&trace);
        for (i, ev) in trace.events.iter().enumerate() {
            match &ev.kind {
                EventKind::Read { .. } if ev.thread.index() == 0 => {
                    assert!(sets[i].contains(&m), "w's reads hold the mutex");
                }
                EventKind::Read { .. } => {
                    assert!(sets[i].is_empty(), "s's read holds nothing");
                }
                EventKind::WaitBegin { .. } => {
                    assert!(!sets[i].contains(&m), "wait releases the mutex");
                }
                EventKind::WaitEnd { .. } => {
                    assert!(sets[i].contains(&m), "wakeup re-acquires");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn conflicting_requires_a_write() {
        let v = lfm_sim::VarId::from_index(0);
        let r = EventKind::Read { var: v, value: 0 };
        let w = EventKind::Write { var: v, value: 1 };
        assert!(!conflicting(&r, &r));
        assert!(conflicting(&r, &w));
        assert!(conflicting(&w, &r));
        assert!(conflicting(&w, &w));
    }

    #[test]
    fn indexed_accesses_filters_sync_events() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        let m = b.mutex();
        b.thread("t", vec![Stmt::lock(m), Stmt::write(v, 1), Stmt::unlock(m)]);
        let p = b.build().unwrap();
        let mut e = Executor::with_record(&p, RecordMode::Full);
        e.run_sequential(100);
        let trace = e.into_trace();
        let accesses: Vec<_> = indexed_accesses(&trace).collect();
        assert_eq!(accesses.len(), 1);
        assert!(matches!(
            accesses[0].1.kind,
            EventKind::Write { value: 1, .. }
        ));
        let _ = Expr::lit(0);
    }
}
