//! Order-violation detection via first-access invariants.
//!
//! The study's second-largest non-deadlock class (32%) — order violations
//! such as use-before-initialization — is invisible to lock-centric
//! detectors. This detector learns, from passing runs, *definition-use*
//! invariants of the form "variable `v`'s first cross-thread read is
//! always preceded by a write" and "thread X's first access to `v`
//! happens-after thread Y's write", then flags runs that break them.

use std::collections::{BTreeMap, BTreeSet};

use lfm_sim::{EventKind, ThreadId, Trace, VarId};

use crate::util::{indexed_accesses, ScanCounts};

/// A detected order violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OrderViolation {
    /// The variable read before its expected definition.
    pub var: VarId,
    /// The reading thread.
    pub reader: ThreadId,
    /// Sequence number of the premature read.
    pub read_seq: usize,
    /// The value observed (the variable's initial value, evidence that
    /// the definition had not executed).
    pub observed: i64,
}

/// First-access (definition-before-use) order-violation detector.
#[derive(Debug, Clone, Default)]
pub struct OrderDetector {
    /// Variables whose first observed access is a write in every training
    /// run.
    write_first: BTreeSet<VarId>,
}

impl OrderDetector {
    /// Trains invariants from passing runs.
    ///
    /// A variable acquires the *write-first* invariant when, in every
    /// training trace that touches it, its first access is a write.
    pub fn train<'a>(traces: impl IntoIterator<Item = &'a Trace>) -> OrderDetector {
        let mut write_first: BTreeMap<VarId, bool> = BTreeMap::new();
        for trace in traces {
            let mut seen_in_trace: BTreeSet<VarId> = BTreeSet::new();
            for (_, e) in indexed_accesses(trace) {
                let var = e.kind.var().expect("access");
                if seen_in_trace.insert(var) {
                    let is_write = e.kind.is_write_access();
                    write_first
                        .entry(var)
                        .and_modify(|w| *w &= is_write)
                        .or_insert(is_write);
                }
            }
        }
        OrderDetector {
            write_first: write_first
                .into_iter()
                .filter_map(|(v, w)| w.then_some(v))
                .collect(),
        }
    }

    /// Variables carrying the write-first invariant.
    pub fn invariant_vars(&self) -> impl Iterator<Item = VarId> + '_ {
        self.write_first.iter().copied()
    }

    /// Checks one trace against the trained invariants.
    pub fn analyze(&self, trace: &Trace) -> Vec<OrderViolation> {
        self.analyze_counting(trace, &mut ScanCounts::default())
    }

    /// [`OrderDetector::analyze`], also filling `counts`: `events` is the
    /// trace length, `candidates` the first accesses checked against a
    /// trained write-first invariant.
    pub fn analyze_counting(&self, trace: &Trace, counts: &mut ScanCounts) -> Vec<OrderViolation> {
        counts.events += trace.events.len() as u64;
        let mut seen: BTreeSet<VarId> = BTreeSet::new();
        let mut out = Vec::new();
        for (_, e) in indexed_accesses(trace) {
            let var = e.kind.var().expect("access");
            if !seen.insert(var) {
                continue;
            }
            if !self.write_first.contains(&var) {
                continue;
            }
            counts.candidates += 1;
            if let EventKind::Read { value, .. } = e.kind {
                out.push(OrderViolation {
                    var,
                    reader: e.thread,
                    read_seq: e.seq,
                    observed: value,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_sim::{Executor, ProgramBuilder, RecordMode, Schedule, Stmt};

    fn t(i: usize) -> ThreadId {
        ThreadId::from_index(i)
    }

    /// init thread writes `ptr`, user thread reads it — the minimal
    /// use-before-init shape.
    fn use_before_init() -> lfm_sim::Program {
        let mut b = ProgramBuilder::new("ubi");
        let ptr = b.var("ptr", 0);
        b.thread("init", vec![Stmt::write(ptr, 42)]);
        b.thread("user", vec![Stmt::read(ptr, "p")]);
        b.build().unwrap()
    }

    fn trace_replay(p: &lfm_sim::Program, sched: Vec<ThreadId>) -> Trace {
        let mut e = Executor::with_record(p, RecordMode::Full);
        e.replay(&Schedule::from(sched), 1000);
        e.into_trace()
    }

    #[test]
    fn learns_write_first_and_flags_premature_read() {
        let p = use_before_init();
        let good = trace_replay(&p, vec![t(0), t(1)]);
        let detector = OrderDetector::train([&good]);
        assert_eq!(detector.invariant_vars().count(), 1);

        let bad = trace_replay(&p, vec![t(1), t(0)]);
        let violations = detector.analyze(&bad);
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].reader, t(1));
        assert_eq!(violations[0].observed, 0, "read saw the initial value");
    }

    #[test]
    fn good_run_stays_clean() {
        let p = use_before_init();
        let good = trace_replay(&p, vec![t(0), t(1)]);
        let detector = OrderDetector::train([&good]);
        assert!(detector.analyze(&good).is_empty());
    }

    #[test]
    fn read_first_variables_learn_no_invariant() {
        // A flag that is legitimately polled before being set must not
        // acquire the write-first invariant.
        let mut b = ProgramBuilder::new("poll");
        let flag = b.var("flag", 0);
        b.thread("poller", vec![Stmt::read(flag, "f")]);
        b.thread("setter", vec![Stmt::write(flag, 1)]);
        let p = b.build().unwrap();
        let trace = trace_replay(&p, vec![t(0), t(1)]);
        let detector = OrderDetector::train([&trace]);
        assert_eq!(detector.invariant_vars().count(), 0);
        assert!(detector.analyze(&trace).is_empty());
    }

    #[test]
    fn conflicting_training_runs_drop_the_invariant() {
        let p = use_before_init();
        let write_first = trace_replay(&p, vec![t(0), t(1)]);
        let read_first = trace_replay(&p, vec![t(1), t(0)]);
        let detector = OrderDetector::train([&write_first, &read_first]);
        assert_eq!(detector.invariant_vars().count(), 0);
    }

    #[test]
    fn untrained_detector_reports_nothing() {
        let p = use_before_init();
        let bad = trace_replay(&p, vec![t(1), t(0)]);
        let detector = OrderDetector::default();
        assert!(detector.analyze(&bad).is_empty());
    }
}
