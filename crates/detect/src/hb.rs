//! Happens-before (vector clock) data-race detection.

use std::collections::BTreeSet;

use lfm_sim::{ThreadId, Trace, VarId};

use crate::util::{conflicting, indexed_plain_accesses, ScanCounts};

/// A detected data race: two conflicting accesses to the same variable
/// with concurrent vector clocks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Race {
    /// The racing variable.
    pub var: VarId,
    /// Sequence number of the earlier access in the trace's total order.
    pub first_seq: usize,
    /// Thread of the earlier access.
    pub first_thread: ThreadId,
    /// Sequence number of the later access.
    pub second_seq: usize,
    /// Thread of the later access.
    pub second_thread: ThreadId,
    /// Whether the earlier access writes.
    pub first_is_write: bool,
    /// Whether the later access writes.
    pub second_is_write: bool,
}

/// Vector-clock data-race detector (FastTrack-style precision on the
/// recorded run: reports exactly the concurrent conflicting pairs).
/// Atomic RMW/CAS operations are treated as synchronization-like (as
/// race detectors treat C11 atomics) and never race — which is exactly
/// why multi-variable bugs built from individually-atomic updates escape
/// race detection (the study's Finding 3 implication).
///
/// Precise by construction — every reported pair truly is unordered by
/// happens-before in the analyzed execution — but blind to atomicity
/// violations between correctly-locked regions, which the study shows are
/// the dominant non-deadlock class.
#[derive(Debug, Clone, Default)]
pub struct HappensBeforeDetector {
    /// Deduplicate races per (variable, thread pair); keeps reports
    /// readable on loops. Defaults to `true`.
    pub dedup: bool,
}

impl HappensBeforeDetector {
    /// Creates a detector with deduplication enabled.
    pub fn new() -> HappensBeforeDetector {
        HappensBeforeDetector { dedup: true }
    }

    /// Reports every race instance instead of one per (var, thread pair).
    pub fn report_all_instances(mut self) -> HappensBeforeDetector {
        self.dedup = false;
        self
    }

    /// Analyzes one trace, returning the races found.
    pub fn analyze(&self, trace: &Trace) -> Vec<Race> {
        self.analyze_counting(trace, &mut ScanCounts::default())
    }

    /// [`HappensBeforeDetector::analyze`], also filling `counts`:
    /// `events` is the trace length, `candidates` the conflicting
    /// cross-thread same-variable pairs whose vector clocks were compared.
    pub fn analyze_counting(&self, trace: &Trace, counts: &mut ScanCounts) -> Vec<Race> {
        counts.events += trace.events.len() as u64;
        let accesses: Vec<_> = indexed_plain_accesses(trace).collect();
        let mut races = Vec::new();
        let mut seen: BTreeSet<(VarId, ThreadId, ThreadId, bool, bool)> = BTreeSet::new();
        for i in 0..accesses.len() {
            let (_, a) = accesses[i];
            for (_, b) in accesses.iter().skip(i + 1) {
                if a.thread == b.thread {
                    continue;
                }
                if a.kind.var() != b.kind.var() {
                    continue;
                }
                if !conflicting(&a.kind, &b.kind) {
                    continue;
                }
                counts.candidates += 1;
                if !a.clock.concurrent_with(&b.clock) {
                    continue;
                }
                let var = a.kind.var().expect("access has a var");
                if self.dedup {
                    let (t1, t2) = if a.thread <= b.thread {
                        (a.thread, b.thread)
                    } else {
                        (b.thread, a.thread)
                    };
                    let key = (
                        var,
                        t1,
                        t2,
                        a.kind.is_write_access(),
                        b.kind.is_write_access(),
                    );
                    if !seen.insert(key) {
                        continue;
                    }
                }
                races.push(Race {
                    var,
                    first_seq: a.seq,
                    first_thread: a.thread,
                    second_seq: b.seq,
                    second_thread: b.thread,
                    first_is_write: a.kind.is_write_access(),
                    second_is_write: b.kind.is_write_access(),
                });
            }
        }
        races
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lfm_sim::{Executor, Expr, ProgramBuilder, RecordMode, Stmt};

    fn trace_of(p: &lfm_sim::Program, adversarial: bool) -> Trace {
        let mut e = Executor::with_record(p, RecordMode::Full);
        if adversarial {
            e.run_with(1000, |en| *en.last().unwrap());
        } else {
            e.run_sequential(1000);
        }
        e.into_trace()
    }

    #[test]
    fn detects_unsynchronized_conflict_even_in_benign_order() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        b.thread("a", vec![Stmt::write(v, 1)]);
        b.thread("b", vec![Stmt::read(v, "t")]);
        let p = b.build().unwrap();
        // Even the sequential schedule leaves the accesses HB-concurrent.
        let races = HappensBeforeDetector::new().analyze(&trace_of(&p, false));
        assert_eq!(races.len(), 1);
        assert_eq!(races[0].var, v);
        assert!(races[0].first_is_write || races[0].second_is_write);
    }

    #[test]
    fn no_race_between_reads() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        b.thread("a", vec![Stmt::read(v, "t")]);
        b.thread("b", vec![Stmt::read(v, "t")]);
        let p = b.build().unwrap();
        assert!(HappensBeforeDetector::new()
            .analyze(&trace_of(&p, false))
            .is_empty());
    }

    #[test]
    fn lock_protected_accesses_do_not_race() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        let m = b.mutex();
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::lock(m),
                    Stmt::read(v, "t"),
                    Stmt::write(v, Expr::local("t") + Expr::lit(1)),
                    Stmt::unlock(m),
                ],
            );
        }
        let p = b.build().unwrap();
        assert!(HappensBeforeDetector::new()
            .analyze(&trace_of(&p, true))
            .is_empty());
    }

    #[test]
    fn join_edge_suppresses_race() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        let child = b.thread_deferred("child", vec![Stmt::write(v, 1)]);
        b.thread(
            "parent",
            vec![Stmt::Spawn(child), Stmt::Join(child), Stmt::read(v, "t")],
        );
        let p = b.build().unwrap();
        assert!(HappensBeforeDetector::new()
            .analyze(&trace_of(&p, true))
            .is_empty());
    }

    #[test]
    fn dedup_collapses_loop_races() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        b.thread(
            "a",
            vec![
                Stmt::local("i", 0),
                Stmt::while_loop(
                    Expr::local("i").lt(Expr::lit(3)),
                    vec![
                        Stmt::write(v, Expr::local("i")),
                        Stmt::local("i", Expr::local("i") + Expr::lit(1)),
                    ],
                ),
            ],
        );
        b.thread("b", vec![Stmt::read(v, "t")]);
        let p = b.build().unwrap();
        let trace = trace_of(&p, false);
        let deduped = HappensBeforeDetector::new().analyze(&trace);
        let all = HappensBeforeDetector::new()
            .report_all_instances()
            .analyze(&trace);
        assert_eq!(deduped.len(), 1);
        assert_eq!(all.len(), 3);
    }

    #[test]
    fn semaphore_edge_suppresses_race() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("x", 0);
        let s = b.semaphore(0);
        b.thread("producer", vec![Stmt::write(v, 1), Stmt::SemRelease(s)]);
        b.thread("consumer", vec![Stmt::SemAcquire(s), Stmt::read(v, "t")]);
        let p = b.build().unwrap();
        assert!(HappensBeforeDetector::new()
            .analyze(&trace_of(&p, true))
            .is_empty());
    }
}
