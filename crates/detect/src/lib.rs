//! # lfm-detect — dynamic concurrency-bug detectors
//!
//! Implementations of the detector families whose strengths and blind
//! spots the ASPLOS'08 study quantifies, all operating on `lfm-sim`
//! [`Trace`](lfm_sim::Trace)s:
//!
//! - [`HappensBeforeDetector`] — vector-clock data-race detection
//!   (precise, no false positives on the recorded run).
//! - [`LocksetDetector`] — Eraser-style lockset analysis (catches races
//!   that did not manifest in the run, at the price of false positives
//!   for non-lock synchronization).
//! - [`AtomicityDetector`] — AVIO-style unserializable-interleaving
//!   detection with optional invariant training, targeting the study's
//!   dominant single-variable atomicity-violation class.
//! - [`OrderDetector`] — first-access (definition-before-use) invariant
//!   checking, targeting order violations, which lock-centric tools miss.
//! - [`MuviDetector`] — MUVI-style variable-correlation analysis,
//!   the multi-variable class single-variable detectors miss.
//! - [`LockOrderDetector`] — lock-order-graph cycle prediction for
//!   deadlocks, which flags ABBA potential even on non-deadlocking runs.
//!
//! The study's key detection implications are measurable with these:
//! single-variable detectors cannot see the 34% multi-variable bugs, and
//! race detectors miss atomicity violations that involve no data race.
//!
//! # Example
//!
//! ```rust
//! use lfm_sim::{ProgramBuilder, Stmt, Expr, RandomWalker};
//! use lfm_detect::HappensBeforeDetector;
//!
//! # fn main() -> Result<(), lfm_sim::BuildError> {
//! let mut b = ProgramBuilder::new("racy");
//! let v = b.var("x", 0);
//! b.thread("a", vec![Stmt::write(v, 1)]);
//! b.thread("b", vec![Stmt::read(v, "t")]);
//! let p = b.build()?;
//!
//! let traces = lfm_sim::RandomWalker::new(&p, 1).collect_traces(1);
//! let races = HappensBeforeDetector::new().analyze(&traces[0].0);
//! assert_eq!(races.len(), 1); // the unsynchronized write/read pair
//! # let _ = Expr::lit(0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod atomicity;
mod hb;
mod lockorder;
mod lockset;
mod muvi;
mod order;
mod report;
mod util;

pub use atomicity::{AtomicityDetector, UnserializableCase, UnserializableInterleaving};
pub use hb::{HappensBeforeDetector, Race};
pub use lockorder::{LockOrderDetector, PotentialDeadlock};
pub use lockset::{LocksetDetector, LocksetWarning};
pub use muvi::{MuviDetector, MuviViolation};
pub use order::{OrderDetector, OrderViolation};
pub use report::{
    detect_all, detect_all_with_stats, DetectStats, DetectionSummary, DetectorKind, PassStats,
};
pub use util::ScanCounts;
