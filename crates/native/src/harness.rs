//! Manifestation-rate measurement under the real OS scheduler.
//!
//! The study's testing implication: naive stress testing rarely hits the
//! narrow buggy windows, so manifestation probability per run — not just
//! possibility — is the quantity that matters. [`stress`] runs a native
//! kernel many times and reports the observed rate, the native analogue
//! of `lfm_sim::RandomWalker`.
//!
//! Native kernels run on the real scheduler, so unlike the simulator
//! they can genuinely hang (a deadlock parks its threads forever) or
//! panic. The harness therefore also provides *containment*:
//! [`run_with_deadline`] executes a closure on a watchdog-supervised
//! thread and classifies the result as completed, timed out, or
//! panicked, and [`stress_with`] applies a per-trial timeout with a
//! bounded retry/backoff policy so one wedged trial cannot wedge a
//! whole campaign — the pause can be seeded decorrelated jitter
//! (see [`StressConfig::jitter`]) so retrying campaigns don't
//! re-synchronize into the very contention spike that spoiled the
//! trial. All timeouts pass through [`scaled`], which applies
//! the `LFM_TIMEOUT_SCALE` environment variable — slow CI runners set
//! it above `1.0` instead of patching constants.

use std::any::Any;
use std::fmt;
use std::sync::mpsc;
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::kernels::NativeOutcome;

/// Multiplier applied by [`scaled`], read once from `LFM_TIMEOUT_SCALE`.
/// Unset, unparsable, non-finite, or non-positive values mean `1.0`.
pub fn timeout_scale() -> f64 {
    static SCALE: OnceLock<f64> = OnceLock::new();
    *SCALE.get_or_init(|| {
        std::env::var("LFM_TIMEOUT_SCALE")
            .ok()
            .and_then(|raw| raw.trim().parse::<f64>().ok())
            .filter(|v| v.is_finite() && *v > 0.0)
            .unwrap_or(1.0)
    })
}

/// Scales a base timeout by [`timeout_scale`]. Every wait and watchdog
/// delay in this crate goes through here, so one environment variable
/// adapts the whole suite to a slow machine.
pub fn scaled(base: Duration) -> Duration {
    base.mul_f64(timeout_scale())
}

/// Renders a panic payload as text (panics carry `&str` or `String`
/// payloads in practice; anything else gets a placeholder).
pub fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// How one supervised execution ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrialResult<T> {
    /// The closure returned normally.
    Completed(T),
    /// The deadline elapsed first. The worker thread is *leaked* — it
    /// may be deadlocked, and a deadlocked thread cannot be cancelled.
    TimedOut,
    /// The closure panicked; the payload is rendered as text.
    Panicked(String),
}

impl<T> TrialResult<T> {
    /// The completed value, when there is one.
    pub fn completed(self) -> Option<T> {
        match self {
            TrialResult::Completed(v) => Some(v),
            _ => None,
        }
    }
}

/// Runs `f` on a dedicated thread and waits at most `deadline` for it.
///
/// This generalizes the ad-hoc ABBA watchdog: the worker reports its
/// result over a channel, a panic is caught and rendered instead of
/// propagated, and a missed deadline returns [`TrialResult::TimedOut`]
/// while the worker is leaked (parked threads cannot be reclaimed —
/// the cost of observing real deadlocks; call from short-lived
/// processes or accept the leak, exactly like the studied bugs).
pub fn run_with_deadline<T: Send + 'static>(
    deadline: Duration,
    f: impl FnOnce() -> T + Send + 'static,
) -> TrialResult<T> {
    let (tx, rx) = mpsc::channel();
    std::thread::spawn(move || {
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(f));
        let _ = tx.send(result);
    });
    match rx.recv_timeout(deadline) {
        Ok(Ok(value)) => TrialResult::Completed(value),
        Ok(Err(payload)) => TrialResult::Panicked(panic_message(payload.as_ref())),
        Err(_) => TrialResult::TimedOut,
    }
}

/// SplitMix64: the same tiny generator the simulator's fault plans use,
/// duplicated locally because this crate deliberately has no simulator
/// dependency.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Policy for a [`stress_with`] campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StressConfig {
    /// Independent trials to run.
    pub trials: usize,
    /// Watchdog deadline per trial; `None` runs trials inline (panics
    /// are still caught, but a hung trial hangs the campaign).
    pub per_trial_timeout: Option<Duration>,
    /// How many times a timed-out or panicked trial is re-attempted
    /// before being recorded as lost.
    pub retries: usize,
    /// Pause before each re-attempt (transient contention dissipates).
    /// With [`jitter`](StressConfig::jitter) set this is the *floor* of
    /// a decorrelated-jitter schedule instead of a fixed pause.
    pub backoff: Duration,
    /// Seed for decorrelated-jitter backoff; `None` keeps the fixed
    /// pause. Seeded campaigns are deterministic: the same seed yields
    /// the same delay sequence, so a flaky retry schedule can be
    /// replayed exactly.
    pub jitter_seed: Option<u64>,
    /// Upper bound on any single jittered pause.
    pub backoff_cap: Duration,
}

impl StressConfig {
    /// A plain campaign: no watchdog, no retries.
    pub fn new(trials: usize) -> StressConfig {
        StressConfig {
            trials,
            per_trial_timeout: None,
            retries: 0,
            backoff: Duration::from_millis(10),
            jitter_seed: None,
            backoff_cap: Duration::from_millis(250),
        }
    }

    /// Adds a per-trial watchdog deadline (scaled by the caller).
    pub fn per_trial_timeout(mut self, deadline: Duration) -> StressConfig {
        self.per_trial_timeout = Some(deadline);
        self
    }

    /// Adds a retry budget for timed-out or panicked trials.
    pub fn retries(mut self, retries: usize) -> StressConfig {
        self.retries = retries;
        self
    }

    /// Switches the retry pause to seeded decorrelated jitter. When
    /// many campaigns retry in lockstep (the usual cause: a shared
    /// machine-wide contention spike timing out every trial at once), a
    /// fixed pause re-synchronizes the herd; decorrelation spreads it.
    pub fn jitter(mut self, seed: u64) -> StressConfig {
        self.jitter_seed = Some(seed);
        self
    }

    /// Caps any single jittered pause.
    pub fn backoff_cap(mut self, cap: Duration) -> StressConfig {
        self.backoff_cap = cap;
        self
    }

    /// The pause before re-attempt `attempt` (1-based), given the
    /// previous pause. Unseeded, this is the fixed [`backoff`]; seeded,
    /// it is decorrelated jitter — uniform in
    /// `[backoff, 3 * prev)`, capped at [`backoff_cap`] — which keeps
    /// every delay within `[backoff, backoff_cap]` while growing the
    /// spread with each attempt.
    ///
    /// [`backoff`]: StressConfig::backoff
    /// [`backoff_cap`]: StressConfig::backoff_cap
    pub fn retry_delay(&self, attempt: usize, prev: Duration) -> Duration {
        let Some(seed) = self.jitter_seed else {
            return self.backoff;
        };
        let base = self.backoff.as_micros() as u64;
        let cap = self.backoff_cap.as_micros() as u64;
        let prev_us = (prev.as_micros() as u64).max(base);
        let span = prev_us.saturating_mul(3).saturating_sub(base).max(1);
        let draw = splitmix64(seed ^ ((attempt as u64) << 32) ^ prev_us);
        Duration::from_micros((base + draw % span).min(cap))
    }
}

/// Result of a stress campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct StressReport {
    /// Trials executed.
    pub trials: usize,
    /// Trials in which the bug manifested.
    pub manifested: usize,
    /// Wall-clock duration of the campaign in milliseconds.
    pub elapsed_ms: u128,
    /// Trials lost to the per-trial watchdog (after retries).
    pub timeouts: usize,
    /// Trials lost to a panic (after retries).
    pub panics: usize,
    /// Re-attempts spent on timed-out or panicked trials.
    pub retries: usize,
}

impl StressReport {
    /// Manifestation rate in `[0, 1]`, over the trials that completed.
    pub fn rate(&self) -> f64 {
        let completed = self.trials - self.timeouts - self.panics;
        if completed == 0 {
            0.0
        } else {
            self.manifested as f64 / completed as f64
        }
    }
}

impl fmt::Display for StressReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} trials manifested ({:.1}%) in {} ms",
            self.manifested,
            self.trials,
            100.0 * self.rate(),
            self.elapsed_ms
        )?;
        if self.timeouts > 0 {
            write!(f, ", {} timed out", self.timeouts)?;
        }
        if self.panics > 0 {
            write!(f, ", {} panicked", self.panics)?;
        }
        if self.retries > 0 {
            write!(f, ", {} retries", self.retries)?;
        }
        Ok(())
    }
}

/// Runs `kernel` for `trials` independent executions and measures the
/// manifestation rate. Panics inside the kernel are caught and counted,
/// never propagated into the campaign.
pub fn stress(trials: usize, kernel: impl FnMut() -> NativeOutcome) -> StressReport {
    stress_inline(&StressConfig::new(trials), kernel)
}

/// [`stress`] with an explicit policy: per-trial watchdog deadline and
/// bounded retry/backoff for trials that time out or panic.
///
/// The kernel closure must be `Clone + Send + 'static` when a per-trial
/// timeout is configured, because each supervised trial runs on its own
/// watchdog thread (and a timed-out trial's thread is leaked, taking
/// its clone of the closure with it).
pub fn stress_with(
    config: &StressConfig,
    kernel: impl Fn() -> NativeOutcome + Clone + Send + 'static,
) -> StressReport {
    let Some(deadline) = config.per_trial_timeout else {
        return stress_inline(config, kernel);
    };
    let start = Instant::now();
    let mut report = empty_report(config.trials);
    for _ in 0..config.trials {
        let mut last_failure = None;
        let mut prev_delay = config.backoff;
        for attempt in 0..=config.retries {
            if attempt > 0 {
                report.retries += 1;
                prev_delay = config.retry_delay(attempt, prev_delay);
                std::thread::sleep(prev_delay);
            }
            match run_with_deadline(deadline, kernel.clone()) {
                TrialResult::Completed(outcome) if outcome.panics.is_empty() => {
                    if outcome.manifested {
                        report.manifested += 1;
                    }
                    last_failure = None;
                    break;
                }
                // A worker panic inside the kernel spoils the trial
                // just like a harness-level panic.
                TrialResult::Completed(_) | TrialResult::Panicked(_) => {
                    last_failure = Some(true);
                }
                TrialResult::TimedOut => {
                    last_failure = Some(false);
                }
            }
        }
        match last_failure {
            Some(true) => report.panics += 1,
            Some(false) => report.timeouts += 1,
            None => {}
        }
    }
    report.elapsed_ms = start.elapsed().as_millis();
    report
}

/// The unsupervised campaign loop shared by [`stress`] and the
/// no-timeout path of [`stress_with`]: trials run on the caller's
/// thread, panics are caught and counted (with retry), hangs hang.
fn stress_inline(config: &StressConfig, mut kernel: impl FnMut() -> NativeOutcome) -> StressReport {
    let start = Instant::now();
    let mut report = empty_report(config.trials);
    for _ in 0..config.trials {
        let mut failed = false;
        let mut prev_delay = config.backoff;
        for attempt in 0..=config.retries {
            if attempt > 0 {
                report.retries += 1;
                prev_delay = config.retry_delay(attempt, prev_delay);
                std::thread::sleep(prev_delay);
            }
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&mut kernel)).ok();
            match outcome {
                Some(outcome) if outcome.panics.is_empty() => {
                    if outcome.manifested {
                        report.manifested += 1;
                    }
                    failed = false;
                    break;
                }
                _ => failed = true,
            }
        }
        if failed {
            report.panics += 1;
        }
    }
    report.elapsed_ms = start.elapsed().as_millis();
    report
}

fn empty_report(trials: usize) -> StressReport {
    StressReport {
        trials,
        manifested: 0,
        elapsed_ms: 0,
        timeouts: 0,
        panics: 0,
        retries: 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::{racy_counter, NativeOutcome};

    #[test]
    fn stress_counts_manifestations() {
        // A fixed kernel never manifests; rate is exactly zero.
        let report = stress(20, || racy_counter(2, 200, true));
        assert_eq!(report.trials, 20);
        assert_eq!(report.manifested, 0);
        assert_eq!(report.rate(), 0.0);
        assert_eq!(report.timeouts, 0);
        assert_eq!(report.panics, 0);
    }

    #[test]
    fn stress_display_mentions_rate() {
        let report = StressReport {
            trials: 10,
            manifested: 3,
            elapsed_ms: 5,
            timeouts: 0,
            panics: 0,
            retries: 0,
        };
        let s = report.to_string();
        assert!(s.contains("3/10"));
        assert!(s.contains("30.0%"));
        assert!(!s.contains("timed out"));
        assert!(!s.contains("panicked"));
    }

    #[test]
    fn stress_display_mentions_losses_when_present() {
        let report = StressReport {
            trials: 10,
            manifested: 3,
            elapsed_ms: 5,
            timeouts: 2,
            panics: 1,
            retries: 4,
        };
        let s = report.to_string();
        assert!(s.contains("2 timed out"));
        assert!(s.contains("1 panicked"));
        assert!(s.contains("4 retries"));
    }

    #[test]
    fn empty_campaign_has_zero_rate() {
        let report = stress(0, || racy_counter(2, 10, true));
        assert_eq!(report.rate(), 0.0);
    }

    #[test]
    fn run_with_deadline_completes_fast_work() {
        let result = run_with_deadline(Duration::from_secs(5), || 41 + 1);
        assert_eq!(result, TrialResult::Completed(42));
    }

    #[test]
    fn run_with_deadline_times_out_on_a_wedged_worker() {
        // The worker parks forever; the watchdog gives up and leaks it.
        let result = run_with_deadline(Duration::from_millis(50), || loop {
            std::thread::park();
        });
        assert_eq!(result, TrialResult::TimedOut);
    }

    #[test]
    fn run_with_deadline_renders_panics() {
        let result: TrialResult<()> =
            run_with_deadline(Duration::from_secs(5), || panic!("injected failure"));
        assert_eq!(result, TrialResult::Panicked("injected failure".to_owned()));
    }

    #[test]
    fn stress_with_contains_panicking_trials() {
        let config = StressConfig::new(5)
            .per_trial_timeout(Duration::from_secs(5))
            .retries(1);
        let report = stress_with(&config, || -> NativeOutcome { panic!("kernel exploded") });
        assert_eq!(report.trials, 5);
        assert_eq!(report.panics, 5);
        assert_eq!(report.retries, 5, "each lost trial retried once");
        assert_eq!(report.manifested, 0);
    }

    #[test]
    fn stress_with_times_out_wedged_trials_and_continues() {
        let config = StressConfig::new(3).per_trial_timeout(Duration::from_millis(30));
        let report = stress_with(&config, || -> NativeOutcome {
            loop {
                std::thread::park();
            }
        });
        assert_eq!(report.trials, 3);
        assert_eq!(report.timeouts, 3);
        assert_eq!(report.rate(), 0.0);
    }

    #[test]
    fn stress_catches_inline_panics() {
        // No timeout configured: the inline path still contains panics.
        let report = stress(4, || panic!("inline"));
        assert_eq!(report.trials, 4);
        assert_eq!(report.panics, 4);
    }

    #[test]
    fn worker_panic_reported_by_the_kernel_spoils_the_trial() {
        let config = StressConfig::new(2).per_trial_timeout(Duration::from_secs(5));
        let report = stress_with(&config, || NativeOutcome {
            manifested: true,
            observed: 0,
            panics: vec!["worker died".to_owned()],
        });
        assert_eq!(report.panics, 2);
        assert_eq!(report.manifested, 0, "a spoiled trial never counts");
    }

    #[test]
    fn unseeded_retry_delay_is_the_fixed_backoff() {
        let config = StressConfig::new(1).retries(3);
        let mut prev = config.backoff;
        for attempt in 1..=3 {
            prev = config.retry_delay(attempt, prev);
            assert_eq!(prev, config.backoff);
        }
    }

    #[test]
    fn jittered_retry_delay_is_deterministic_per_seed() {
        let config = StressConfig::new(1).retries(8).jitter(0xDECAF);
        let sequence = |config: &StressConfig| -> Vec<Duration> {
            let mut prev = config.backoff;
            (1..=8)
                .map(|attempt| {
                    prev = config.retry_delay(attempt, prev);
                    prev
                })
                .collect()
        };
        assert_eq!(sequence(&config), sequence(&config.clone()));
        let other = StressConfig::new(1).retries(8).jitter(0xC0FFEE);
        assert_ne!(
            sequence(&config),
            sequence(&other),
            "different seeds must decorrelate"
        );
    }

    #[test]
    fn jittered_retry_delay_stays_within_floor_and_cap() {
        let config = StressConfig::new(1)
            .retries(50)
            .jitter(7)
            .backoff_cap(Duration::from_millis(40));
        let mut prev = config.backoff;
        let mut saw_growth = false;
        for attempt in 1..=50 {
            prev = config.retry_delay(attempt, prev);
            assert!(
                prev >= config.backoff,
                "attempt {attempt}: {prev:?} under floor"
            );
            assert!(
                prev <= config.backoff_cap,
                "attempt {attempt}: {prev:?} over cap"
            );
            saw_growth |= prev > config.backoff;
        }
        assert!(saw_growth, "jitter never spread beyond the floor");
    }

    #[test]
    fn jittered_campaign_still_retries_and_contains_panics() {
        // End to end through stress_with: jitter changes the pauses,
        // never the accounting.
        let config = StressConfig::new(3)
            .per_trial_timeout(Duration::from_secs(5))
            .retries(1)
            .jitter(42)
            .backoff_cap(Duration::from_millis(5));
        let report = stress_with(&config, || -> NativeOutcome { panic!("kernel exploded") });
        assert_eq!(report.trials, 3);
        assert_eq!(report.panics, 3);
        assert_eq!(report.retries, 3);
    }

    #[test]
    fn timeout_scale_defaults_to_identity() {
        // The scale is read from the environment once; unless the
        // surrounding environment overrides it, scaling is the identity.
        if std::env::var("LFM_TIMEOUT_SCALE").is_err() {
            assert_eq!(
                scaled(Duration::from_millis(300)),
                Duration::from_millis(300)
            );
        }
    }
}
