//! Manifestation-rate measurement under the real OS scheduler.
//!
//! The study's testing implication: naive stress testing rarely hits the
//! narrow buggy windows, so manifestation probability per run — not just
//! possibility — is the quantity that matters. [`stress`] runs a native
//! kernel many times and reports the observed rate, the native analogue
//! of `lfm_sim::RandomWalker`.

use std::fmt;
use std::time::Instant;

use crate::kernels::NativeOutcome;

/// Result of a stress campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct StressReport {
    /// Trials executed.
    pub trials: usize,
    /// Trials in which the bug manifested.
    pub manifested: usize,
    /// Wall-clock duration of the campaign in milliseconds.
    pub elapsed_ms: u128,
}

impl StressReport {
    /// Manifestation rate in `[0, 1]`.
    pub fn rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.manifested as f64 / self.trials as f64
        }
    }
}

impl fmt::Display for StressReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} trials manifested ({:.1}%) in {} ms",
            self.manifested,
            self.trials,
            100.0 * self.rate(),
            self.elapsed_ms
        )
    }
}

/// Runs `kernel` for `trials` independent executions and measures the
/// manifestation rate.
pub fn stress(trials: usize, mut kernel: impl FnMut() -> NativeOutcome) -> StressReport {
    let start = Instant::now();
    let mut manifested = 0;
    for _ in 0..trials {
        if kernel().manifested {
            manifested += 1;
        }
    }
    StressReport {
        trials,
        manifested,
        elapsed_ms: start.elapsed().as_millis(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::racy_counter;

    #[test]
    fn stress_counts_manifestations() {
        // A fixed kernel never manifests; rate is exactly zero.
        let report = stress(20, || racy_counter(2, 200, true));
        assert_eq!(report.trials, 20);
        assert_eq!(report.manifested, 0);
        assert_eq!(report.rate(), 0.0);
    }

    #[test]
    fn stress_display_mentions_rate() {
        let report = StressReport {
            trials: 10,
            manifested: 3,
            elapsed_ms: 5,
        };
        let s = report.to_string();
        assert!(s.contains("3/10"));
        assert!(s.contains("30.0%"));
    }

    #[test]
    fn empty_campaign_has_zero_rate() {
        let report = stress(0, || racy_counter(2, 10, true));
        assert_eq!(report.rate(), 0.0);
    }
}
