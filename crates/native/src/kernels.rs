//! Native-thread counterparts of the studied bug shapes.
//!
//! All shared-memory "bugs" here are expressed through atomics whose
//! operations are deliberately *split* into separate load and store steps
//! — the data-flow of the original C bugs — so every program is safe Rust
//! with genuinely nondeterministic results, never undefined behaviour.

use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex};
use std::time::Duration;

use crate::harness::{self, panic_message, TrialResult};

/// Result of one native kernel run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NativeOutcome {
    /// Whether the bug manifested in this run.
    pub manifested: bool,
    /// A kernel-specific observed value (final counter, balance, …).
    pub observed: i64,
    /// Rendered payloads of worker panics, if any. Non-empty means the
    /// run is *spoiled*: `manifested`/`observed` describe a partial
    /// execution and must not be counted as evidence either way.
    pub panics: Vec<String>,
}

impl NativeOutcome {
    fn new(manifested: bool, observed: i64) -> NativeOutcome {
        NativeOutcome {
            manifested,
            observed,
            panics: Vec::new(),
        }
    }
}

/// Collects a crossbeam scope result into the panic list instead of
/// propagating it — the caller's outcome records the spoiled run.
fn absorb_scope_panic<T>(
    result: Result<T, Box<dyn std::any::Any + Send + 'static>>,
    panics: &mut Vec<String>,
) {
    if let Err(payload) = result {
        panics.push(panic_message(payload.as_ref()));
    }
}

/// The racy counter: each thread performs `iters` increments. Buggy:
/// separate load and store (lost updates). Fixed: `fetch_add`.
pub fn racy_counter(threads: usize, iters: usize, fixed: bool) -> NativeOutcome {
    let counter = AtomicI64::new(0);
    let barrier = Barrier::new(threads);
    let mut panics = Vec::new();
    let scope_result = crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| {
                barrier.wait();
                for i in 0..iters {
                    // ConTest-style noise injection: an occasional yield
                    // placed in (or, for the fixed variant, next to) the
                    // window makes manifestation scheduler-independent —
                    // essential on single-core runners where a tight
                    // loop rarely gets preempted mid-window.
                    if fixed {
                        if i % 64 == 0 {
                            std::thread::yield_now();
                        }
                        counter.fetch_add(1, Ordering::Relaxed);
                    } else {
                        // The studied pattern: load, compute, store.
                        let v = counter.load(Ordering::Relaxed);
                        if i % 64 == 0 {
                            std::thread::yield_now();
                        }
                        counter.store(v + 1, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    absorb_scope_panic(scope_result, &mut panics);
    let expected = (threads * iters) as i64;
    let observed = counter.load(Ordering::Relaxed);
    NativeOutcome {
        manifested: observed != expected,
        observed,
        panics,
    }
}

/// Check-then-act withdrawal: `threads` workers repeatedly withdraw 70
/// from a balance topped up between rounds. Buggy: check and debit are
/// separate operations. Fixed: a CAS loop re-validates.
pub fn bank_withdraw(threads: usize, rounds: usize, fixed: bool) -> NativeOutcome {
    let overdrafts = AtomicI64::new(0);
    let mut panics = Vec::new();
    for _ in 0..rounds {
        let balance = AtomicI64::new(100);
        let barrier = Barrier::new(threads);
        let scope_result = crossbeam::thread::scope(|s| {
            for _ in 0..threads {
                s.spawn(|_| {
                    barrier.wait();
                    if fixed {
                        loop {
                            let bal = balance.load(Ordering::SeqCst);
                            if bal < 70 {
                                break;
                            }
                            if balance
                                .compare_exchange(bal, bal - 70, Ordering::SeqCst, Ordering::SeqCst)
                                .is_ok()
                            {
                                break;
                            }
                        }
                    } else {
                        // The studied window: check, then blind debit.
                        let bal = balance.load(Ordering::SeqCst);
                        if bal >= 70 {
                            std::thread::yield_now(); // noise in the window
                            balance.fetch_sub(70, Ordering::SeqCst);
                        }
                    }
                });
            }
        });
        absorb_scope_panic(scope_result, &mut panics);
        if balance.load(Ordering::SeqCst) < 0 {
            overdrafts.fetch_add(1, Ordering::Relaxed);
        }
    }
    let observed = overdrafts.load(Ordering::Relaxed);
    NativeOutcome {
        manifested: observed > 0,
        observed,
        panics,
    }
}

/// Publish-before-init: the publisher raises `ready` before storing
/// `data` (buggy order) or after (fixed). The consumer polls `ready` and
/// then reads `data`; observing zero data under a raised flag is the
/// manifestation. Release/Acquire ordering is used so the *only* bug is
/// the statement order — exactly the studied class.
pub fn publish_before_init(rounds: usize, fixed: bool) -> NativeOutcome {
    let mut manifested = 0i64;
    let mut panics = Vec::new();
    for _ in 0..rounds {
        let data = AtomicI64::new(0);
        let ready = AtomicBool::new(false);
        let scope_result = crossbeam::thread::scope(|s| {
            s.spawn(|_| {
                if fixed {
                    data.store(7, Ordering::Release);
                    ready.store(true, Ordering::Release);
                } else {
                    ready.store(true, Ordering::Release);
                    data.store(7, Ordering::Release);
                }
            });
            let observed = s
                .spawn(|_| {
                    // Bounded poll so a slow publisher cannot hang us.
                    for _ in 0..100_000 {
                        if ready.load(Ordering::Acquire) {
                            return Some(data.load(Ordering::Acquire));
                        }
                        std::hint::spin_loop();
                    }
                    None
                })
                .join();
            match observed {
                Ok(Some(0)) => manifested += 1,
                Ok(_) => {}
                Err(payload) => panics.push(panic_message(payload.as_ref())),
            }
        });
        absorb_scope_panic(scope_result, &mut panics);
    }
    NativeOutcome {
        manifested: manifested > 0,
        observed: manifested,
        panics,
    }
}

/// Missed signal: the waiter waits on a condvar. Buggy: no predicate, so
/// a signal delivered before the wait is lost and the waiter times out.
/// Fixed: predicate loop over a flag.
pub fn missed_signal(fixed: bool, signaller_first: bool) -> NativeOutcome {
    // All delays scale with LFM_TIMEOUT_SCALE (see `harness::scaled`):
    // the hand-off nudge and the bounded wait that stands in for the
    // hang. Slow CI runners raise the scale instead of patching these.
    let nudge = harness::scaled(Duration::from_millis(20));
    let hang_budget = harness::scaled(Duration::from_millis(300));
    let pair = Arc::new((Mutex::new(false), Condvar::new()));
    let pair2 = Arc::clone(&pair);
    let signaller = std::thread::spawn(move || {
        let (lock, cvar) = &*pair2;
        if !signaller_first {
            std::thread::sleep(nudge);
        }
        let mut flag = lock.lock().expect("no poison");
        *flag = true;
        cvar.notify_one();
    });
    let (lock, cvar) = &*pair;
    if signaller_first {
        std::thread::sleep(nudge);
    }
    let timed_out = {
        let guard = lock.lock().expect("no poison");
        if fixed {
            let (_g, res) = cvar
                .wait_timeout_while(guard, hang_budget, |set| !*set)
                .expect("no poison");
            res.timed_out()
        } else {
            // Buggy: waits unconditionally, even if the flag is already
            // set — the lost-wakeup shape. The bounded wait stands in
            // for the hang the unconditional wait would be.
            let (_g, res) = cvar.wait_timeout(guard, hang_budget).expect("no poison");
            res.timed_out()
        }
    };
    let mut panics = Vec::new();
    if let Err(payload) = signaller.join() {
        panics.push(panic_message(payload.as_ref()));
    }
    NativeOutcome {
        manifested: timed_out,
        observed: i64::from(timed_out),
        panics,
    }
}

/// ABBA deadlock with a watchdog. Buggy: the two threads take the locks
/// in opposite orders, aligned by a barrier and widened by a short
/// sleep, which deadlocks essentially always; the watchdog detects it by
/// timeout. Fixed: a global acquisition order.
///
/// On manifestation the two deadlocked threads are *leaked* (parked
/// forever on the locks) — a deadlock cannot be recovered from, exactly
/// like the studied bugs; call this from short-lived processes or accept
/// two parked threads.
pub fn abba_deadlock(fixed: bool) -> NativeOutcome {
    // The generalized watchdog (`harness::run_with_deadline`) supervises
    // the whole two-thread dance; on deadlock it gives up after a scaled
    // second and the supervisor plus both workers are leaked.
    let hold = harness::scaled(Duration::from_millis(10));
    let watchdog = harness::scaled(Duration::from_millis(1_000));
    let result = harness::run_with_deadline(watchdog, move || {
        let m1 = Arc::new(Mutex::new(0i64));
        let m2 = Arc::new(Mutex::new(0i64));
        let barrier = Arc::new(Barrier::new(2));
        let workers: Vec<_> = [false, true]
            .into_iter()
            .map(|flip| {
                let m1 = Arc::clone(&m1);
                let m2 = Arc::clone(&m2);
                let barrier = Arc::clone(&barrier);
                std::thread::spawn(move || {
                    let (first, second) = if fixed || !flip {
                        (&m1, &m2)
                    } else {
                        (&m2, &m1)
                    };
                    barrier.wait();
                    let mut a = first.lock().expect("no poison");
                    std::thread::sleep(hold);
                    let mut b = second.lock().expect("no poison");
                    *a += 1;
                    *b += 1;
                })
            })
            .collect();
        let mut completed = 0i64;
        for worker in workers {
            // A deadlocked worker never finishes: the join blocks until
            // the supervisor's deadline fires and abandons all of us.
            if worker.join().is_ok() {
                completed += 1;
            }
        }
        completed
    });
    match result {
        TrialResult::Completed(completed) => NativeOutcome::new(completed < 2, completed),
        TrialResult::TimedOut => NativeOutcome::new(true, 0),
        TrialResult::Panicked(message) => NativeOutcome {
            manifested: false,
            observed: 0,
            panics: vec![message],
        },
    }
}

/// The multi-variable pair invariant natively: a writer bumps two
/// atomics; a checker samples both. Buggy: two separate `fetch_add`s
/// (each atomic!) — the pair still tears. Fixed: both updates under one
/// mutex (checker too).
pub fn pair_invariant(updates: usize, fixed: bool) -> NativeOutcome {
    let a = AtomicI64::new(0);
    let b = AtomicI64::new(0);
    let guard = Mutex::new(());
    let torn = AtomicI64::new(0);
    let done = AtomicBool::new(false);
    let mut panics = Vec::new();
    let scope_result = crossbeam::thread::scope(|s| {
        s.spawn(|_| {
            for _ in 0..updates {
                if fixed {
                    let _g = guard.lock().expect("no poison");
                    a.fetch_add(1, Ordering::SeqCst);
                    b.fetch_add(1, Ordering::SeqCst);
                } else {
                    a.fetch_add(1, Ordering::SeqCst);
                    b.fetch_add(1, Ordering::SeqCst);
                }
            }
            done.store(true, Ordering::SeqCst);
        });
        s.spawn(|_| {
            while !done.load(Ordering::SeqCst) {
                let (x, y) = if fixed {
                    let _g = guard.lock().expect("no poison");
                    (a.load(Ordering::SeqCst), b.load(Ordering::SeqCst))
                } else {
                    (a.load(Ordering::SeqCst), b.load(Ordering::SeqCst))
                };
                if x != y {
                    torn.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
    });
    absorb_scope_panic(scope_result, &mut panics);
    let observed = torn.load(Ordering::Relaxed);
    NativeOutcome {
        manifested: observed > 0,
        observed,
        panics,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_counter_is_exact() {
        let out = racy_counter(4, 2_000, true);
        assert!(!out.manifested);
        assert_eq!(out.observed, 8_000);
    }

    #[test]
    fn buggy_counter_loses_updates_under_contention() {
        // 4 threads x 20k split increments: lost updates are effectively
        // certain on any multicore machine; retry a few times to be
        // robust on a single-core runner.
        for attempt in 0..5 {
            let out = racy_counter(4, 20_000, false);
            if out.manifested {
                assert!(out.observed < 80_000);
                return;
            }
            eprintln!("attempt {attempt}: no loss observed, retrying");
        }
        panic!("the split-increment race never manifested in 5 attempts");
    }

    #[test]
    fn fixed_bank_never_overdrafts() {
        let out = bank_withdraw(4, 200, true);
        assert!(!out.manifested, "CAS loop overdrafted: {:?}", out);
    }

    #[test]
    fn fixed_publish_order_is_clean() {
        let out = publish_before_init(300, true);
        assert!(!out.manifested, "release-publish leaked zeros: {:?}", out);
    }

    #[test]
    fn missed_signal_fixed_never_times_out() {
        for signaller_first in [false, true] {
            let out = missed_signal(true, signaller_first);
            assert!(
                !out.manifested,
                "predicate wait timed out (signaller_first={signaller_first})"
            );
        }
    }

    #[test]
    fn missed_signal_buggy_hangs_when_signal_comes_first() {
        let out = missed_signal(false, true);
        assert!(out.manifested, "lost wakeup should time the waiter out");
    }

    #[test]
    fn abba_ordered_acquisition_always_completes() {
        let out = abba_deadlock(true);
        assert!(!out.manifested);
        assert_eq!(out.observed, 2);
    }

    #[test]
    fn abba_opposite_orders_deadlock() {
        // Barrier + 10ms hold makes the cycle essentially certain.
        let out = abba_deadlock(false);
        assert!(out.manifested, "ABBA did not deadlock");
    }

    #[test]
    fn pair_invariant_fixed_never_tears() {
        let out = pair_invariant(20_000, true);
        assert!(!out.manifested, "locked pair tore {} times", out.observed);
    }
}

/// Double-checked lazy initialization: `threads` racers each run
/// `if (!initialized) { initialized = true; init_count += 1 }`. Buggy:
/// the manual flag. Fixed: `std::sync::Once`, the canonical repair.
pub fn double_check_init(threads: usize, fixed: bool) -> NativeOutcome {
    use std::sync::Once;
    let initialized = AtomicBool::new(false);
    let init_count = AtomicI64::new(0);
    let once = Once::new();
    let barrier = Barrier::new(threads);
    let mut panics = Vec::new();
    let scope_result = crossbeam::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|_| {
                barrier.wait();
                if fixed {
                    once.call_once(|| {
                        init_count.fetch_add(1, Ordering::SeqCst);
                    });
                } else {
                    // The studied window: check, then (after a yield,
                    // maximizing overlap) initialize.
                    if !initialized.load(Ordering::SeqCst) {
                        std::thread::yield_now();
                        initialized.store(true, Ordering::SeqCst);
                        init_count.fetch_add(1, Ordering::SeqCst);
                    }
                }
            });
        }
    });
    absorb_scope_panic(scope_result, &mut panics);
    let observed = init_count.load(Ordering::SeqCst);
    NativeOutcome {
        manifested: observed != 1,
        observed,
        panics,
    }
}

/// Use-before-init: the consumer thread reads a field the producer sets.
/// Buggy: no ordering at all (bounded poll observes the initial zero).
/// Fixed: the consumer is only started after the producer is joined.
pub fn use_before_init(rounds: usize, fixed: bool) -> NativeOutcome {
    let mut premature = 0i64;
    let mut panics = Vec::new();
    for _ in 0..rounds {
        let field = AtomicI64::new(0);
        let scope_result = if fixed {
            // Initialize-then-spawn: the happens-before edge is the join.
            crossbeam::thread::scope(|s| {
                if let Err(payload) = s.spawn(|_| field.store(42, Ordering::SeqCst)).join() {
                    panics.push(panic_message(payload.as_ref()));
                    return;
                }
                match s.spawn(|_| field.load(Ordering::SeqCst)).join() {
                    Ok(0) => premature += 1,
                    Ok(_) => {}
                    Err(payload) => panics.push(panic_message(payload.as_ref())),
                }
            })
        } else {
            crossbeam::thread::scope(|s| {
                s.spawn(|_| {
                    std::thread::yield_now();
                    field.store(42, Ordering::SeqCst);
                });
                match s.spawn(|_| field.load(Ordering::SeqCst)).join() {
                    Ok(0) => premature += 1,
                    Ok(_) => {}
                    Err(payload) => panics.push(panic_message(payload.as_ref())),
                }
            })
        };
        absorb_scope_panic(scope_result, &mut panics);
    }
    NativeOutcome {
        manifested: premature > 0,
        observed: premature,
        panics,
    }
}

/// A kernel whose worker always panics — the injection target for
/// panic-containment tests in the harness and the study pipeline. The
/// panic is absorbed into [`NativeOutcome::panics`] (or, with the plain
/// `std` scope, propagates to the caller's `catch_unwind`); it never
/// takes down an unprotected campaign.
pub fn panicking_kernel() -> NativeOutcome {
    let mut panics = Vec::new();
    let scope_result = crossbeam::thread::scope(|s| {
        s.spawn(|_| panic!("injected kernel panic"));
    });
    absorb_scope_panic(scope_result, &mut panics);
    NativeOutcome {
        manifested: false,
        observed: 0,
        panics,
    }
}

#[cfg(test)]
mod more_tests {
    use super::*;

    #[test]
    fn once_initializes_exactly_once() {
        for _ in 0..20 {
            let out = double_check_init(4, true);
            assert!(!out.manifested, "Once ran {} times", out.observed);
        }
    }

    #[test]
    fn manual_flag_can_double_initialize() {
        // With 4 threads yielding inside the window, double init is
        // essentially certain across 50 attempts even on one core.
        for _ in 0..50 {
            let out = double_check_init(4, false);
            if out.manifested {
                assert!(out.observed >= 2);
                return;
            }
        }
        panic!("manual double-checked init never double-initialized");
    }

    #[test]
    fn panicking_kernel_reports_its_panic() {
        let out = panicking_kernel();
        assert!(!out.manifested);
        assert_eq!(out.panics.len(), 1, "worker panic is absorbed: {out:?}");
        assert!(out.panics[0].contains("injected"));
    }

    #[test]
    fn join_ordered_init_is_never_premature() {
        let out = use_before_init(200, true);
        assert!(!out.manifested, "join-ordered init read zero: {:?}", out);
    }

    #[test]
    fn unordered_init_reads_zero_sometimes() {
        let out = use_before_init(300, false);
        assert!(
            out.manifested,
            "300 unordered rounds never saw the uninitialized value"
        );
    }
}
