//! # lfm-native — the bug kernels on real threads
//!
//! The `lfm-sim` model checker proves the kernels' manifestation
//! properties over *all* interleavings. This crate closes the loop on
//! real hardware: the same bug shapes written against `std`/`crossbeam`
//! primitives, using only safe Rust (atomics with separate load/store
//! steps reproduce the studied non-atomic access patterns without
//! undefined behaviour), plus a [`harness`] that measures manifestation
//! rates under the OS scheduler — the "stress testing rarely hits the
//! window" observation that motivates the study's testing implications.
//!
//! Each kernel exposes a buggy and a fixed run; the fixed runs are
//! deterministic assertions, the buggy runs report whether the bug
//! manifested so callers can measure rates instead of flaking.
//!
//! # Example
//!
//! ```rust
//! use lfm_native::kernels::racy_counter;
//!
//! // The fixed version (fetch_add) is exact under any schedule.
//! let outcome = racy_counter(4, 1_000, true);
//! assert!(!outcome.manifested);
//! assert_eq!(outcome.observed, 4_000);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod harness;
pub mod kernels;

pub use harness::{
    run_with_deadline, scaled, stress, stress_with, timeout_scale, StressConfig, StressReport,
    TrialResult,
};
pub use kernels::NativeOutcome;
