//! OpenMetrics / Prometheus text exposition, std-only.
//!
//! A [`Registry`] collects metric families (counters, gauges, and
//! histograms built from [`HistogramSnapshot`]s) and renders them in
//! the [OpenMetrics text format](https://prometheus.io/docs/specs/om/open_metrics_spec/):
//! `# HELP`/`# TYPE` metadata, `_total`-suffixed counter samples,
//! `_bucket{le=...}`/`_sum`/`_count` histogram series, and a
//! terminating `# EOF`. The CLI writes one exposition per run behind
//! `--metrics <path>`; the future `lfm serve` layer will serve the
//! same bytes over HTTP for scraping.
//!
//! [`check_exposition`] is a line-format validator used by the unit
//! tests and the CI smoke job, so "the output parses" is asserted by
//! code rather than eyeballs.

use std::io::{self, Write};
use std::path::Path;

use crate::histogram::HistogramSnapshot;

/// The kind of a metric family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count; rendered with a `_total` suffix.
    Counter,
    /// Point-in-time value.
    Gauge,
    /// Distribution rendered as cumulative `le` buckets + sum + count.
    Histogram,
}

impl MetricKind {
    fn name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
enum SampleValue {
    U64(u64),
    F64(f64),
    Histogram(Vec<(u64, u64)>, u64, u64),
}

#[derive(Debug, Clone)]
struct Sample {
    labels: Vec<(String, String)>,
    value: SampleValue,
}

#[derive(Debug, Clone)]
struct Family {
    name: String,
    kind: MetricKind,
    help: String,
    samples: Vec<Sample>,
}

/// A collection of metric families rendered as one text exposition.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    families: Vec<Family>,
}

fn valid_metric_name(name: &str) -> bool {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn escape_label_value(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn format_f64(v: f64) -> String {
    if !v.is_finite() {
        // Non-finite values have no place in a scrape; render 0.
        return "0".to_owned();
    }
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn family(&mut self, name: &str, kind: MetricKind, help: &str) -> &mut Family {
        debug_assert!(valid_metric_name(name), "bad metric name {name:?}");
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            debug_assert!(
                self.families[i].kind == kind,
                "metric {name} re-registered with a different kind"
            );
            &mut self.families[i]
        } else {
            self.families.push(Family {
                name: name.to_owned(),
                kind,
                help: help.to_owned(),
                samples: Vec::new(),
            });
            self.families.last_mut().expect("just pushed")
        }
    }

    /// Registers an unlabeled counter sample.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.counter_with(name, help, &[], value);
    }

    /// Registers a counter sample with labels.
    pub fn counter_with(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: u64) {
        self.family(name, MetricKind::Counter, help)
            .samples
            .push(Sample {
                labels: labels
                    .iter()
                    .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                    .collect(),
                value: SampleValue::U64(value),
            });
    }

    /// Registers an unlabeled gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.gauge_with(name, help, &[], value);
    }

    /// Registers a gauge sample with labels.
    pub fn gauge_with(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.family(name, MetricKind::Gauge, help)
            .samples
            .push(Sample {
                labels: labels
                    .iter()
                    .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                    .collect(),
                value: SampleValue::F64(value),
            });
    }

    /// Registers a histogram from a snapshot (cumulative `le` buckets,
    /// `_sum`, `_count`), with labels.
    pub fn histogram_with(
        &mut self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        snap: &HistogramSnapshot,
    ) {
        self.family(name, MetricKind::Histogram, help)
            .samples
            .push(Sample {
                labels: labels
                    .iter()
                    .map(|(k, v)| ((*k).to_owned(), (*v).to_owned()))
                    .collect(),
                value: SampleValue::Histogram(snap.cumulative_buckets(), snap.sum, snap.count),
            });
    }

    /// Registers an unlabeled histogram from a snapshot.
    pub fn histogram(&mut self, name: &str, help: &str, snap: &HistogramSnapshot) {
        self.histogram_with(name, help, &[], snap);
    }

    /// `true` when no families are registered.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Renders the full text exposition, ending in `# EOF`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for family in &self.families {
            out.push_str(&format!("# HELP {} {}\n", family.name, family.help));
            out.push_str(&format!("# TYPE {} {}\n", family.name, family.kind.name()));
            for sample in &family.samples {
                match &sample.value {
                    SampleValue::U64(v) => {
                        // Counter samples carry the `_total` suffix.
                        let suffix = match family.kind {
                            MetricKind::Counter => "_total",
                            _ => "",
                        };
                        out.push_str(&render_sample(
                            &family.name,
                            suffix,
                            &sample.labels,
                            None,
                            &v.to_string(),
                        ));
                    }
                    SampleValue::F64(v) => {
                        out.push_str(&render_sample(
                            &family.name,
                            "",
                            &sample.labels,
                            None,
                            &format_f64(*v),
                        ));
                    }
                    SampleValue::Histogram(cum, sum, count) => {
                        for (upper, le_count) in cum {
                            out.push_str(&render_sample(
                                &family.name,
                                "_bucket",
                                &sample.labels,
                                Some(&upper.to_string()),
                                &le_count.to_string(),
                            ));
                        }
                        out.push_str(&render_sample(
                            &family.name,
                            "_bucket",
                            &sample.labels,
                            Some("+Inf"),
                            &count.to_string(),
                        ));
                        out.push_str(&render_sample(
                            &family.name,
                            "_sum",
                            &sample.labels,
                            None,
                            &sum.to_string(),
                        ));
                        out.push_str(&render_sample(
                            &family.name,
                            "_count",
                            &sample.labels,
                            None,
                            &count.to_string(),
                        ));
                    }
                }
            }
        }
        out.push_str("# EOF\n");
        out
    }

    /// Writes the exposition to a file at `path` (truncating).
    ///
    /// # Errors
    ///
    /// Propagates file creation and write failures.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.render().as_bytes())
    }
}

fn render_sample(
    name: &str,
    suffix: &str,
    labels: &[(String, String)],
    le: Option<&str>,
    value: &str,
) -> String {
    let mut line = format!("{name}{suffix}");
    let has_labels = !labels.is_empty() || le.is_some();
    if has_labels {
        line.push('{');
        let mut first = true;
        for (k, v) in labels {
            if !first {
                line.push(',');
            }
            first = false;
            line.push_str(&format!("{k}=\"{}\"", escape_label_value(v)));
        }
        if let Some(le) = le {
            if !first {
                line.push(',');
            }
            line.push_str(&format!("le=\"{le}\""));
        }
        line.push('}');
    }
    line.push(' ');
    line.push_str(value);
    line.push('\n');
    line
}

/// Validates an exposition's line format; returns the number of sample
/// lines on success.
///
/// Checks: every `#` line is a well-formed `HELP`/`TYPE`/`EOF` record;
/// every sample line is `name[{labels}] value` with a valid metric
/// name, balanced quoted labels, and a parseable value; every sample's
/// base name was `TYPE`-declared first; the exposition ends with
/// `# EOF` and nothing after it.
///
/// # Errors
///
/// Returns a message naming the first offending line.
pub fn check_exposition(text: &str) -> Result<usize, String> {
    let lines: Vec<&str> = text.lines().collect();
    if lines.last() != Some(&"# EOF") {
        return Err("exposition must end with '# EOF'".to_owned());
    }
    let mut declared: Vec<(String, &str)> = Vec::new();
    let mut samples = 0usize;
    for (i, line) in lines[..lines.len() - 1].iter().enumerate() {
        let err = |msg: &str| Err(format!("line {}: {msg}: {line:?}", i + 1));
        if line.is_empty() {
            return err("empty line");
        }
        if let Some(rest) = line.strip_prefix("# ") {
            let mut parts = rest.splitn(3, ' ');
            match parts.next() {
                Some("HELP") => {
                    let name = parts.next().unwrap_or("");
                    if !valid_metric_name(name) {
                        return err("HELP with invalid metric name");
                    }
                    match parts.next() {
                        Some(text) if !text.is_empty() => {}
                        _ => return err("HELP without text"),
                    }
                }
                Some("TYPE") => {
                    let name = parts.next().unwrap_or("");
                    if !valid_metric_name(name) {
                        return err("TYPE with invalid metric name");
                    }
                    match parts.next() {
                        Some(kind @ ("counter" | "gauge" | "histogram")) => {
                            declared.push((name.to_owned(), kind));
                        }
                        _ => return err("TYPE with unknown kind"),
                    }
                }
                Some("EOF") => return err("'# EOF' before the last line"),
                _ => return err("unknown comment record"),
            }
            continue;
        }
        // Sample line: name[{labels}] value
        let name_end = line
            .find(['{', ' '])
            .ok_or_else(|| format!("line {}: sample without value: {line:?}", i + 1))?;
        let name = &line[..name_end];
        if !valid_metric_name(name) {
            return err("sample with invalid metric name");
        }
        let base_ok = declared.iter().any(|(declared_name, kind)| {
            if name == declared_name.as_str() {
                return matches!(*kind, "gauge" | "counter");
            }
            match name.strip_prefix(declared_name.as_str()) {
                Some("_total") => *kind == "counter",
                Some("_bucket") | Some("_sum") | Some("_count") => *kind == "histogram",
                _ => false,
            }
        });
        if !base_ok {
            return err("sample without a preceding TYPE declaration");
        }
        let rest = &line[name_end..];
        let value_str = if let Some(labels_rest) = rest.strip_prefix('{') {
            let close = find_label_close(labels_rest)
                .ok_or_else(|| format!("line {}: unterminated labels: {line:?}", i + 1))?;
            let labels = &labels_rest[..close];
            check_labels(labels).map_err(|msg| format!("line {}: {msg}: {line:?}", i + 1))?;
            labels_rest[close + 1..].trim_start()
        } else {
            rest.trim_start()
        };
        let numeric_ok =
            value_str == "+Inf" || value_str == "-Inf" || value_str.parse::<f64>().is_ok();
        if value_str.is_empty() || !numeric_ok {
            return err("sample with unparseable value");
        }
        samples += 1;
    }
    Ok(samples)
}

/// Finds the index of the closing `}` of a label set, honoring quoted
/// strings and backslash escapes.
fn find_label_close(s: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

/// Validates `k="v",k="v"` label syntax.
fn check_labels(labels: &str) -> Result<(), String> {
    if labels.is_empty() {
        return Ok(());
    }
    let mut rest = labels;
    loop {
        let eq = rest
            .find('=')
            .ok_or_else(|| "label without '='".to_owned())?;
        let key = &rest[..eq];
        if key.is_empty()
            || !key
                .chars()
                .enumerate()
                .all(|(i, c)| c == '_' || c.is_ascii_alphabetic() || (i > 0 && c.is_ascii_digit()))
        {
            return Err(format!("invalid label name {key:?}"));
        }
        rest = rest[eq + 1..]
            .strip_prefix('"')
            .ok_or_else(|| "label value not quoted".to_owned())?;
        // Scan past the escaped string body.
        let mut escaped = false;
        let mut end = None;
        for (i, c) in rest.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    end = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let end = end.ok_or_else(|| "unterminated label value".to_owned())?;
        rest = &rest[end + 1..];
        if rest.is_empty() {
            return Ok(());
        }
        rest = rest
            .strip_prefix(',')
            .ok_or_else(|| "labels not comma-separated".to_owned())?;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::histogram::Histogram;

    #[test]
    fn renders_counters_gauges_and_eof() {
        let mut r = Registry::new();
        r.counter("lfm_schedules", "Schedules explored.", 1234);
        r.counter_with(
            "lfm_outcomes",
            "Outcomes by class.",
            &[("outcome", "ok")],
            1200,
        );
        r.counter_with(
            "lfm_outcomes",
            "Outcomes by class.",
            &[("outcome", "failed")],
            34,
        );
        r.gauge("lfm_states_per_sec", "Throughput.", 48_300.5);
        let text = r.render();
        assert!(text.contains("# TYPE lfm_schedules counter\n"), "{text}");
        assert!(text.contains("lfm_schedules_total 1234\n"), "{text}");
        assert!(
            text.contains("lfm_outcomes_total{outcome=\"ok\"} 1200\n"),
            "{text}"
        );
        assert!(text.contains("# TYPE lfm_states_per_sec gauge\n"), "{text}");
        assert!(text.contains("lfm_states_per_sec 48300.5\n"), "{text}");
        assert!(text.ends_with("# EOF\n"), "{text}");
        // One TYPE per family even with several samples.
        assert_eq!(text.matches("# TYPE lfm_outcomes counter").count(), 1);
        assert_eq!(check_exposition(&text), Ok(4));
    }

    #[test]
    fn renders_histograms_with_cumulative_buckets() {
        let h = Histogram::new();
        for v in [1, 2, 3, 8] {
            h.record(v);
        }
        let mut r = Registry::new();
        r.histogram("lfm_depth", "Schedule depth.", &h.snapshot());
        let text = r.render();
        assert!(text.contains("# TYPE lfm_depth histogram\n"), "{text}");
        assert!(text.contains("lfm_depth_bucket{le=\"1\"} 1\n"), "{text}");
        assert!(text.contains("lfm_depth_bucket{le=\"3\"} 3\n"), "{text}");
        assert!(text.contains("lfm_depth_bucket{le=\"+Inf\"} 4\n"), "{text}");
        assert!(text.contains("lfm_depth_sum 14\n"), "{text}");
        assert!(text.contains("lfm_depth_count 4\n"), "{text}");
        assert!(check_exposition(&text).unwrap() > 4);
    }

    #[test]
    fn escapes_label_values() {
        let mut r = Registry::new();
        r.gauge_with(
            "lfm_kernel_info",
            "Kernel metadata.",
            &[("kernel", "a\"b\\c\nd")],
            1.0,
        );
        let text = r.render();
        assert!(
            text.contains("lfm_kernel_info{kernel=\"a\\\"b\\\\c\\nd\"} 1\n"),
            "{text}"
        );
        assert_eq!(check_exposition(&text), Ok(1));
    }

    #[test]
    fn non_finite_gauges_render_zero() {
        let mut r = Registry::new();
        r.gauge("lfm_bad", "A non-finite value.", f64::NAN);
        let text = r.render();
        assert!(text.contains("lfm_bad 0\n"), "{text}");
        assert!(check_exposition(&text).is_ok());
    }

    #[test]
    fn empty_registry_is_just_eof() {
        let r = Registry::new();
        assert!(r.is_empty());
        assert_eq!(r.render(), "# EOF\n");
        assert_eq!(check_exposition(&r.render()), Ok(0));
    }

    #[test]
    fn checker_rejects_malformed_expositions() {
        // Missing EOF.
        assert!(check_exposition("a 1\n").is_err());
        // Sample without a TYPE declaration.
        assert!(check_exposition("a 1\n# EOF\n").is_err());
        // Unknown TYPE kind.
        assert!(check_exposition("# TYPE a summary\n# EOF\n").is_err());
        // HELP without text.
        assert!(check_exposition("# HELP a\n# EOF\n").is_err());
        // Unparseable sample value.
        assert!(check_exposition("# TYPE a gauge\na xyz\n# EOF\n").is_err());
        // Counter sample missing its _total suffix... is permitted as a
        // bare name only for gauges; histograms need a suffix.
        assert!(check_exposition("# TYPE a histogram\na 1\n# EOF\n").is_err());
        // Unterminated label value.
        assert!(check_exposition("# TYPE a gauge\na{k=\"v} 1\n# EOF\n").is_err());
        // Invalid metric name.
        assert!(check_exposition("# TYPE 9a gauge\n# EOF\n").is_err());
        // Valid minimal exposition.
        assert_eq!(
            check_exposition("# TYPE a gauge\na{k=\"v\"} 1\n# EOF\n"),
            Ok(1)
        );
    }

    #[test]
    fn checker_honors_escapes_inside_label_values() {
        let text = "# TYPE a gauge\na{k=\"close \\\"}\\\" brace\"} 2.5\n# EOF\n";
        assert_eq!(check_exposition(text), Ok(1));
    }
}
