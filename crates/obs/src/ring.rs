//! Flight recorder: a bounded ring buffer of recent structured events.
//!
//! Post-mortem debugging of the explorer works from *partial evidence*:
//! when a run panics, trips its wall deadline, or exits degraded, the
//! final report says what happened but not what led up to it. The
//! [`FlightRecorder`] is the black box — it retains the last N events
//! (choice points, progress ticks, budget transitions, fault
//! injections) and dumps them as an `lfm-obs/v1` JSONL tail on any
//! non-clean exit.
//!
//! The ring is lock-free-enough for the hot path: writers claim a slot
//! with one relaxed `fetch_add` on the head counter and then lock only
//! *their* slot, so concurrent emitters (ParExplorer workers via the
//! coordinator, CLI scopes) contend only when they wrap onto the same
//! slot — vanishingly rare with a capacity in the hundreds.

use std::io::{self, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::sink::{Event, OwnedEvent, Sink};

/// Schema identifier stamped on flight-recorder dumps.
pub const FLIGHT_SCHEMA: &str = "lfm-obs/v1";

/// Default number of events retained.
pub const DEFAULT_CAPACITY: usize = 256;

/// A bounded ring buffer of the most recent [`OwnedEvent`]s.
///
/// Implements [`Sink`], so it can be teed alongside the user's sink
/// (see [`TeeSink`](crate::TeeSink)) and observe everything the run
/// emits without changing what the run does.
#[derive(Debug)]
pub struct FlightRecorder {
    /// Total events ever recorded (the next sequence number).
    head: AtomicU64,
    slots: Vec<Mutex<Option<(u64, OwnedEvent)>>>,
}

impl Default for FlightRecorder {
    fn default() -> FlightRecorder {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A recorder retaining the last [`DEFAULT_CAPACITY`] events.
    pub fn new() -> FlightRecorder {
        FlightRecorder::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder retaining the last `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            head: AtomicU64::new(0),
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
        }
    }

    /// Maximum number of events retained.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total events observed over the recorder's lifetime.
    pub fn recorded(&self) -> u64 {
        self.head.load(Ordering::Relaxed)
    }

    /// Events that fell off the ring (observed minus retained).
    pub fn dropped(&self) -> u64 {
        self.recorded().saturating_sub(self.capacity() as u64)
    }

    /// The retained events, oldest first, each with its sequence number.
    pub fn tail(&self) -> Vec<(u64, OwnedEvent)> {
        let mut out: Vec<(u64, OwnedEvent)> = self
            .slots
            .iter()
            .filter_map(|slot| slot.lock().expect("flight slot poisoned").clone())
            .collect();
        out.sort_by_key(|(seq, _)| *seq);
        out
    }

    /// Writes the dump: one `lfm-obs/v1` header object, then the
    /// retained events as JSONL, oldest first, each prefixed with its
    /// sequence number.
    ///
    /// # Errors
    ///
    /// Propagates write failures.
    pub fn dump_jsonl(&self, w: &mut impl Write) -> io::Result<()> {
        let tail = self.tail();
        writeln!(
            w,
            "{{\"schema\":\"{FLIGHT_SCHEMA}\",\"kind\":\"flight-recorder\",\
             \"capacity\":{},\"recorded\":{},\"dropped\":{},\"retained\":{}}}",
            self.capacity(),
            self.recorded(),
            self.dropped(),
            tail.len(),
        )?;
        for (seq, event) in tail {
            let body = event.to_json();
            // Splice the sequence number in as the first key of the
            // event object: {"seq":N,"scope":...}.
            writeln!(w, "{{\"seq\":{seq},{}", &body[1..])?;
        }
        Ok(())
    }

    /// Writes the dump to a file at `path` (truncating).
    ///
    /// # Errors
    ///
    /// Propagates file creation and write failures.
    pub fn dump_to_path(&self, path: impl AsRef<Path>) -> io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        self.dump_jsonl(&mut file)
    }
}

impl Sink for FlightRecorder {
    fn emit(&self, event: &Event<'_>) {
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let idx = (seq % self.slots.len() as u64) as usize;
        let owned = OwnedEvent {
            scope: event.scope.to_owned(),
            name: event.name.to_owned(),
            fields: event
                .fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.to_owned_value()))
                .collect(),
        };
        *self.slots[idx].lock().expect("flight slot poisoned") = Some((seq, owned));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;
    use crate::sink::Value;

    fn emit(rec: &FlightRecorder, n: u64) {
        rec.emit(&Event {
            scope: "test",
            name: "tick",
            fields: &[("n", Value::U64(n))],
        });
    }

    #[test]
    fn retains_last_n_in_order() {
        let rec = FlightRecorder::with_capacity(4);
        for n in 0..10 {
            emit(&rec, n);
        }
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 6);
        let tail = rec.tail();
        assert_eq!(tail.len(), 4);
        let ns: Vec<u64> = tail
            .iter()
            .map(|(_, e)| e.field("n").and_then(|v| v.as_u64()).unwrap())
            .collect();
        assert_eq!(ns, vec![6, 7, 8, 9]);
        // Sequence numbers are strictly increasing.
        let seqs: Vec<u64> = tail.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
    }

    #[test]
    fn partial_fill_keeps_everything() {
        let rec = FlightRecorder::with_capacity(8);
        for n in 0..3 {
            emit(&rec, n);
        }
        assert_eq!(rec.dropped(), 0);
        assert_eq!(rec.tail().len(), 3);
    }

    #[test]
    fn dump_is_parseable_jsonl_with_header() {
        let rec = FlightRecorder::with_capacity(2);
        for n in 0..5 {
            emit(&rec, n);
        }
        let mut buf = Vec::new();
        rec.dump_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        // Header + at most `capacity` events.
        assert_eq!(lines.len(), 3);
        let header = Json::parse(lines[0]).unwrap();
        assert_eq!(
            header.get("schema").and_then(Json::as_str),
            Some(FLIGHT_SCHEMA)
        );
        assert_eq!(
            header.get("kind").and_then(Json::as_str),
            Some("flight-recorder")
        );
        assert_eq!(header.get("recorded").and_then(Json::as_u64), Some(5));
        assert_eq!(header.get("dropped").and_then(Json::as_u64), Some(3));
        assert_eq!(header.get("retained").and_then(Json::as_u64), Some(2));
        for (i, line) in lines[1..].iter().enumerate() {
            let e = Json::parse(line).unwrap();
            assert_eq!(e.get("seq").and_then(Json::as_u64), Some(3 + i as u64));
            assert_eq!(e.get("scope").and_then(Json::as_str), Some("test"));
            assert_eq!(e.get("event").and_then(Json::as_str), Some("tick"));
        }
    }

    #[test]
    fn empty_recorder_dumps_header_only() {
        let rec = FlightRecorder::new();
        assert_eq!(rec.capacity(), DEFAULT_CAPACITY);
        let mut buf = Vec::new();
        rec.dump_jsonl(&mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 1);
    }

    #[test]
    fn concurrent_emitters_stay_bounded() {
        let rec = std::sync::Arc::new(FlightRecorder::with_capacity(16));
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for n in 0..100 {
                        emit(&rec, t * 1_000 + n);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.recorded(), 400);
        let tail = rec.tail();
        assert_eq!(tail.len(), 16);
        // Every retained event is from the final wrap window.
        for (seq, _) in &tail {
            assert!(*seq >= 400 - 16);
        }
    }
}
