//! Monotonic wall-clock spans.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A one-shot monotonic stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch(Instant);

impl Stopwatch {
    /// Starts timing now.
    pub fn start() -> Stopwatch {
        Stopwatch(Instant::now())
    }

    /// Time elapsed since [`Stopwatch::start`].
    pub fn elapsed(&self) -> Duration {
        self.0.elapsed()
    }
}

/// An accumulator of span durations: total nanoseconds and entry count.
///
/// Sharable by reference; the hot path records with [`Timing::span`]
/// (RAII) or [`Timing::time`] (closure).
#[derive(Debug, Default)]
pub struct Timing {
    nanos: AtomicU64,
    entries: AtomicU64,
}

impl Timing {
    /// Creates an empty accumulator.
    pub const fn new() -> Timing {
        Timing {
            nanos: AtomicU64::new(0),
            entries: AtomicU64::new(0),
        }
    }

    /// Adds one finished span of length `d`.
    pub fn record(&self, d: Duration) {
        self.nanos.fetch_add(
            u64::try_from(d.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        self.entries.fetch_add(1, Ordering::Relaxed);
    }

    /// Opens a span that records its duration when dropped.
    pub fn span(&self) -> Span<'_> {
        Span {
            timing: self,
            started: Instant::now(),
        }
    }

    /// Times `f`, recording its duration.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let _span = self.span();
        f()
    }

    /// Total accumulated duration.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    /// Number of recorded spans.
    pub fn entries(&self) -> u64 {
        self.entries.load(Ordering::Relaxed)
    }

    /// Mean span duration (zero when no spans were recorded).
    pub fn mean(&self) -> Duration {
        match self.entries() {
            0 => Duration::ZERO,
            n => self.total() / u32::try_from(n).unwrap_or(u32::MAX).max(1),
        }
    }
}

/// An open span over a [`Timing`]; records on drop.
#[derive(Debug)]
pub struct Span<'a> {
    timing: &'a Timing,
    started: Instant,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.timing.record(self.started.elapsed());
    }
}

/// Renders a duration with a human-scale unit (`ns`, `µs`, `ms`, `s`).
pub fn fmt_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos}ns")
    } else if nanos < 1_000_000 {
        format!("{:.1}µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.1}ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2}s", d.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_accumulates() {
        let t = Timing::new();
        t.record(Duration::from_millis(2));
        t.record(Duration::from_millis(4));
        assert_eq!(t.entries(), 2);
        assert_eq!(t.total(), Duration::from_millis(6));
        assert_eq!(t.mean(), Duration::from_millis(3));
    }

    #[test]
    fn span_guard_records_on_drop() {
        let t = Timing::new();
        {
            let _s = t.span();
        }
        t.time(|| ());
        assert_eq!(t.entries(), 2);
    }

    #[test]
    fn stopwatch_is_monotonic() {
        let sw = Stopwatch::start();
        let a = sw.elapsed();
        let b = sw.elapsed();
        assert!(b >= a);
    }

    #[test]
    fn empty_timing_mean_is_zero() {
        assert_eq!(Timing::new().mean(), Duration::ZERO);
    }

    #[test]
    fn duration_formatting_scales() {
        assert_eq!(fmt_duration(Duration::from_nanos(12)), "12ns");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12.0µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.0ms");
        assert_eq!(fmt_duration(Duration::from_secs(12)), "12.00s");
    }
}
