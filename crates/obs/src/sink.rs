//! Pluggable structured-event sinks.

use std::fmt;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::counter::Counter;
use crate::json;

/// A field value carried by an [`Event`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Value<'a> {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Borrowed string.
    Str(&'a str),
}

impl Value<'_> {
    /// Renders the value as JSON.
    pub fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => json::number_f64(*v),
            Value::Bool(v) => v.to_string(),
            Value::Str(s) => json::quote(s),
        }
    }

    pub(crate) fn to_owned_value(self) -> OwnedValue {
        match self {
            Value::U64(v) => OwnedValue::U64(v),
            Value::I64(v) => OwnedValue::I64(v),
            Value::F64(v) => OwnedValue::F64(v),
            Value::Bool(v) => OwnedValue::Bool(v),
            Value::Str(s) => OwnedValue::Str(s.to_owned()),
        }
    }
}

impl From<u64> for Value<'_> {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<i64> for Value<'_> {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<f64> for Value<'_> {
    fn from(v: f64) -> Self {
        Value::F64(v)
    }
}

impl From<bool> for Value<'_> {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl<'a> From<&'a str> for Value<'a> {
    fn from(v: &'a str) -> Self {
        Value::Str(v)
    }
}

/// One structured observation: `scope` names the subsystem (`explore`,
/// `detect`, `stm`, `cli`, …), `name` the event within it, and `fields`
/// carry the payload.
#[derive(Debug, Clone, Copy)]
pub struct Event<'a> {
    /// Subsystem that produced the event.
    pub scope: &'a str,
    /// Event name within the scope.
    pub name: &'a str,
    /// Ordered payload fields.
    pub fields: &'a [(&'a str, Value<'a>)],
}

impl Event<'_> {
    /// Renders the event as one JSON object (the JSONL line, no newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 16);
        out.push_str("{\"scope\":");
        out.push_str(&json::quote(self.scope));
        out.push_str(",\"event\":");
        out.push_str(&json::quote(self.name));
        for (key, value) in self.fields {
            out.push(',');
            out.push_str(&json::quote(key));
            out.push(':');
            out.push_str(&value.to_json());
        }
        out.push('}');
        out
    }
}

/// An owned copy of a field value (see [`Value`]).
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedValue {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// Owned string.
    Str(String),
}

impl OwnedValue {
    /// Renders the value as JSON.
    pub fn to_json(&self) -> String {
        match self {
            OwnedValue::U64(v) => v.to_string(),
            OwnedValue::I64(v) => v.to_string(),
            OwnedValue::F64(v) => json::number_f64(*v),
            OwnedValue::Bool(v) => v.to_string(),
            OwnedValue::Str(s) => json::quote(s),
        }
    }

    /// The value as `u64`, when it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            OwnedValue::U64(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as `&str`, when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            OwnedValue::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// An owned copy of an [`Event`], as stored by [`MemorySink`].
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedEvent {
    /// Subsystem that produced the event.
    pub scope: String,
    /// Event name within the scope.
    pub name: String,
    /// Ordered payload fields.
    pub fields: Vec<(String, OwnedValue)>,
}

impl OwnedEvent {
    /// Looks up a field by key.
    pub fn field(&self, key: &str) -> Option<&OwnedValue> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Renders the event as one JSON object, matching
    /// [`Event::to_json`] field for field.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.fields.len() * 16);
        out.push_str("{\"scope\":");
        out.push_str(&json::quote(&self.scope));
        out.push_str(",\"event\":");
        out.push_str(&json::quote(&self.name));
        for (key, value) in &self.fields {
            out.push(',');
            out.push_str(&json::quote(key));
            out.push(':');
            out.push_str(&value.to_json());
        }
        out.push('}');
        out
    }
}

/// A consumer of structured events.
///
/// Implementations must be cheap and must never panic into the
/// instrumented computation; hot paths may consult [`Sink::enabled`] to
/// skip event assembly entirely.
pub trait Sink: Send + Sync + fmt::Debug {
    /// Consumes one event.
    fn emit(&self, event: &Event<'_>);

    /// `false` when emitted events are discarded (lets callers skip
    /// building them).
    fn enabled(&self) -> bool {
        true
    }

    /// Flushes any buffered output.
    fn flush(&self) {}

    /// Number of events this sink failed to persist (dropped writes).
    ///
    /// Sinks must never panic into the computation they observe, so IO
    /// errors are absorbed at [`Sink::emit`] — but silently absorbed is
    /// not silently forgotten: callers check this at the end of a run
    /// and degrade their exit status when observations were lost.
    fn lost_events(&self) -> u64 {
        0
    }
}

/// The default sink: discards everything.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopSink;

impl Sink for NoopSink {
    fn emit(&self, _event: &Event<'_>) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// An in-memory snapshot sink for tests and interactive stats.
#[derive(Debug, Default)]
pub struct MemorySink {
    events: Mutex<Vec<OwnedEvent>>,
}

impl MemorySink {
    /// Creates an empty sink.
    pub fn new() -> MemorySink {
        MemorySink::default()
    }

    /// Number of captured events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("memory sink poisoned").len()
    }

    /// `true` when nothing was captured.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Copies out the captured events.
    pub fn events(&self) -> Vec<OwnedEvent> {
        self.events.lock().expect("memory sink poisoned").clone()
    }

    /// Copies out the captured events with the given scope and name.
    pub fn events_named(&self, scope: &str, name: &str) -> Vec<OwnedEvent> {
        self.events()
            .into_iter()
            .filter(|e| e.scope == scope && e.name == name)
            .collect()
    }
}

impl Sink for MemorySink {
    fn emit(&self, event: &Event<'_>) {
        let owned = OwnedEvent {
            scope: event.scope.to_owned(),
            name: event.name.to_owned(),
            fields: event
                .fields
                .iter()
                .map(|(k, v)| ((*k).to_owned(), v.to_owned_value()))
                .collect(),
        };
        self.events
            .lock()
            .expect("memory sink poisoned")
            .push(owned);
    }
}

/// A sink writing one JSON object per event (JSONL) to any writer.
pub struct JsonlSink<W: Write + Send> {
    out: Mutex<W>,
    write_errors: Counter,
}

impl<W: Write + Send> fmt::Debug for JsonlSink<W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("JsonlSink").finish_non_exhaustive()
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps a writer.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            out: Mutex::new(writer),
            write_errors: Counter::new(),
        }
    }

    /// Number of emit/flush calls whose IO failed (events lost).
    pub fn write_errors(&self) -> u64 {
        self.write_errors.get()
    }
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) a JSONL log file at `path`.
    pub fn create(path: impl AsRef<Path>) -> io::Result<JsonlSink<BufWriter<File>>> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }

    /// Flushes buffered lines and fsyncs the file to stable storage.
    ///
    /// The lost-events exit contract counts *every* way the log can
    /// silently lose data, so a failing final flush or a failing
    /// `fsync` both land in [`write_errors`](JsonlSink::write_errors)
    /// — the same counter the CLI consults before choosing its exit
    /// status.
    pub fn sync(&self) {
        let mut out = self.out.lock().expect("jsonl sink poisoned");
        if out.flush().is_err() {
            self.write_errors.inc();
        }
        if out.get_ref().sync_all().is_err() {
            self.write_errors.inc();
        }
    }
}

impl<W: Write + Send> Sink for JsonlSink<W> {
    fn emit(&self, event: &Event<'_>) {
        let mut line = event.to_json();
        line.push('\n');
        // A full disk mid-log must not abort the run it is observing —
        // but a dropped event is counted so the run can report the loss.
        let result = self
            .out
            .lock()
            .expect("jsonl sink poisoned")
            .write_all(line.as_bytes());
        if result.is_err() {
            self.write_errors.inc();
        }
    }

    fn flush(&self) {
        if self
            .out
            .lock()
            .expect("jsonl sink poisoned")
            .flush()
            .is_err()
        {
            self.write_errors.inc();
        }
    }

    fn lost_events(&self) -> u64 {
        self.write_errors.get()
    }
}

/// Broadcasts every event to a list of sinks.
///
/// `enabled` is the OR of the children (event assembly is skipped only
/// when *no* child wants events); `flush` flushes all; `lost_events`
/// sums the children. The CLI uses this to tee the user's log sink
/// with the always-on [`FlightRecorder`](crate::FlightRecorder).
#[derive(Debug, Default)]
pub struct TeeSink {
    sinks: Vec<std::sync::Arc<dyn Sink>>,
}

impl TeeSink {
    /// A tee over `sinks` (empty behaves like [`NoopSink`]).
    pub fn new(sinks: Vec<std::sync::Arc<dyn Sink>>) -> TeeSink {
        TeeSink { sinks }
    }
}

impl Sink for TeeSink {
    fn emit(&self, event: &Event<'_>) {
        for sink in &self.sinks {
            sink.emit(event);
        }
    }

    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn flush(&self) {
        for sink in &self.sinks {
            sink.flush();
        }
    }

    fn lost_events(&self) -> u64 {
        self.sinks.iter().map(|s| s.lost_events()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample<'a>(fields: &'a [(&'a str, Value<'a>)]) -> Event<'a> {
        Event {
            scope: "test",
            name: "sample",
            fields,
        }
    }

    #[test]
    fn event_renders_flat_json() {
        let fields = [
            ("schedules", Value::U64(12)),
            ("rate", Value::F64(1.5)),
            ("truncated", Value::Bool(false)),
            ("note", Value::Str("a \"quoted\" note")),
        ];
        let json = sample(&fields).to_json();
        assert_eq!(
            json,
            "{\"scope\":\"test\",\"event\":\"sample\",\"schedules\":12,\
             \"rate\":1.5,\"truncated\":false,\"note\":\"a \\\"quoted\\\" note\"}"
        );
    }

    #[test]
    fn noop_sink_is_disabled() {
        let sink = NoopSink;
        assert!(!sink.enabled());
        sink.emit(&sample(&[]));
    }

    #[test]
    fn memory_sink_captures_owned_events() {
        let sink = MemorySink::new();
        assert!(sink.is_empty());
        sink.emit(&sample(&[("n", Value::U64(3)), ("s", Value::Str("x"))]));
        assert_eq!(sink.len(), 1);
        let events = sink.events_named("test", "sample");
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].field("n").and_then(OwnedValue::as_u64), Some(3));
        assert_eq!(events[0].field("s").and_then(OwnedValue::as_str), Some("x"));
        assert!(events[0].field("missing").is_none());
    }

    #[test]
    fn jsonl_sink_writes_parseable_lines() {
        let sink = JsonlSink::new(Vec::new());
        sink.emit(&sample(&[("a", Value::I64(-1))]));
        sink.emit(&sample(&[("b", Value::Str("line\nbreak"))]));
        let bytes = sink.out.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"scope\":\"test\",\"event\":\"sample\",\"a\":-1}"
        );
        // The embedded newline is escaped, keeping one event per line.
        assert!(lines[1].contains("line\\nbreak"));
    }

    /// A writer that fails every operation, like a full disk.
    struct FullDisk;

    impl Write for FullDisk {
        fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
            Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"))
        }

        fn flush(&mut self) -> io::Result<()> {
            Err(io::Error::new(io::ErrorKind::WriteZero, "disk full"))
        }
    }

    #[test]
    fn jsonl_sink_counts_lost_events_instead_of_panicking() {
        let sink = JsonlSink::new(FullDisk);
        assert_eq!(sink.lost_events(), 0);
        sink.emit(&sample(&[]));
        sink.emit(&sample(&[]));
        assert_eq!(sink.write_errors(), 2);
        Sink::flush(&sink);
        assert_eq!(sink.lost_events(), 3);
    }

    #[test]
    fn healthy_sinks_lose_nothing() {
        let sink = JsonlSink::new(Vec::new());
        sink.emit(&sample(&[]));
        Sink::flush(&sink);
        assert_eq!(sink.lost_events(), 0);
        // The trait default reports zero for sinks that cannot lose.
        assert_eq!(Sink::lost_events(&MemorySink::new()), 0);
        assert_eq!(Sink::lost_events(&NoopSink), 0);
    }

    #[test]
    fn sync_counts_flush_and_fsync_failures() {
        let dir = std::env::temp_dir().join("lfm-obs-sync-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("sync-{}.jsonl", std::process::id()));
        let sink = JsonlSink::create(&path).unwrap();
        sink.emit(&sample(&[("n", Value::U64(1))]));
        sink.sync();
        // A healthy file flushes and fsyncs without loss, and the line
        // is durable on disk afterwards.
        assert_eq!(sink.lost_events(), 0);
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"event\":\"sample\""));
        std::fs::remove_file(&path).ok();
    }

    #[cfg(target_os = "linux")]
    #[test]
    fn sync_on_full_device_counts_losses() {
        // /dev/full accepts opens but fails writes; flushing buffered
        // bytes through it must land in the lost-events counter rather
        // than panic.
        if !std::path::Path::new("/dev/full").exists() {
            return;
        }
        let file = std::fs::OpenOptions::new()
            .write(true)
            .open("/dev/full")
            .unwrap();
        let sink = JsonlSink::new(BufWriter::new(file));
        sink.emit(&sample(&[("n", Value::U64(1))]));
        sink.sync();
        assert!(sink.lost_events() >= 1);
    }

    #[test]
    fn tee_broadcasts_and_aggregates() {
        use std::sync::Arc;
        let memory = Arc::new(MemorySink::new());
        let failing = Arc::new(JsonlSink::new(FullDisk));
        let tee = TeeSink::new(vec![
            memory.clone() as Arc<dyn Sink>,
            failing.clone() as Arc<dyn Sink>,
        ]);
        assert!(tee.enabled());
        tee.emit(&sample(&[("n", Value::U64(7))]));
        tee.flush();
        assert_eq!(memory.len(), 1);
        // One failed write + one failed flush, summed through the tee.
        assert_eq!(tee.lost_events(), 2);
    }

    #[test]
    fn tee_of_disabled_sinks_is_disabled() {
        let tee = TeeSink::new(vec![std::sync::Arc::new(NoopSink)]);
        assert!(!tee.enabled());
        assert_eq!(tee.lost_events(), 0);
        let empty = TeeSink::default();
        assert!(!empty.enabled());
        empty.emit(&sample(&[]));
        empty.flush();
    }

    #[test]
    fn owned_event_json_matches_borrowed_event_json() {
        let fields = [
            ("n", Value::U64(3)),
            ("f", Value::F64(0.5)),
            ("b", Value::Bool(true)),
            ("s", Value::Str("x \"y\"")),
            ("i", Value::I64(-9)),
        ];
        let event = sample(&fields);
        let memory = MemorySink::new();
        memory.emit(&event);
        assert_eq!(memory.events()[0].to_json(), event.to_json());
    }

    #[test]
    fn value_conversions() {
        assert_eq!(Value::from(3u64), Value::U64(3));
        assert_eq!(Value::from(-3i64), Value::I64(-3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("s"), Value::Str("s"));
        assert_eq!(Value::from(0.5f64).to_json(), "0.5");
    }
}
