//! Relaxed atomic event counters.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing event counter.
///
/// All operations use relaxed ordering: counters are statistics, not
/// synchronization. Sharable by reference across threads; `Clone`
/// snapshots the current value into a fresh counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter at zero.
    pub const fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    /// Increments by one, returning the new value.
    pub fn inc(&self) -> u64 {
        self.add(1)
    }

    /// Adds `n`, returning the new value.
    pub fn add(&self, n: u64) -> u64 {
        self.0.fetch_add(n, Ordering::Relaxed) + n
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Resets to zero, returning the value held before the reset.
    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

impl Clone for Counter {
    fn clone(&self) -> Counter {
        Counter(AtomicU64::new(self.get()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_and_resets() {
        let c = Counter::new();
        assert_eq!(c.get(), 0);
        assert_eq!(c.inc(), 1);
        assert_eq!(c.add(41), 42);
        assert_eq!(c.get(), 42);
        assert_eq!(c.reset(), 42);
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn clone_snapshots_value() {
        let c = Counter::new();
        c.add(7);
        let d = c.clone();
        c.inc();
        assert_eq!(d.get(), 7);
        assert_eq!(c.get(), 8);
    }

    #[test]
    fn concurrent_increments_are_not_lost() {
        let c = std::sync::Arc::new(Counter::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let c = std::sync::Arc::clone(&c);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(c.get(), 4000);
    }
}
