//! Lock-free power-of-two value histograms.

use std::sync::atomic::{AtomicU64, Ordering};

/// Bucket 0 holds the value 0; bucket `i >= 1` holds values `v` with
/// `v.ilog2() == i - 1`, i.e. the range `[2^(i-1), 2^i)`.
const BUCKETS: usize = 65;

/// A concurrent histogram over `u64` values with power-of-two buckets.
///
/// Tracks count, sum, min and max exactly; the value distribution is
/// approximated by 65 logarithmic buckets, giving percentile estimates
/// within a factor of two — plenty for schedule lengths, depths and
/// per-pass timings.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

/// The bucket index for a value.
fn bucket_of(value: u64) -> usize {
    match value {
        0 => 0,
        v => v.ilog2() as usize + 1,
    }
}

/// The largest value the bucket at `index` can hold.
fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        64 => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value.
    pub fn record(&self, value: u64) {
        self.buckets[bucket_of(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Takes a consistent-enough snapshot for reporting.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: Vec<u64>,
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: u64,
    /// Smallest recorded value (`u64::MAX` when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Arithmetic mean of the recorded values (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// An upper-bound estimate of the `q`-quantile (`q` in `[0, 1]`),
    /// exact to the enclosing power-of-two bucket.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i).min(self.max);
            }
        }
        self.max
    }

    /// Cumulative `(upper_bound, count_le_upper_bound)` pairs for
    /// rendering the distribution (e.g. OpenMetrics `le` buckets).
    /// Stops after the bucket that reaches the total count, so empty
    /// trailing buckets are omitted.
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cum += n;
            out.push((bucket_upper(i), cum));
            if cum >= self.count {
                break;
            }
        }
        out
    }

    /// The median ([`HistogramSnapshot::quantile`] at 0.50).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 90th percentile ([`HistogramSnapshot::quantile`] at 0.90).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// The 99th percentile ([`HistogramSnapshot::quantile`] at 0.99).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

impl std::fmt::Display for HistogramSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.count == 0 {
            return write!(f, "count=0");
        }
        write!(
            f,
            "count={} mean={:.1} min={} p50<={} p99<={} max={}",
            self.count,
            self.mean(),
            self.min,
            self.quantile(0.50),
            self.quantile(0.99),
            self.max
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(1), 1);
        assert_eq!(bucket_upper(2), 3);
        assert_eq!(bucket_upper(64), u64::MAX);
    }

    #[test]
    fn exact_aggregates() {
        let h = Histogram::new();
        for v in [3, 1, 4, 1, 5, 9, 2, 6] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 8);
        assert_eq!(s.sum, 31);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 9);
        assert!((s.mean() - 31.0 / 8.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_are_bucket_upper_bounds() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        // p50 of 1..=100 is 50, in bucket [32, 64) whose upper bound is 63.
        assert_eq!(s.quantile(0.5), 63);
        // p100 is capped to the true max.
        assert_eq!(s.quantile(1.0), 100);
        assert_eq!(s.quantile(0.0), 1);
    }

    #[test]
    fn named_percentile_accessors_match_quantile() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), s.quantile(0.50));
        assert_eq!(s.p90(), s.quantile(0.90));
        assert_eq!(s.p99(), s.quantile(0.99));
        // Percentiles are monotone.
        assert!(s.p50() <= s.p90());
        assert!(s.p90() <= s.p99());
        assert!(s.p99() <= s.max);
    }

    #[test]
    fn empty_histogram_is_benign() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.to_string(), "count=0");
    }

    #[test]
    fn single_sample_percentiles_collapse_to_the_value() {
        let h = Histogram::new();
        h.record(7);
        let s = h.snapshot();
        // Every quantile of a one-sample distribution is that sample
        // (the bucket upper bound 7 happens to be exact here).
        assert_eq!(s.quantile(0.0), 7);
        assert_eq!(s.p50(), 7);
        assert_eq!(s.p99(), 7);
        assert_eq!(s.quantile(1.0), 7);
        assert_eq!(s.min, 7);
        assert_eq!(s.max, 7);
        // A single sample off a bucket boundary is still capped to max.
        let h2 = Histogram::new();
        h2.record(5);
        let s2 = h2.snapshot();
        assert_eq!(s2.p50(), 5);
        assert_eq!(s2.p99(), 5);
    }

    #[test]
    fn all_equal_samples_have_flat_percentiles() {
        let h = Histogram::new();
        for _ in 0..1_000 {
            h.record(42);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 42);
        assert_eq!(s.p90(), 42);
        assert_eq!(s.p99(), 42);
        assert_eq!(s.quantile(1.0), 42);
        assert_eq!(s.min, s.max);
        assert!((s.mean() - 42.0).abs() < 1e-9);
    }

    #[test]
    fn all_zero_samples_stay_in_the_zero_bucket() {
        let h = Histogram::new();
        for _ in 0..10 {
            h.record(0);
        }
        let s = h.snapshot();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.min, 0);
    }

    #[test]
    fn cumulative_buckets_cover_the_distribution() {
        let h = Histogram::new();
        for v in [0, 1, 2, 3, 8] {
            h.record(v);
        }
        let s = h.snapshot();
        let cum = s.cumulative_buckets();
        // Buckets: 0 → [0,0], 1 → [1,1], 2 → [2,3], ... 4 → [8,15].
        assert_eq!(cum[0], (0, 1));
        assert_eq!(cum[1], (1, 2));
        assert_eq!(cum[2], (3, 4));
        // The last entry reaches the full count at the max's bucket.
        let &(last_ub, last_cum) = cum.last().unwrap();
        assert_eq!(last_cum, s.count);
        assert!(last_ub >= s.max);
        // Cumulative counts are monotone.
        assert!(cum.windows(2).all(|w| w[0].1 <= w[1].1));
    }

    #[test]
    fn cumulative_buckets_of_empty_histogram() {
        let cum = Histogram::new().snapshot().cumulative_buckets();
        assert_eq!(cum, vec![(0, 0)]);
    }

    #[test]
    fn display_mentions_headline_stats() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        let text = h.snapshot().to_string();
        assert!(text.contains("count=2"), "{text}");
        assert!(text.contains("min=10"), "{text}");
        assert!(text.contains("max=20"), "{text}");
    }
}
