//! Online progress estimation for tree exploration.
//!
//! "How far along is this sweep?" is unanswerable from a schedule
//! counter alone — the interleaving tree's size is the quantity the
//! explorer exists to discover. This module provides the two halves of
//! an honest answer:
//!
//! - [`KnuthEstimator`] — Knuth's classic backtrack-tree size
//!   estimator (Knuth, *Estimating the efficiency of backtrack
//!   programs*, 1974). Each enumerated leaf contributes one sample:
//!   the product of branching degrees along its root-to-leaf path. The
//!   mean of those samples is an unbiased estimate of the number of
//!   leaves **when the leaf is reached by random descent**; DFS
//!   enumeration visits leaves in tree order instead, so mid-run the
//!   running mean is biased toward the shape of the left subtrees
//!   already explored. It converges to the exact leaf count when the
//!   sweep completes un-truncated, and in practice stabilizes quickly
//!   on the roughly self-similar trees our kernels induce. The
//!   estimate is a pure function of the tree (no clocks, no
//!   randomness), so it is identical across serial/parallel runs and
//!   across observation-on/off runs — it can live in `ExploreReport`
//!   without weakening the determinism contract.
//! - [`ProgressTracker`] — wall-clock pacing and states/sec trend for
//!   the periodic `--progress` stderr lines. Everything it produces is
//!   time-dependent and therefore lives only in *events*, never in
//!   reports.
//!
//! [`render_progress_line`] turns the explorer's `progress_est` events
//! into the human-readable stderr line; [`ProgressLineSink`] is the
//! sink the CLI tees in when `--progress` is set.

use std::io::Write;
use std::sync::Mutex;
use std::time::Duration;

use crate::sink::{Event, Sink, Value};

/// Knuth-style running estimate of the total number of schedules
/// (leaves) in the exploration tree.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KnuthEstimator {
    sum: f64,
    leaves: u64,
}

impl KnuthEstimator {
    /// An empty estimator.
    pub fn new() -> KnuthEstimator {
        KnuthEstimator::default()
    }

    /// Records one enumerated leaf whose root-to-leaf branching-degree
    /// product is `path_degree` (1.0 for a leaf at the root).
    pub fn record_leaf(&mut self, path_degree: f64) {
        if path_degree.is_finite() && path_degree >= 0.0 {
            self.sum += path_degree;
        }
        self.leaves += 1;
    }

    /// Number of leaves recorded so far.
    pub fn leaves(&self) -> u64 {
        self.leaves
    }

    /// Current estimate of the total leaf count (0.0 before any leaf).
    pub fn estimate(&self) -> f64 {
        if self.leaves == 0 {
            return 0.0;
        }
        let est = self.sum / self.leaves as f64;
        if est.is_finite() {
            est
        } else {
            f64::MAX
        }
    }

    /// Estimated fraction of the tree already enumerated, clamped to
    /// `[0, 1]` (an estimate can undershoot the schedules already run).
    pub fn fraction_done(&self) -> f64 {
        let est = self.estimate();
        if est <= 0.0 {
            return 0.0;
        }
        (self.leaves as f64 / est).clamp(0.0, 1.0)
    }
}

/// Wall-clock pacing and rate trend for periodic progress emission.
///
/// The explorer consults [`ProgressTracker::due`] on a cheap counter
/// gate (every few dozen schedules) and, when due, calls
/// [`ProgressTracker::sample`] to get the recent-window states/sec.
#[derive(Debug)]
pub struct ProgressTracker {
    every: Duration,
    last_emit: Duration,
    prev: Option<(u64, Duration)>,
}

impl ProgressTracker {
    /// A tracker emitting roughly every `every` of wall time.
    pub fn new(every: Duration) -> ProgressTracker {
        ProgressTracker {
            every,
            last_emit: Duration::ZERO,
            prev: None,
        }
    }

    /// Default cadence for `--progress` lines.
    pub const DEFAULT_EVERY: Duration = Duration::from_millis(250);

    /// `true` when at least the configured interval has elapsed since
    /// the last sample (or since the start). `elapsed` is total run
    /// wall time so far.
    pub fn due(&self, elapsed: Duration) -> bool {
        elapsed.saturating_sub(self.last_emit) >= self.every
    }

    /// Records a sample and returns the states/sec rate over the
    /// window since the previous sample (falling back to the overall
    /// rate for the first sample).
    pub fn sample(&mut self, schedules: u64, elapsed: Duration) -> f64 {
        let rate = match self.prev {
            Some((prev_n, prev_at)) => {
                let dn = schedules.saturating_sub(prev_n) as f64;
                let dt = elapsed.saturating_sub(prev_at).as_secs_f64();
                if dt > 0.0 {
                    dn / dt
                } else {
                    0.0
                }
            }
            None => {
                let dt = elapsed.as_secs_f64();
                if dt > 0.0 {
                    schedules as f64 / dt
                } else {
                    0.0
                }
            }
        };
        self.prev = Some((schedules, elapsed));
        self.last_emit = elapsed;
        rate
    }
}

/// Estimated milliseconds to finish `remaining` schedules at `rate`
/// states/sec; `None` when the rate or remainder gives no signal.
pub fn eta_ms(remaining: f64, rate: f64) -> Option<u64> {
    if rate <= 0.0 || !remaining.is_finite() || remaining <= 0.0 {
        return None;
    }
    let ms = remaining / rate * 1_000.0;
    if ms.is_finite() {
        Some(ms.min(u64::MAX as f64) as u64)
    } else {
        None
    }
}

fn field<'a>(event: &'a Event<'_>, key: &str) -> Option<&'a Value<'a>> {
    event.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
}

fn field_u64(event: &Event<'_>, key: &str) -> u64 {
    match field(event, key) {
        Some(Value::U64(v)) => *v,
        _ => 0,
    }
}

fn field_f64(event: &Event<'_>, key: &str) -> f64 {
    match field(event, key) {
        Some(Value::F64(v)) => *v,
        Some(Value::U64(v)) => *v as f64,
        _ => 0.0,
    }
}

fn fmt_count(v: f64) -> String {
    if v >= 1_000_000.0 {
        format!("{:.1}M", v / 1_000_000.0)
    } else if v >= 1_000.0 {
        format!("{:.1}k", v / 1_000.0)
    } else {
        format!("{v:.0}")
    }
}

/// Renders an `explore`/`progress_est` event as the one-line human
/// progress report; other events render as `None`.
pub fn render_progress_line(event: &Event<'_>) -> Option<String> {
    if event.scope != "explore" || event.name != "progress_est" {
        return None;
    }
    let program = match field(event, "program") {
        Some(Value::Str(s)) => s,
        _ => "?",
    };
    let schedules = field_u64(event, "schedules");
    let est_total = field_f64(event, "est_total");
    let fraction = field_f64(event, "fraction");
    let rate = field_f64(event, "schedules_per_sec");
    let frontier = field_u64(event, "frontier_depth");
    let max_depth = field_u64(event, "max_depth");
    let mut line = format!(
        "[progress] {program}: {} schedules (~{:.1}% of est {}), depth {frontier}/{max_depth}, {}/s",
        fmt_count(schedules as f64),
        fraction * 100.0,
        fmt_count(est_total),
        fmt_count(rate),
    );
    match field(event, "eta_ms") {
        Some(Value::U64(ms)) => {
            line.push_str(&format!(
                ", eta {}",
                crate::span::fmt_duration(Duration::from_millis(*ms))
            ));
        }
        _ => line.push_str(", eta ?"),
    }
    Some(line)
}

/// A [`Sink`] that renders `progress_est` events as human-readable
/// lines on a writer (stderr in the CLI); all other events pass
/// through silently.
pub struct ProgressLineSink<W: Write + Send> {
    out: Mutex<W>,
}

impl<W: Write + Send> std::fmt::Debug for ProgressLineSink<W> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProgressLineSink").finish_non_exhaustive()
    }
}

impl<W: Write + Send> ProgressLineSink<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> ProgressLineSink<W> {
        ProgressLineSink {
            out: Mutex::new(out),
        }
    }
}

impl ProgressLineSink<std::io::Stderr> {
    /// A sink writing progress lines to stderr.
    pub fn stderr() -> ProgressLineSink<std::io::Stderr> {
        ProgressLineSink::new(std::io::stderr())
    }
}

impl<W: Write + Send> Sink for ProgressLineSink<W> {
    fn emit(&self, event: &Event<'_>) {
        if let Some(line) = render_progress_line(event) {
            let mut out = self.out.lock().expect("progress sink poisoned");
            // Progress lines are advisory; a failing stderr must not
            // perturb the run (and loses nothing durable).
            let _ = writeln!(out, "{line}");
        }
    }

    fn flush(&self) {
        let _ = self.out.lock().expect("progress sink poisoned").flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn complete_enumeration_recovers_exact_leaf_count() {
        // A uniform binary tree of depth 3 has 8 leaves, each with
        // path degree 2*2*2 = 8; the mean is exactly 8.
        let mut est = KnuthEstimator::new();
        for _ in 0..8 {
            est.record_leaf(8.0);
        }
        assert_eq!(est.leaves(), 8);
        assert_eq!(est.estimate(), 8.0);
        assert_eq!(est.fraction_done(), 1.0);
    }

    #[test]
    fn irregular_tree_estimate_is_mean_of_path_degrees() {
        // Root with degree 2: left child is a leaf (degree product 2),
        // right child branches 3 ways to leaves (product 6 each).
        let mut est = KnuthEstimator::new();
        est.record_leaf(2.0);
        for _ in 0..3 {
            est.record_leaf(6.0);
        }
        assert_eq!(est.estimate(), 5.0);
        // 4 actual leaves vs estimate 5 → 80% done.
        assert!((est.fraction_done() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_and_degenerate_estimators_are_benign() {
        let est = KnuthEstimator::new();
        assert_eq!(est.estimate(), 0.0);
        assert_eq!(est.fraction_done(), 0.0);
        let mut single = KnuthEstimator::new();
        single.record_leaf(1.0);
        assert_eq!(single.estimate(), 1.0);
        assert_eq!(single.fraction_done(), 1.0);
        // Non-finite samples are ignored rather than poisoning the sum.
        let mut poisoned = KnuthEstimator::new();
        poisoned.record_leaf(f64::INFINITY);
        poisoned.record_leaf(4.0);
        assert_eq!(poisoned.estimate(), 2.0);
    }

    #[test]
    fn fraction_clamps_when_estimate_undershoots() {
        let mut est = KnuthEstimator::new();
        // Left-heavy descent: degrees seen so far say "2 leaves" but we
        // have already enumerated 4.
        for _ in 0..4 {
            est.record_leaf(2.0);
        }
        assert_eq!(est.fraction_done(), 1.0);
    }

    #[test]
    fn tracker_paces_by_wall_time() {
        let mut t = ProgressTracker::new(Duration::from_millis(100));
        assert!(!t.due(Duration::from_millis(50)));
        assert!(t.due(Duration::from_millis(100)));
        let first = t.sample(1_000, Duration::from_millis(100));
        assert!((first - 10_000.0).abs() < 1e-6);
        assert!(!t.due(Duration::from_millis(150)));
        assert!(t.due(Duration::from_millis(200)));
        // Window rate: 500 more schedules in 100ms = 5k/s.
        let second = t.sample(1_500, Duration::from_millis(200));
        assert!((second - 5_000.0).abs() < 1e-6);
    }

    #[test]
    fn tracker_zero_elapsed_rate_is_zero() {
        let mut t = ProgressTracker::new(Duration::from_millis(100));
        assert_eq!(t.sample(10, Duration::ZERO), 0.0);
        assert_eq!(t.sample(20, Duration::ZERO), 0.0);
    }

    #[test]
    fn eta_handles_edge_cases() {
        assert_eq!(eta_ms(1_000.0, 500.0), Some(2_000));
        assert_eq!(eta_ms(0.0, 500.0), None);
        assert_eq!(eta_ms(-5.0, 500.0), None);
        assert_eq!(eta_ms(1_000.0, 0.0), None);
        assert_eq!(eta_ms(f64::INFINITY, 10.0), None);
    }

    fn progress_event<'a>(fields: &'a [(&'a str, Value<'a>)]) -> Event<'a> {
        Event {
            scope: "explore",
            name: "progress_est",
            fields,
        }
    }

    #[test]
    fn renders_progress_line_from_event() {
        let fields = [
            ("program", Value::Str("abba")),
            ("schedules", Value::U64(12_500)),
            ("est_total", Value::F64(390_625.0)),
            ("fraction", Value::F64(0.032)),
            ("schedules_per_sec", Value::F64(48_300.0)),
            ("frontier_depth", Value::U64(7)),
            ("max_depth", Value::U64(12)),
            ("eta_ms", Value::U64(7_800)),
        ];
        let line = render_progress_line(&progress_event(&fields)).unwrap();
        assert!(line.contains("abba"), "{line}");
        assert!(line.contains("12.5k schedules"), "{line}");
        assert!(line.contains("3.2%"), "{line}");
        assert!(line.contains("390.6k"), "{line}");
        assert!(line.contains("depth 7/12"), "{line}");
        assert!(line.contains("48.3k/s"), "{line}");
        assert!(line.contains("eta 7.80s"), "{line}");
    }

    #[test]
    fn missing_eta_renders_placeholder_and_other_events_skip() {
        let fields = [("program", Value::Str("x")), ("schedules", Value::U64(1))];
        let line = render_progress_line(&progress_event(&fields)).unwrap();
        assert!(line.contains("eta ?"), "{line}");
        assert!(render_progress_line(&Event {
            scope: "explore",
            name: "report",
            fields: &[],
        })
        .is_none());
    }

    #[test]
    fn progress_sink_writes_only_progress_lines() {
        let sink = ProgressLineSink::new(Vec::new());
        sink.emit(&progress_event(&[
            ("program", Value::Str("p")),
            ("schedules", Value::U64(10)),
        ]));
        sink.emit(&Event {
            scope: "explore",
            name: "report",
            fields: &[],
        });
        sink.flush();
        let bytes = sink.out.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(text.lines().count(), 1);
        assert!(text.starts_with("[progress] p:"));
    }
}
