//! Minimal JSON encoding helpers (the offline dependency set has no
//! `serde_json`; structured run logs are written by hand).

/// Appends `s` to `out` as a JSON string escape body (no surrounding
/// quotes): `"` and `\` are backslash-escaped, control characters use the
/// short forms where JSON has them and `\u00XX` otherwise.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` as a quoted JSON string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Renders an `f64` as a JSON value (`null` for non-finite values, which
/// JSON cannot represent).
pub fn number_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; keep them valid but
        // recognizably floating-point for schema stability.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_backslashes() {
        assert_eq!(quote(r#"a"b\c"#), r#""a\"b\\c""#);
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(quote("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(quote("\u{01}"), "\"\\u0001\"");
        assert_eq!(quote("\u{08}\u{0c}\r"), "\"\\b\\f\\r\"");
    }

    #[test]
    fn passes_unicode_through() {
        assert_eq!(quote("µs → done"), "\"µs → done\"");
    }

    #[test]
    fn float_rendering() {
        assert_eq!(number_f64(1.5), "1.5");
        assert_eq!(number_f64(2.0), "2.0");
        assert_eq!(number_f64(f64::NAN), "null");
        assert_eq!(number_f64(f64::INFINITY), "null");
    }
}
