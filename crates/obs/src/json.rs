//! Minimal JSON encoding and decoding helpers (the offline dependency set
//! has no `serde_json`; structured run logs are written by hand, and
//! artifacts that must be read back — witness files, snapshots — are
//! parsed with the small [`Json`] reader below).

/// Appends `s` to `out` as a JSON string escape body (no surrounding
/// quotes): `"` and `\` are backslash-escaped, control characters use the
/// short forms where JSON has them and `\u00XX` otherwise.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

/// Returns `s` as a quoted JSON string.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Renders an `f64` as a JSON value (`null` for non-finite values, which
/// JSON cannot represent).
pub fn number_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` prints integral floats without a dot; keep them valid but
        // recognizably floating-point for schema stability.
        if s.contains('.') || s.contains('e') || s.contains('E') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "null".to_owned()
    }
}

/// A parsed JSON value.
///
/// Numbers keep their source lexeme (see [`Json::Num`]) so integer values
/// outside the exact-`f64` range survive a parse → re-render round trip,
/// and object members preserve their source order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, stored as its source lexeme (e.g. `"42"`, `"-1.5e3"`).
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, as an ordered member list.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and the byte offset it was noticed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

/// Nesting deeper than this is rejected rather than risking a stack
/// overflow on adversarial (or corrupted) input.
const MAX_DEPTH: usize = 128;

impl Json {
    /// Parses one JSON document. Trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] carrying the byte offset of the first
    /// problem: truncated input, stray characters, bad escapes, nesting
    /// deeper than 128 levels, or garbage after the document.
    pub fn parse(input: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after JSON document"));
        }
        Ok(value)
    }

    /// Looks up an object member by key (`None` for non-objects too).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if this is a non-negative integral number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(lex) => lex.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `i64`, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Num(lex) => lex.parse().ok(),
            _ => None,
        }
    }

    /// The value as an `f64`, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(lex) => lex.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b' ' | b'\t' | b'\n' | b'\r' => self.pos += 1,
                _ => break,
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected '{word}'")))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(b) => Err(self.err(format!("unexpected character '{}'", b as char))),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek().is_none() {
                return Err(self.err("unexpected end of input in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // High surrogate: require the paired low
                                // surrogate escape.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let second = self.hex4()?;
                                    if !(0xDC00..0xE000).contains(&second) {
                                        return Err(self.err("unpaired surrogate"));
                                    }
                                    let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                    char::from_u32(cp).ok_or_else(|| self.err("bad code point"))?
                                } else {
                                    return Err(self.err("unpaired surrogate"));
                                }
                            } else {
                                char::from_u32(first).ok_or_else(|| self.err("bad code point"))?
                            };
                            out.push(c);
                            continue; // hex4 already advanced past the digits
                        }
                        _ => return Err(self.err("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // Consume one whole UTF-8 scalar (input is a &str, so
                    // slicing at char boundaries is safe).
                    let rest = &self.bytes[self.pos..];
                    let len = utf8_len(rest[0]);
                    let chunk = rest
                        .get(..len)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos += len;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let digits = self
            .bytes
            .get(self.pos..self.pos + 4)
            .and_then(|d| std::str::from_utf8(d).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let v = u32::from_str_radix(digits, 16).map_err(|_| self.err("bad \\u escape digits"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let digits_start = self.pos;
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        if self.pos == digits_start {
            return Err(self.err("expected digits in number"));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let frac_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == frac_start {
                return Err(self.err("expected digits after decimal point"));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let exp_start = self.pos;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
            if self.pos == exp_start {
                return Err(self.err("expected digits in exponent"));
            }
        }
        let lexeme =
            std::str::from_utf8(&self.bytes[start..self.pos]).expect("number lexemes are ASCII");
        Ok(Json::Num(lexeme.to_owned()))
    }
}

/// Length in bytes of the UTF-8 sequence starting with `first`.
fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_and_backslashes() {
        assert_eq!(quote(r#"a"b\c"#), r#""a\"b\\c""#);
    }

    #[test]
    fn escapes_control_characters() {
        assert_eq!(quote("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(quote("\u{01}"), "\"\\u0001\"");
        assert_eq!(quote("\u{08}\u{0c}\r"), "\"\\b\\f\\r\"");
    }

    #[test]
    fn passes_unicode_through() {
        assert_eq!(quote("µs → done"), "\"µs → done\"");
    }

    #[test]
    fn float_rendering() {
        assert_eq!(number_f64(1.5), "1.5");
        assert_eq!(number_f64(2.0), "2.0");
        assert_eq!(number_f64(f64::NAN), "null");
        assert_eq!(number_f64(f64::INFINITY), "null");
    }

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("false").unwrap(), Json::Bool(false));
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("-7").unwrap().as_i64(), Some(-7));
        assert_eq!(Json::parse("1.5e2").unwrap().as_f64(), Some(150.0));
        assert_eq!(Json::parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn numbers_keep_their_lexeme() {
        // A u64 above 2^53 is not exactly representable as f64; the
        // lexeme-preserving representation keeps it exact.
        let big = u64::MAX.to_string();
        assert_eq!(Json::parse(&big).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn parses_nested_structures_preserving_order() {
        let doc = r#"{"b": [1, 2, {"c": null}], "a": "x"}"#;
        let v = Json::parse(doc).unwrap();
        let Json::Obj(members) = &v else { panic!() };
        assert_eq!(members[0].0, "b");
        assert_eq!(members[1].0, "a");
        assert_eq!(v.get("a").and_then(Json::as_str), Some("x"));
        let arr = v.get("b").and_then(Json::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[2].get("c"), Some(&Json::Null));
    }

    #[test]
    fn unescapes_strings() {
        let v = Json::parse(r#""a\nb\t\"c\"\u0041\u00b5""#).unwrap();
        assert_eq!(v.as_str(), Some("a\nb\t\"c\"Aµ"));
        // Surrogate pair: U+1F600.
        let v = Json::parse(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v.as_str(), Some("😀"));
    }

    #[test]
    fn quote_round_trips_through_parse() {
        for s in [
            "plain",
            "with \"quotes\"",
            "new\nline",
            "µs → done",
            "\u{01}",
        ] {
            let parsed = Json::parse(&quote(s)).unwrap();
            assert_eq!(parsed.as_str(), Some(s), "{s:?}");
        }
    }

    #[test]
    fn errors_carry_offsets_not_panics() {
        for (doc, needle) in [
            ("", "end of input"),
            ("{", "end of input"),
            ("[1, 2", "',' or ']'"),
            ("{\"a\" 1}", "':'"),
            ("tru", "'true'"),
            ("1x", "trailing"),
            ("\"abc", "unterminated"),
            ("\"\\q\"", "escape"),
            ("\"\\ud800\"", "surrogate"),
            ("01x", "trailing"),
            ("-", "digits"),
        ] {
            let err = Json::parse(doc).expect_err(doc);
            assert!(err.message.contains(needle), "{doc:?}: {err}");
            assert!(err.offset <= doc.len());
            // Display mentions the offset for diagnostics.
            assert!(err.to_string().contains("at byte"), "{err}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let doc = format!("{}1{}", "[".repeat(200), "]".repeat(200));
        let err = Json::parse(&doc).unwrap_err();
        assert!(err.message.contains("nesting"), "{err}");
    }

    #[test]
    fn every_prefix_of_a_document_errors_cleanly() {
        let doc = r#"{"schema":"lfm-trace/v1","n":[1,2,3],"s":"x\n\u0041"}"#;
        for cut in 1..doc.len() {
            if !doc.is_char_boundary(cut) {
                continue;
            }
            // Truncations must produce an error, never a panic or a
            // silently-accepted value.
            assert!(Json::parse(&doc[..cut]).is_err(), "cut at {cut}");
        }
    }
}
