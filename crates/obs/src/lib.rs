//! # lfm-obs — dependency-free observability primitives
//!
//! The instrumentation layer for the *Learning from Mistakes* reproduction.
//! The exploration sweeps behind the study's headline numbers run up to
//! 250k schedules per kernel; making those sweeps (and the detector and
//! STM substrates) measurably faster requires first being able to measure
//! them. This crate provides the building blocks, std-only to keep the
//! offline build constraint:
//!
//! - [`Counter`] — a relaxed atomic event counter;
//! - [`Histogram`] — a lock-free power-of-two value histogram with
//!   count / sum / min / max and percentile estimates;
//! - [`Stopwatch`] / [`Timing`] — monotonic wall-clock spans, one-shot or
//!   accumulated across entries;
//! - [`Sink`] — a pluggable structured-event consumer with four
//!   implementations: [`NoopSink`] (default; instrumented code must be
//!   bit-identical in results to uninstrumented code under it),
//!   [`MemorySink`] (in-memory snapshot for tests and `--stats`),
//!   [`JsonlSink`] (structured JSONL run logs for `--log-jsonl`), and
//!   [`ChromeTraceSink`] (Chrome trace-event JSON for Perfetto);
//! - [`StatsTable`] — aligned key/value rendering for `--stats` output;
//! - [`json`] — hand-rolled JSON writing plus the minimal [`json::Json`]
//!   reader used to load witness artifacts back;
//! - [`PhaseProfiler`] — sampling-gated phase-attributed profiling of
//!   the explorer hot path ("where did the wall time go");
//! - [`FlightRecorder`] — a bounded ring of recent events dumped as an
//!   `lfm-obs/v1` JSONL black box on panic or degraded exit;
//! - [`KnuthEstimator`] / [`ProgressTracker`] — online tree-size and
//!   throughput estimation behind `lfm explore --progress`;
//! - [`Registry`] — OpenMetrics/Prometheus text exposition for
//!   `--metrics <path>` (validated by [`check_exposition`]);
//! - [`TeeSink`] — broadcast one event stream to several sinks.
//!
//! # Determinism contract
//!
//! Instrumentation must never influence the instrumented computation:
//! sinks only *observe* [`Event`]s, and every counter/histogram/span is
//! write-only from the hot path. `lfm-sim` enforces this with a test that
//! exploration results are identical with and without a recording sink.
//!
//! # Example
//!
//! ```rust
//! use lfm_obs::{Counter, Event, MemorySink, Sink, Stopwatch, Value};
//!
//! let schedules = Counter::new();
//! let sw = Stopwatch::start();
//! for _ in 0..100 {
//!     schedules.inc();
//! }
//! let sink = MemorySink::new();
//! sink.emit(&Event {
//!     scope: "explore",
//!     name: "report",
//!     fields: &[
//!         ("schedules", Value::U64(schedules.get())),
//!         ("wall_us", Value::U64(sw.elapsed().as_micros() as u64)),
//!     ],
//! });
//! assert_eq!(sink.len(), 1);
//! assert_eq!(schedules.get(), 100);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod chrome;
mod counter;
mod histogram;
pub mod json;
mod openmetrics;
mod profile;
mod progress;
mod ring;
mod sink;
mod span;
mod stats;

pub use chrome::ChromeTraceSink;
pub use counter::Counter;
pub use histogram::{Histogram, HistogramSnapshot};
pub use openmetrics::{check_exposition, MetricKind, Registry};
pub use profile::{Phase, PhaseGuard, PhaseProfile, PhaseProfiler, PhaseStat, PHASES};
pub use progress::{
    eta_ms, render_progress_line, KnuthEstimator, ProgressLineSink, ProgressTracker,
};
pub use ring::{FlightRecorder, DEFAULT_CAPACITY, FLIGHT_SCHEMA};
pub use sink::{
    Event, JsonlSink, MemorySink, NoopSink, OwnedEvent, OwnedValue, Sink, TeeSink, Value,
};
pub use span::{fmt_duration, Span, Stopwatch, Timing};
pub use stats::StatsTable;
