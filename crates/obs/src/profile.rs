//! Phase-attributed profiling for the explorer hot path.
//!
//! [`PhaseProfiler`] answers "where did the wall time go" without
//! perturbing exploration results: the explorer tags each hot-path
//! region with a [`Phase`] (snapshot cloning, interpreter stepping,
//! state hashing, dedup probes, the detector pass, and the parallel
//! coordinator's commit/steal/idle loops), and the profiler attributes
//! elapsed nanoseconds to that phase.
//!
//! # Sampling and determinism
//!
//! Reading a monotonic clock on *every* region entry would make the
//! profiler the hottest function in the trace it is trying to explain.
//! Instead the profiler is **sampling-gated**: every region entry
//! increments a relaxed atomic counter, but only one entry in
//! 2^`sample_shift` actually reads the clock. The total per phase is
//! then estimated as `nanos * entries / sampled` — an unbiased
//! estimate when region durations are independent of the sample index,
//! which holds here because the sampling counter is per-phase and the
//! explorer's work per region does not correlate with powers of two.
//!
//! Crucially, the profiler is *write-only* from the explorer's point of
//! view: no branch of the exploration ever reads profiler state, so
//! reports stay bit-identical whether profiling is disabled, enabled,
//! or sampling at a different rate. The determinism suite pins this.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A hot-path region the explorer attributes time to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Snapshot work: copy-on-write clone/unshare or legacy deep clone.
    Snapshot,
    /// Interpreter stepping (`Exec::step` and the run-forward loop).
    Step,
    /// Incremental state hashing (`state_key`).
    Hash,
    /// Seen-set probe/insert for state dedup.
    Dedup,
    /// Detector pass over recorded events.
    Detect,
    /// Parallel coordinator: committing speculative expansions.
    Commit,
    /// Parallel worker: claiming/stealing tasks from the queues.
    Steal,
    /// Parallel worker: parked waiting for work.
    Idle,
}

/// Number of phases (length of [`Phase::ALL`]).
pub const PHASES: usize = 8;

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; PHASES] = [
        Phase::Snapshot,
        Phase::Step,
        Phase::Hash,
        Phase::Dedup,
        Phase::Detect,
        Phase::Commit,
        Phase::Steal,
        Phase::Idle,
    ];

    /// Stable lowercase name (used in events, metrics labels, tables).
    pub fn name(self) -> &'static str {
        match self {
            Phase::Snapshot => "snapshot",
            Phase::Step => "step",
            Phase::Hash => "hash",
            Phase::Dedup => "dedup",
            Phase::Detect => "detect",
            Phase::Commit => "commit",
            Phase::Steal => "steal",
            Phase::Idle => "idle",
        }
    }
}

#[derive(Debug, Default)]
struct PhaseSlot {
    /// Region entries observed (every entry counts).
    entries: AtomicU64,
    /// Entries that actually read the clock.
    sampled: AtomicU64,
    /// Nanoseconds accumulated by sampled entries.
    nanos: AtomicU64,
}

/// Sampling profiler attributing wall time to explorer [`Phase`]s.
///
/// Construct with [`PhaseProfiler::disabled`] (every call is a single
/// branch) or [`PhaseProfiler::sampling`]. Thread-safe: the parallel
/// explorer hands one profiler per worker and merges snapshots.
#[derive(Debug)]
pub struct PhaseProfiler {
    enabled: bool,
    /// Sample when `entries % 2^shift == 0`.
    mask: u64,
    slots: [PhaseSlot; PHASES],
}

impl PhaseProfiler {
    /// A profiler that records nothing; `enter` is one branch.
    pub fn disabled() -> PhaseProfiler {
        PhaseProfiler {
            enabled: false,
            mask: 0,
            slots: Default::default(),
        }
    }

    /// A profiler sampling one region entry in `2^sample_shift`.
    ///
    /// `sample_shift = 0` times every entry (useful in tests);
    /// [`PhaseProfiler::DEFAULT_SHIFT`] (6, i.e. every 64th) keeps
    /// overhead low on hot kernels. Shifts above 63 are clamped.
    pub fn sampling(sample_shift: u32) -> PhaseProfiler {
        let shift = sample_shift.min(63);
        PhaseProfiler {
            enabled: true,
            mask: (1u64 << shift) - 1,
            slots: Default::default(),
        }
    }

    /// Default sampling shift: every 64th region entry reads the clock.
    pub const DEFAULT_SHIFT: u32 = 6;

    /// `true` when this profiler records anything at all.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// The sampling shift this profiler was built with (0 when
    /// disabled).
    pub fn sample_shift(&self) -> u32 {
        self.mask.trailing_ones()
    }

    /// A fresh profiler with the same enablement and sampling shift —
    /// how the parallel explorer mints per-worker profilers that match
    /// the coordinator's configuration.
    pub fn like(&self) -> PhaseProfiler {
        if self.enabled {
            PhaseProfiler::sampling(self.sample_shift())
        } else {
            PhaseProfiler::disabled()
        }
    }

    /// Enters `phase`; drop the guard to close the region.
    ///
    /// Returns `None` (no clock read) when disabled or when this entry
    /// is not sampled.
    #[inline]
    pub fn enter(&self, phase: Phase) -> Option<PhaseGuard<'_>> {
        if !self.enabled {
            return None;
        }
        let slot = &self.slots[phase as usize];
        let n = slot.entries.fetch_add(1, Ordering::Relaxed);
        if n & self.mask != 0 {
            return None;
        }
        Some(PhaseGuard {
            slot,
            start: Instant::now(),
        })
    }

    /// Times `f` under `phase` and returns its result.
    #[inline]
    pub fn time<T>(&self, phase: Phase, f: impl FnOnce() -> T) -> T {
        let guard = self.enter(phase);
        let out = f();
        drop(guard);
        out
    }

    /// Immutable snapshot of every phase's counters.
    pub fn snapshot(&self) -> PhaseProfile {
        PhaseProfile {
            phases: Phase::ALL.map(|p| {
                let slot = &self.slots[p as usize];
                PhaseStat {
                    phase: p,
                    entries: slot.entries.load(Ordering::Relaxed),
                    sampled: slot.sampled.load(Ordering::Relaxed),
                    nanos: slot.nanos.load(Ordering::Relaxed),
                }
            }),
        }
    }
}

/// RAII guard closing a sampled phase region.
#[derive(Debug)]
pub struct PhaseGuard<'a> {
    slot: &'a PhaseSlot,
    start: Instant,
}

impl Drop for PhaseGuard<'_> {
    fn drop(&mut self) {
        let d = self.start.elapsed().as_nanos().min(u128::from(u64::MAX)) as u64;
        self.slot.sampled.fetch_add(1, Ordering::Relaxed);
        self.slot.nanos.fetch_add(d, Ordering::Relaxed);
    }
}

/// One phase's sampled counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseStat {
    /// Which phase.
    pub phase: Phase,
    /// Region entries observed.
    pub entries: u64,
    /// Entries that read the clock.
    pub sampled: u64,
    /// Nanoseconds accumulated by sampled entries.
    pub nanos: u64,
}

impl PhaseStat {
    /// Estimated total nanoseconds: `nanos * entries / sampled`.
    pub fn est_total_nanos(&self) -> u64 {
        if self.sampled == 0 {
            return 0;
        }
        let scaled = (self.nanos as f64) * (self.entries as f64) / (self.sampled as f64);
        if scaled.is_finite() && scaled >= 0.0 {
            scaled.min(u64::MAX as f64) as u64
        } else {
            0
        }
    }
}

/// Snapshot of a [`PhaseProfiler`] — one [`PhaseStat`] per phase.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseProfile {
    phases: [PhaseStat; PHASES],
}

impl PhaseProfile {
    /// An all-zero profile (identity for [`merge`](PhaseProfile::merge)).
    pub fn empty() -> PhaseProfile {
        PhaseProfile {
            phases: Phase::ALL.map(|phase| PhaseStat {
                phase,
                entries: 0,
                sampled: 0,
                nanos: 0,
            }),
        }
    }

    /// Stats per phase, in [`Phase::ALL`] order.
    pub fn phases(&self) -> &[PhaseStat] {
        &self.phases
    }

    /// The stat for one phase.
    pub fn get(&self, phase: Phase) -> PhaseStat {
        self.phases[phase as usize]
    }

    /// Accumulates `other` into `self` (e.g. across workers).
    pub fn merge(&mut self, other: &PhaseProfile) {
        for (mine, theirs) in self.phases.iter_mut().zip(other.phases.iter()) {
            mine.entries += theirs.entries;
            mine.sampled += theirs.sampled;
            mine.nanos += theirs.nanos;
        }
    }

    /// Sum of estimated totals across phases, in nanoseconds.
    pub fn est_grand_total_nanos(&self) -> u64 {
        self.phases
            .iter()
            .map(PhaseStat::est_total_nanos)
            .fold(0u64, u64::saturating_add)
    }

    /// `true` when no phase observed any entries.
    pub fn is_empty(&self) -> bool {
        self.phases.iter().all(|s| s.entries == 0)
    }

    /// Renders the profile as rows for a stats table: phase name,
    /// entries, sampled, estimated total, and share of the grand total.
    pub fn rows(&self) -> Vec<(String, String)> {
        let grand = self.est_grand_total_nanos();
        self.phases
            .iter()
            .filter(|s| s.entries > 0)
            .map(|s| {
                let est = s.est_total_nanos();
                let share = if grand > 0 {
                    100.0 * est as f64 / grand as f64
                } else {
                    0.0
                };
                (
                    format!("phase {}", s.phase.name()),
                    format!(
                        "{} ({share:.1}%, {} entries, {} sampled)",
                        crate::span::fmt_duration(std::time::Duration::from_nanos(est)),
                        s.entries,
                        s.sampled,
                    ),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_profiler_records_nothing() {
        let p = PhaseProfiler::disabled();
        assert!(!p.is_enabled());
        for _ in 0..100 {
            let g = p.enter(Phase::Step);
            assert!(g.is_none());
        }
        p.time(Phase::Hash, || ());
        let snap = p.snapshot();
        assert!(snap.is_empty());
        assert_eq!(snap.est_grand_total_nanos(), 0);
        assert!(snap.rows().is_empty());
    }

    #[test]
    fn sampling_shift_zero_times_every_entry() {
        let p = PhaseProfiler::sampling(0);
        assert!(p.is_enabled());
        for _ in 0..10 {
            p.time(Phase::Snapshot, || std::hint::black_box(1 + 1));
        }
        let s = p.snapshot().get(Phase::Snapshot);
        assert_eq!(s.entries, 10);
        assert_eq!(s.sampled, 10);
        // est_total scales nanos by entries/sampled == 1.
        assert_eq!(s.est_total_nanos(), s.nanos);
    }

    #[test]
    fn sampling_gates_clock_reads() {
        let p = PhaseProfiler::sampling(2); // every 4th
        for _ in 0..16 {
            p.time(Phase::Dedup, || ());
        }
        let s = p.snapshot().get(Phase::Dedup);
        assert_eq!(s.entries, 16);
        assert_eq!(s.sampled, 4);
    }

    #[test]
    fn est_total_scales_by_sampling_ratio() {
        let s = PhaseStat {
            phase: Phase::Step,
            entries: 64,
            sampled: 4,
            nanos: 1_000,
        };
        assert_eq!(s.est_total_nanos(), 16_000);
        let zero = PhaseStat {
            phase: Phase::Step,
            entries: 64,
            sampled: 0,
            nanos: 0,
        };
        assert_eq!(zero.est_total_nanos(), 0);
    }

    #[test]
    fn merge_accumulates_across_profiles() {
        let a = PhaseProfiler::sampling(0);
        let b = PhaseProfiler::sampling(0);
        a.time(Phase::Commit, || ());
        b.time(Phase::Commit, || ());
        b.time(Phase::Idle, || ());
        let mut merged = PhaseProfile::empty();
        merged.merge(&a.snapshot());
        merged.merge(&b.snapshot());
        assert_eq!(merged.get(Phase::Commit).entries, 2);
        assert_eq!(merged.get(Phase::Idle).entries, 1);
        let rows = merged.rows();
        assert_eq!(rows.len(), 2);
        assert!(rows[0].0.contains("commit"));
    }

    #[test]
    fn phase_names_are_stable_and_distinct() {
        let mut names: Vec<&str> = Phase::ALL.iter().map(|p| p.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), PHASES);
    }

    #[test]
    fn like_mirrors_enablement_and_shift() {
        let src = PhaseProfiler::sampling(3);
        let twin = src.like();
        assert!(twin.is_enabled());
        assert_eq!(twin.sample_shift(), 3);
        for _ in 0..16 {
            twin.time(Phase::Steal, || ());
        }
        assert_eq!(twin.snapshot().get(Phase::Steal).sampled, 2);
        let off = PhaseProfiler::disabled().like();
        assert!(!off.is_enabled());
    }

    #[test]
    fn extreme_shift_is_clamped() {
        let p = PhaseProfiler::sampling(200);
        p.time(Phase::Steal, || ());
        // First entry (index 0) is always sampled.
        assert_eq!(p.snapshot().get(Phase::Steal).sampled, 1);
    }
}
