//! Aligned key/value rendering for `--stats` style output.

use std::fmt;

use crate::histogram::HistogramSnapshot;

/// A titled block of key/value statistics rows, rendered with aligned
/// columns:
///
/// ```text
/// stats (buggy variant)
///   schedules           90
///   schedules/sec       1234567.9
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsTable {
    title: String,
    rows: Vec<(String, String)>,
}

impl StatsTable {
    /// Creates an empty block with a title.
    pub fn new(title: impl Into<String>) -> StatsTable {
        StatsTable {
            title: title.into(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row(&mut self, key: impl Into<String>, value: impl fmt::Display) -> &mut StatsTable {
        self.rows.push((key.into(), value.to_string()));
        self
    }

    /// Appends one row per headline statistic of a histogram snapshot:
    /// count, mean, min, p50, p90, p99 and max, each keyed
    /// `"{key} {stat}"`. Empty snapshots contribute a single count row.
    pub fn histogram(&mut self, key: &str, snap: &HistogramSnapshot) -> &mut StatsTable {
        self.row(format!("{key} count"), snap.count);
        if snap.count == 0 {
            return self;
        }
        self.row(format!("{key} mean"), format!("{:.1}", snap.mean()))
            .row(format!("{key} min"), snap.min)
            .row(format!("{key} p50"), snap.p50())
            .row(format!("{key} p90"), snap.p90())
            .row(format!("{key} p99"), snap.p99())
            .row(format!("{key} max"), snap.max)
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the block has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for StatsTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let width = self.rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (key, value) in &self.rows {
            writeln!(f, "  {key:width$}  {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = StatsTable::new("stats");
        t.row("schedules", 90u64).row("schedules/sec", "1234.5");
        let text = t.to_string();
        assert_eq!(
            text,
            "stats\n  schedules      90\n  schedules/sec  1234.5\n"
        );
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_table_is_title_only() {
        let t = StatsTable::new("nothing");
        assert_eq!(t.to_string(), "nothing\n");
        assert!(t.is_empty());
    }

    #[test]
    fn histogram_rows_include_percentiles() {
        let h = crate::Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let mut t = StatsTable::new("replay");
        t.histogram("steps", &h.snapshot());
        let text = t.to_string();
        for needle in [
            "steps count",
            "steps mean",
            "steps p50",
            "steps p90",
            "steps p99",
            "steps max",
        ] {
            assert!(text.contains(needle), "{needle} missing from:\n{text}");
        }
        assert_eq!(t.len(), 7);
    }

    #[test]
    fn empty_histogram_renders_count_only() {
        let mut t = StatsTable::new("replay");
        t.histogram("steps", &crate::Histogram::new().snapshot());
        assert_eq!(t.len(), 1);
        assert!(t.to_string().contains("steps count  0"));
    }
}
