//! Aligned key/value rendering for `--stats` style output.

use std::fmt;

/// A titled block of key/value statistics rows, rendered with aligned
/// columns:
///
/// ```text
/// stats (buggy variant)
///   schedules           90
///   schedules/sec       1234567.9
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsTable {
    title: String,
    rows: Vec<(String, String)>,
}

impl StatsTable {
    /// Creates an empty block with a title.
    pub fn new(title: impl Into<String>) -> StatsTable {
        StatsTable {
            title: title.into(),
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    pub fn row(&mut self, key: impl Into<String>, value: impl fmt::Display) -> &mut StatsTable {
        self.rows.push((key.into(), value.to_string()));
        self
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the block has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl fmt::Display for StatsTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.title)?;
        let width = self.rows.iter().map(|(k, _)| k.len()).max().unwrap_or(0);
        for (key, value) in &self.rows {
            writeln!(f, "  {key:width$}  {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_rows() {
        let mut t = StatsTable::new("stats");
        t.row("schedules", 90u64).row("schedules/sec", "1234.5");
        let text = t.to_string();
        assert_eq!(
            text,
            "stats\n  schedules      90\n  schedules/sec  1234.5\n"
        );
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn empty_table_is_title_only() {
        let t = StatsTable::new("nothing");
        assert_eq!(t.to_string(), "nothing\n");
        assert!(t.is_empty());
    }
}
