//! Chrome trace-event JSON output: a [`Sink`] that collects
//! `scope == "trace"` events into the Trace Event Format understood by
//! `chrome://tracing` and [Perfetto](https://ui.perfetto.dev).
//!
//! The producer (e.g. `lfm-sim`'s witness exporter) emits one structured
//! event per visible operation with the conventional field names below;
//! everything else becomes the event's `args` payload:
//!
//! - `ph` — the trace-event phase (`"i"` instant by default, `"X"` for
//!   complete spans with a duration, `"M"` for metadata records such as
//!   `process_name` / `thread_name`);
//! - `pid` / `tid` — process and thread ids (one pid per kernel, one tid
//!   per simulated thread; the serve tracer uses one pid per worker and
//!   one tid per request);
//! - `ts` — timestamp in microseconds (the witness exporter uses the
//!   event sequence number: one visible op = 1µs);
//! - `dur` — span duration in microseconds (`"X"` events only);
//! - `name` — overrides the event name shown on the track.

use std::io::Write as _;
use std::path::Path;
use std::sync::Mutex;

use crate::json;
use crate::sink::{Event, Sink, Value};

/// Collects `scope == "trace"` events as Chrome trace-event objects.
///
/// Events in other scopes are ignored, so the sink can be handed to
/// instrumented code that also emits `explore`/`detect` events without
/// polluting the trace file.
#[derive(Debug, Default)]
pub struct ChromeTraceSink {
    records: Mutex<Vec<String>>,
}

impl ChromeTraceSink {
    /// Creates an empty sink.
    pub fn new() -> ChromeTraceSink {
        ChromeTraceSink::default()
    }

    /// Number of trace records collected so far.
    pub fn len(&self) -> usize {
        self.records.lock().expect("chrome sink poisoned").len()
    }

    /// `true` when no trace records have been collected.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the collected records as one Chrome trace-event JSON
    /// document (`{"traceEvents":[...]}`), loadable in Perfetto.
    pub fn render(&self) -> String {
        let records = self.records.lock().expect("chrome sink poisoned");
        let mut out = String::from("{\"traceEvents\":[\n");
        for (i, record) in records.iter().enumerate() {
            if i > 0 {
                out.push_str(",\n");
            }
            out.push_str(record);
        }
        out.push_str("\n]}\n");
        out
    }

    /// Writes the rendered document to `path`.
    ///
    /// # Errors
    ///
    /// Propagates file creation and write failures.
    pub fn write_to(&self, path: impl AsRef<Path>) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.render().as_bytes())
    }
}

impl Sink for ChromeTraceSink {
    fn emit(&self, event: &Event<'_>) {
        if event.scope != "trace" {
            return;
        }
        let mut ph = "i".to_owned();
        let mut pid = 0u64;
        let mut tid = 0u64;
        let mut ts = 0u64;
        let mut dur = 0u64;
        let mut name_field = None;
        let mut args = String::new();
        let push_arg = |args: &mut String, key: &str, rendered: &str| {
            if !args.is_empty() {
                args.push(',');
            }
            args.push_str(&json::quote(key));
            args.push(':');
            args.push_str(rendered);
        };
        for (key, value) in event.fields {
            match (*key, value) {
                ("ph", Value::Str(s)) => ph = (*s).to_owned(),
                ("pid", Value::U64(v)) => pid = *v,
                ("tid", Value::U64(v)) => tid = *v,
                ("ts", Value::U64(v)) => ts = *v,
                ("dur", Value::U64(v)) => dur = *v,
                ("name", Value::Str(s)) => name_field = Some((*s).to_owned()),
                _ => push_arg(&mut args, key, &value.to_json()),
            }
        }
        let name = if ph == "M" {
            // Metadata records (process_name / thread_name) keep their
            // record name and carry the display name in args.name.
            if let Some(display) = name_field {
                push_arg(&mut args, "name", &json::quote(&display));
            }
            event.name.to_owned()
        } else {
            name_field.unwrap_or_else(|| event.name.to_owned())
        };
        let mut record = String::with_capacity(64 + args.len());
        record.push_str("{\"name\":");
        record.push_str(&json::quote(&name));
        record.push_str(&format!(",\"ph\":{}", json::quote(&ph)));
        record.push_str(&format!(",\"pid\":{pid},\"tid\":{tid}"));
        if ph == "i" {
            // Instant events carry a timestamp and a scope ("t" = thread).
            record.push_str(&format!(",\"ts\":{ts},\"s\":\"t\""));
        } else if ph == "X" {
            // Complete events carry the span's start and duration at the
            // top level — viewers ignore durations hidden in args.
            record.push_str(&format!(",\"ts\":{ts},\"dur\":{dur}"));
        }
        record.push_str(&format!(",\"args\":{{{args}}}}}"));
        self.records
            .lock()
            .expect("chrome sink poisoned")
            .push(record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn emit(sink: &ChromeTraceSink, scope: &str, name: &str, fields: &[(&str, Value<'_>)]) {
        sink.emit(&Event {
            scope,
            name,
            fields,
        });
    }

    #[test]
    fn collects_instant_events_with_conventional_fields() {
        let sink = ChromeTraceSink::new();
        emit(
            &sink,
            "trace",
            "write",
            &[
                ("pid", Value::U64(3)),
                ("tid", Value::U64(1)),
                ("ts", Value::U64(7)),
                ("name", Value::Str("counter = 1")),
                ("op", Value::Str("write")),
            ],
        );
        assert_eq!(sink.len(), 1);
        let doc = Json::parse(&sink.render()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        let e = &events[0];
        assert_eq!(e.get("name").and_then(Json::as_str), Some("counter = 1"));
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("i"));
        assert_eq!(e.get("s").and_then(Json::as_str), Some("t"));
        assert_eq!(e.get("pid").and_then(Json::as_u64), Some(3));
        assert_eq!(e.get("tid").and_then(Json::as_u64), Some(1));
        assert_eq!(e.get("ts").and_then(Json::as_u64), Some(7));
        let args = e.get("args").unwrap();
        assert_eq!(args.get("op").and_then(Json::as_str), Some("write"));
    }

    #[test]
    fn complete_events_carry_ts_and_dur_at_top_level() {
        let sink = ChromeTraceSink::new();
        emit(
            &sink,
            "trace",
            "explore",
            &[
                ("ph", Value::Str("X")),
                ("pid", Value::U64(2)),
                ("tid", Value::U64(9)),
                ("ts", Value::U64(1_500)),
                ("dur", Value::U64(250)),
                ("trace_id", Value::Str("00000000000000ff")),
            ],
        );
        let doc = Json::parse(&sink.render()).unwrap();
        let e = &doc.get("traceEvents").and_then(Json::as_array).unwrap()[0];
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("X"));
        assert_eq!(e.get("ts").and_then(Json::as_u64), Some(1_500));
        assert_eq!(e.get("dur").and_then(Json::as_u64), Some(250));
        // No instant-scope marker on spans.
        assert!(e.get("s").is_none());
        assert_eq!(
            e.get("args")
                .and_then(|a| a.get("trace_id"))
                .and_then(Json::as_str),
            Some("00000000000000ff")
        );
    }

    #[test]
    fn metadata_events_skip_timestamps() {
        let sink = ChromeTraceSink::new();
        emit(
            &sink,
            "trace",
            "process_name",
            &[
                ("ph", Value::Str("M")),
                ("pid", Value::U64(1)),
                ("name", Value::Str("abba")),
            ],
        );
        let doc = Json::parse(&sink.render()).unwrap();
        let e = &doc.get("traceEvents").and_then(Json::as_array).unwrap()[0];
        // The record keeps its metadata name; the display name moves into
        // args.name, where the trace viewers look for it.
        assert_eq!(e.get("name").and_then(Json::as_str), Some("process_name"));
        assert_eq!(
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some("abba")
        );
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("M"));
        assert!(e.get("ts").is_none());
        assert!(e.get("s").is_none());
    }

    #[test]
    fn escapes_quotes_and_backslashes_in_names() {
        let sink = ChromeTraceSink::new();
        emit(
            &sink,
            "trace",
            "write",
            &[
                ("ts", Value::U64(1)),
                ("name", Value::Str("say \"hi\" via C:\\path")),
                ("detail", Value::Str("arg with \"quotes\"")),
            ],
        );
        let rendered = sink.render();
        let doc = Json::parse(&rendered).expect("escaped output still parses");
        let e = &doc.get("traceEvents").and_then(Json::as_array).unwrap()[0];
        // The round-tripped strings match the originals exactly.
        assert_eq!(
            e.get("name").and_then(Json::as_str),
            Some("say \"hi\" via C:\\path")
        );
        assert_eq!(
            e.get("args")
                .and_then(|a| a.get("detail"))
                .and_then(Json::as_str),
            Some("arg with \"quotes\"")
        );
    }

    #[test]
    fn escapes_control_chars_in_thread_and_kernel_names() {
        let sink = ChromeTraceSink::new();
        // A hostile kernel/thread name: newline, tab, NUL, bell.
        let hostile = "thread\n\tname\u{0}\u{7}";
        emit(
            &sink,
            "trace",
            "thread_name",
            &[
                ("ph", Value::Str("M")),
                ("pid", Value::U64(1)),
                ("tid", Value::U64(2)),
                ("name", Value::Str(hostile)),
            ],
        );
        let rendered = sink.render();
        // Raw control characters never reach the document; they are
        // escaped (\n, \t, \u0000, \u0007).
        assert!(!rendered
            .chars()
            .any(|c| c.is_control() && c != '\n' && c != '\r'));
        assert!(rendered.contains("\\u0000"), "{rendered}");
        let doc = Json::parse(&rendered).expect("escaped output still parses");
        let e = &doc.get("traceEvents").and_then(Json::as_array).unwrap()[0];
        assert_eq!(
            e.get("args")
                .and_then(|a| a.get("name"))
                .and_then(Json::as_str),
            Some(hostile)
        );
    }

    #[test]
    fn escapes_hostile_event_names_and_phase_strings() {
        let sink = ChromeTraceSink::new();
        sink.emit(&Event {
            scope: "trace",
            name: "op \"x\"\\\n",
            fields: &[("ph", Value::Str("weird\"ph"))],
        });
        let rendered = sink.render();
        let doc = Json::parse(&rendered).expect("escaped output still parses");
        let e = &doc.get("traceEvents").and_then(Json::as_array).unwrap()[0];
        assert_eq!(e.get("name").and_then(Json::as_str), Some("op \"x\"\\\n"));
        assert_eq!(e.get("ph").and_then(Json::as_str), Some("weird\"ph"));
    }

    #[test]
    fn ignores_other_scopes() {
        let sink = ChromeTraceSink::new();
        emit(&sink, "explore", "report", &[("n", Value::U64(1))]);
        assert!(sink.is_empty());
    }

    #[test]
    fn render_is_valid_json_even_when_empty() {
        let sink = ChromeTraceSink::new();
        let doc = Json::parse(&sink.render()).unwrap();
        assert_eq!(
            doc.get("traceEvents")
                .and_then(Json::as_array)
                .map(<[Json]>::len),
            Some(0)
        );
    }
}
