//! Criterion bench: detector throughput over recorded traces.
//!
//! Measures the per-trace analysis cost of each detector family on the
//! E-detect workload (failure witnesses plus training runs).

use criterion::{criterion_group, criterion_main, Criterion};
use lfm_detect::{
    AtomicityDetector, HappensBeforeDetector, LockOrderDetector, LocksetDetector, OrderDetector,
};
use lfm_kernels::registry;
use lfm_sim::{explore::trace_of, Explorer, RandomWalker, Trace};

fn witness_trace(kernel_id: &str) -> Trace {
    let kernel = registry::by_id(kernel_id).expect("kernel exists");
    let program = kernel.buggy();
    let report = Explorer::new(&program).stop_on_first_failure().run();
    let (schedule, _) = report.first_failure.expect("buggy kernel manifests");
    trace_of(&program, &schedule, 5_000).0
}

fn training_traces(kernel_id: &str, n: u64) -> Vec<Trace> {
    let kernel = registry::by_id(kernel_id).expect("kernel exists");
    let program = kernel.buggy();
    RandomWalker::new(&program, 7)
        .collect_traces(n)
        .into_iter()
        .filter(|(_, o)| o.is_ok())
        .map(|(t, _)| t)
        .collect()
}

fn bench_detectors(c: &mut Criterion) {
    let trace = witness_trace("counter_rmw");
    let training = training_traces("counter_rmw", 12);

    let mut group = c.benchmark_group("detect");
    group.sample_size(10);
    group.bench_function("happens-before", |b| {
        let d = HappensBeforeDetector::new();
        b.iter(|| d.analyze(&trace).len())
    });
    group.bench_function("lockset", |b| {
        let d = LocksetDetector::new();
        b.iter(|| d.analyze(&trace).len())
    });
    group.bench_function("atomicity-train", |b| {
        b.iter(|| AtomicityDetector::train(training.iter()))
    });
    group.bench_function("atomicity-analyze", |b| {
        let d = AtomicityDetector::train(training.iter());
        b.iter(|| d.analyze(&trace).len())
    });
    group.bench_function("order-train", |b| {
        b.iter(|| OrderDetector::train(training.iter()))
    });
    group.bench_function("lock-order", |b| {
        let abba = witness_trace("abba");
        b.iter(|| LockOrderDetector::analyze([&abba]).len())
    });
    group.finish();
}

fn bench_trace_recording(c: &mut Criterion) {
    let kernel = registry::by_id("cache_pair_invariant").expect("kernel exists");
    let program = kernel.buggy();
    let mut group = c.benchmark_group("detect/recording-overhead");
    group.sample_size(10);
    group.bench_function("random-walk-no-record", |b| {
        b.iter(|| RandomWalker::new(&program, 1).run_trials(20).counts)
    });
    group.bench_function("random-walk-recorded", |b| {
        b.iter(|| RandomWalker::new(&program, 1).collect_traces(20).len())
    });
    group.finish();
}

criterion_group!(benches, bench_detectors, bench_trace_recording);
criterion_main!(benches);
