//! Criterion bench: corpus queries and table generation — the analysis
//! engine's own cost, regenerating the nine tables from scratch.

use criterion::{criterion_group, criterion_main, Criterion};
use lfm_corpus::{App, BugClass, Corpus, Pattern};
use lfm_study::{check_all, tables};

fn bench_corpus_load(c: &mut Criterion) {
    c.bench_function("tables/corpus-load", |b| {
        b.iter(|| {
            let corpus = Corpus::full();
            assert_eq!(corpus.len(), 105);
            corpus
        })
    });
}

fn bench_queries(c: &mut Criterion) {
    let corpus = Corpus::full();
    c.bench_function("tables/query-composed", |b| {
        b.iter(|| {
            corpus
                .query()
                .app(App::Mozilla)
                .class(BugClass::NonDeadlock)
                .pattern(Pattern::Atomicity)
                .count()
        })
    });
}

fn bench_all_tables(c: &mut Criterion) {
    let corpus = Corpus::full();
    c.bench_function("tables/generate-all-nine", |b| {
        b.iter(|| tables::all_tables(&corpus).len())
    });
}

fn bench_findings(c: &mut Criterion) {
    let corpus = Corpus::full();
    c.bench_function("tables/check-findings", |b| {
        b.iter(|| {
            let findings = check_all(&corpus);
            assert!(findings.iter().all(|f| f.holds()));
            findings.len()
        })
    });
}

criterion_group!(
    benches,
    bench_corpus_load,
    bench_queries,
    bench_all_tables,
    bench_findings
);
criterion_main!(benches);
