//! Criterion bench: TL2 STM vs. mutex under real parallelism.
//!
//! The executable counterpart of the study's Section-7 performance
//! caveats: transactions make the *bug* impossible, at a contention-
//! dependent cost. Measures single-word counters (worst case for TM) and
//! disjoint-word workloads (best case) against a `parking_lot` mutex.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfm_stm::TSpace;
use parking_lot::Mutex;

const OPS_PER_THREAD: usize = 200;

fn stm_contended(n_threads: usize) -> i64 {
    let space = Arc::new(TSpace::new(1));
    let handles: Vec<_> = (0..n_threads)
        .map(|_| {
            let space = Arc::clone(&space);
            std::thread::spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    space.atomically(|tx| {
                        let v = tx.read(0)?;
                        tx.write(0, v + 1);
                        Ok(())
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    space.read_now(0)
}

fn mutex_contended(n_threads: usize) -> i64 {
    let counter = Arc::new(Mutex::new(0i64));
    let handles: Vec<_> = (0..n_threads)
        .map(|_| {
            let counter = Arc::clone(&counter);
            std::thread::spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    *counter.lock() += 1;
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    let total = *counter.lock();
    total
}

fn stm_disjoint(n_threads: usize) -> i64 {
    let space = Arc::new(TSpace::new(n_threads));
    let handles: Vec<_> = (0..n_threads)
        .map(|i| {
            let space = Arc::clone(&space);
            std::thread::spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    space.atomically(|tx| {
                        let v = tx.read(i)?;
                        tx.write(i, v + 1);
                        Ok(())
                    });
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("worker panicked");
    }
    (0..n_threads).map(|i| space.read_now(i)).sum()
}

fn bench_contended_counter(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm/contended-counter");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("tl2", threads), &threads, |b, &t| {
            b.iter(|| {
                let total = stm_contended(t);
                assert_eq!(total, (t * OPS_PER_THREAD) as i64);
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("mutex", threads), &threads, |b, &t| {
            b.iter(|| {
                let total = mutex_contended(t);
                assert_eq!(total, (t * OPS_PER_THREAD) as i64);
                total
            })
        });
    }
    group.finish();
}

fn bench_disjoint_words(c: &mut Criterion) {
    let mut group = c.benchmark_group("stm/disjoint-words");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::new("tl2", threads), &threads, |b, &t| {
            b.iter(|| {
                let total = stm_disjoint(t);
                assert_eq!(total, (t * OPS_PER_THREAD) as i64);
                total
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_contended_counter, bench_disjoint_words);
criterion_main!(benches);
