//! Criterion bench: model-checker throughput per kernel family.
//!
//! Regenerates the exploration-cost side of the E-scope experiment: how
//! expensive exhaustive interleaving coverage is at the study's scopes
//! (2–3 threads, ≤ 4 ordering points), and how preemption bounding and
//! state deduplication change the cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lfm_kernels::registry;
use lfm_sim::{Explorer, RandomWalker};

fn bench_exhaustive_by_family(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore/exhaustive");
    group.sample_size(10);
    // One representative per family with a bounded exhaustive space
    // (livelock_retry's space is schedule-capped and benched under the
    // sleep-set group instead).
    for id in [
        "counter_rmw",
        "use_before_init_mozilla",
        "cache_pair_invariant",
        "abba",
    ] {
        let kernel = registry::by_id(id).expect("kernel exists");
        let program = kernel.buggy();
        group.bench_with_input(
            BenchmarkId::from_parameter(kernel.id),
            &program,
            |b, program| {
                b.iter(|| {
                    let report = Explorer::new(program).run();
                    assert!(report.counts.total() > 0);
                    report.schedules_run
                })
            },
        );
    }
    group.finish();
}

fn bench_preemption_bounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore/preemption-bound");
    group.sample_size(10);
    let kernel = registry::by_id("counter_rmw").expect("kernel exists");
    let program = kernel.buggy();
    for bound in [0u32, 1, 2] {
        group.bench_with_input(BenchmarkId::from_parameter(bound), &bound, |b, &bound| {
            b.iter(|| {
                Explorer::new(&program)
                    .preemption_bound(bound)
                    .run()
                    .schedules_run
            })
        });
    }
    group.bench_function("unbounded", |b| {
        b.iter(|| Explorer::new(&program).run().schedules_run)
    });
    group.finish();
}

fn bench_dedup_states(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore/dedup");
    group.sample_size(10);
    let kernel = registry::by_id("abba").expect("kernel exists");
    let tx = kernel
        .try_build(lfm_kernels::Variant::Fixed(
            lfm_kernels::FixKind::Transaction,
        ))
        .expect("abba has a TM fix");
    group.bench_function("tx-variant/no-dedup", |b| {
        b.iter(|| Explorer::new(&tx).run().schedules_run)
    });
    group.bench_function("tx-variant/dedup", |b| {
        b.iter(|| Explorer::new(&tx).dedup_states().run().schedules_run)
    });
    group.finish();
}

fn bench_sleep_sets(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore/sleep-sets");
    group.sample_size(10);
    for id in ["counter_rmw", "cache_pair_invariant", "lock_cycle_3"] {
        let kernel = registry::by_id(id).expect("kernel exists");
        let program = kernel.buggy();
        group.bench_with_input(BenchmarkId::new("full", id), &program, |b, p| {
            b.iter(|| Explorer::new(p).run().schedules_run)
        });
        group.bench_with_input(BenchmarkId::new("reduced", id), &program, |b, p| {
            b.iter(|| Explorer::new(p).sleep_sets().run().schedules_run)
        });
    }
    // livelock_retry's full space is schedule-capped (250k); only the
    // reduced exploration (729 schedule classes) is tractable to bench.
    let livelock = registry::by_id("livelock_retry").expect("kernel exists");
    let program = livelock.buggy();
    group.bench_with_input(
        BenchmarkId::new("reduced", "livelock_retry"),
        &program,
        |b, p| b.iter(|| Explorer::new(p).sleep_sets().run().schedules_run),
    );
    group.finish();
}

fn bench_random_walk(c: &mut Criterion) {
    let mut group = c.benchmark_group("explore/random-walk");
    group.sample_size(10);
    let kernel = registry::by_id("bank_withdraw").expect("kernel exists");
    let program = kernel.buggy();
    for trials in [10u64, 100] {
        group.bench_with_input(
            BenchmarkId::from_parameter(trials),
            &trials,
            |b, &trials| b.iter(|| RandomWalker::new(&program, 42).run_trials(trials).counts),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_exhaustive_by_family,
    bench_preemption_bounds,
    bench_dedup_states,
    bench_sleep_sets,
    bench_random_walk
);
criterion_main!(benches);
