//! E-obs: observability overhead on the exploration hot path.
//!
//! PR 6 instruments the explorer with phase-attributed profiling
//! ([`PhaseProfiler`]), online progress estimation (`progress_est`
//! events from a Knuth tree-size estimator), and an always-on flight
//! recorder in the CLI. All three are designed to be cheap enough to
//! leave on: profiling is sampling-gated, progress checks are amortized
//! over `PROGRESS_CHECK_EVERY` schedules, and the recorder is a bounded
//! ring. This experiment puts a number on "cheap enough" and re-states
//! the determinism contract: observation must never change the search.
//!
//! Measurement: on the two deepest kernels from an observation-off
//! sweep (deepest DFS stack — the hot path where per-choice overhead
//! compounds most), run the same exploration observation-off and
//! observation-on (profiler at the CLI's default sampling shift,
//! progress estimation at an aggressive 1ms cadence, events teed into a
//! flight recorder), interleaved best-of-N per mode. Reports are
//! checked field-for-field — including the bit pattern of the schedule
//! estimate — across every repetition.
//!
//! Like E-par and E-perf, the overhead percentage is a host property;
//! the report-equality column is the claim that must hold everywhere.
//! The target the table reports against is [`OBS_TARGET_PCT`].

use std::sync::Arc;
use std::time::Duration;

use lfm_kernels::registry;
use lfm_obs::{json, FlightRecorder, PhaseProfile, PhaseProfiler};
use lfm_sim::{ExploreLimits, Explorer};
use lfm_study::Table;

use crate::perf::reports_identical;

/// Schedule budget for the tables-binary run (same as E-perf's
/// `PERF_BUDGET`, so the two experiments describe the same workload).
pub const OBS_BUDGET: u64 = 2_000;

/// Overhead the instrumentation is budgeted for: observation-on runs
/// should cost at most this much states/sec throughput.
pub const OBS_TARGET_PCT: f64 = 10.0;

/// Timed repetitions per mode; each mode keeps its fastest wall (same
/// best-of-N rationale as E-perf: the minimum estimates what the code
/// costs, not what the host's scheduler did that millisecond).
const OBS_REPS: usize = 3;

/// Progress cadence for the observation-on runs: deliberately far more
/// aggressive than the CLI's default (250ms) so the measured overhead
/// upper-bounds what `--progress` costs in practice.
const OBS_PROGRESS_EVERY: Duration = Duration::from_millis(1);

/// One deep kernel's observation-off vs observation-on comparison.
#[derive(Debug, Clone)]
pub struct ObsRow {
    /// Kernel id.
    pub kernel: &'static str,
    /// Deepest DFS stack observed (why this kernel was picked).
    pub max_depth: u64,
    /// Observation-off states per second (fastest of N).
    pub off_states_per_sec: f64,
    /// Observation-on states per second (fastest of N).
    pub on_states_per_sec: f64,
    /// Throughput lost to observation, percent (negative = noise made
    /// the instrumented run faster).
    pub overhead_pct: f64,
    /// The estimator's tree-size prediction (identical in both modes).
    pub est_total_schedules: f64,
    /// The profiler phase that attributed the most estimated time.
    pub top_phase: String,
    /// Estimated nanoseconds attributed across all phases.
    pub profiled_nanos: u64,
    /// Events the flight recorder captured during the on-runs.
    pub recorded_events: u64,
    /// Whether every off/on repetition pair matched field-for-field
    /// (including `est_total_schedules` bits). Must hold on every host.
    pub identical: bool,
}

impl ObsRow {
    /// `true` when the measured overhead met [`OBS_TARGET_PCT`].
    pub fn within_target(&self) -> bool {
        self.overhead_pct <= OBS_TARGET_PCT
    }
}

/// The full E-obs measurement.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// Schedule budget each exploration was capped at.
    pub budget: u64,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_parallelism: usize,
    /// The two deepest kernels, deepest first.
    pub rows: Vec<ObsRow>,
}

impl ObsReport {
    /// `true` when every observation-on run reproduced the
    /// observation-off report.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical)
    }
}

fn explore_limits(max_schedules: u64) -> ExploreLimits {
    ExploreLimits {
        max_schedules,
        dedup_states: true,
        ..ExploreLimits::default()
    }
}

/// Runs the E-obs measurement: an observation-off depth sweep to pick
/// the two deepest kernels, then the interleaved off/on comparison.
pub fn obs_measure(max_schedules: u64) -> ObsReport {
    let limits = explore_limits(max_schedules);

    // Depth sweep (observation off), ties broken by id so the pick is
    // deterministic — the same selection rule E-perf uses.
    let mut by_depth: Vec<(u64, &'static str)> = registry::all()
        .iter()
        .map(|kernel| {
            let report = Explorer::new(&kernel.buggy()).limits(limits.clone()).run();
            (report.stats.max_depth, kernel.id)
        })
        .collect();
    by_depth.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(b.1)));

    let rows = by_depth
        .iter()
        .take(2)
        .map(|&(max_depth, id)| {
            let kernel = registry::by_id(id).expect("kernel came from the registry");
            let program = kernel.buggy();
            let recorder = Arc::new(FlightRecorder::new());
            let mut off_runs = Vec::new();
            let mut on_runs = Vec::new();
            let mut profiles = Vec::new();
            for _ in 0..OBS_REPS {
                off_runs.push(Explorer::new(&program).limits(limits.clone()).run());
                let profiler = Arc::new(PhaseProfiler::sampling(PhaseProfiler::DEFAULT_SHIFT));
                on_runs.push(
                    Explorer::new(&program)
                        .limits(limits.clone())
                        .with_sink(recorder.clone())
                        .profile(profiler.clone())
                        .progress_every(OBS_PROGRESS_EVERY)
                        .run(),
                );
                profiles.push(profiler.snapshot());
            }
            let fastest = |runs: &[lfm_sim::explore::ExploreReport]| {
                runs.iter()
                    .enumerate()
                    .min_by_key(|(_, r)| r.stats.wall)
                    .map(|(i, _)| i)
                    .expect("OBS_REPS > 0")
            };
            let identical = off_runs
                .iter()
                .zip(on_runs.iter())
                .all(|(off, on)| reports_identical(off, on));
            let profile = profiles.swap_remove(fastest(&on_runs));
            let off = off_runs.swap_remove(fastest(&off_runs));
            let on = on_runs.swap_remove(fastest(&on_runs));
            let off_rate = off.states_per_sec();
            let on_rate = on.states_per_sec();
            ObsRow {
                kernel: id,
                max_depth,
                off_states_per_sec: off_rate,
                on_states_per_sec: on_rate,
                overhead_pct: 100.0 * (1.0 - on_rate / off_rate.max(f64::MIN_POSITIVE)),
                est_total_schedules: on.est_total_schedules,
                top_phase: top_phase(&profile),
                profiled_nanos: profile.est_grand_total_nanos(),
                recorded_events: recorder.recorded(),
                identical,
            }
        })
        .collect();

    ObsReport {
        budget: max_schedules,
        host_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        rows,
    }
}

/// The phase with the largest estimated attributed time, or `-` for an
/// empty profile.
fn top_phase(profile: &PhaseProfile) -> String {
    profile
        .phases()
        .iter()
        .max_by_key(|s| s.est_total_nanos())
        .filter(|s| s.est_total_nanos() > 0)
        .map(|s| s.phase.name().to_string())
        .unwrap_or_else(|| "-".to_string())
}

/// Renders the measurement as the E-obs table.
pub fn obs_table(max_schedules: u64) -> Table {
    let report = obs_measure(max_schedules);
    let mut t = Table::new(
        "E-obs",
        format!(
            "Observability overhead on the two deepest kernels (budget {}, host parallelism {})",
            report.budget, report.host_parallelism
        ),
        vec![
            "kernel",
            "depth",
            "off states/sec",
            "on states/sec",
            "overhead",
            "est schedules",
            "top phase",
            "report",
        ],
    );
    for r in &report.rows {
        t.row(vec![
            r.kernel.to_string(),
            r.max_depth.to_string(),
            format!("{:.0}", r.off_states_per_sec),
            format!("{:.0}", r.on_states_per_sec),
            format!(
                "{:.1}% ({})",
                r.overhead_pct,
                if r.within_target() {
                    "<=10% target"
                } else {
                    "OVER target"
                }
            ),
            format!("{:.0}", r.est_total_schedules),
            r.top_phase.clone(),
            if r.identical {
                "identical".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ]);
    }
    t.note(
        "observation-on = phase profiler at the CLI's default sampling \
         shift + progress estimation every 1ms (40x the CLI cadence) + \
         events teed into a bounded flight recorder; best-of-3 per mode, \
         interleaved",
    );
    t.note(
        "overhead is a host property; the `report` column is the \
         determinism claim — with observation on, every ExploreReport \
         field (including the bit pattern of the schedule estimate) must \
         match the observation-off run on every host",
    );
    t
}

/// Serializes the measurement as a JSON fragment (embedded in the
/// `lfm-obs/v1` snapshot).
pub fn obs_json(report: &ObsReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"budget\":{},\"host_parallelism\":{},\"target_overhead_pct\":{},\
         \"reports_identical\":{},\"deepest\":[",
        report.budget,
        report.host_parallelism,
        json::number_f64(OBS_TARGET_PCT),
        report.all_identical(),
    );
    for (i, r) in report.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"kernel\":{},\"max_depth\":{},\"off_states_per_sec\":{},\
             \"on_states_per_sec\":{},\"overhead_pct\":{},\"est_total_schedules\":{},\
             \"top_phase\":{},\"profiled_nanos\":{},\"recorded_events\":{},\
             \"reports_identical\":{}}}",
            json::quote(r.kernel),
            r.max_depth,
            json::number_f64(r.off_states_per_sec),
            json::number_f64(r.on_states_per_sec),
            json::number_f64(r.overhead_pct),
            json::number_f64(r.est_total_schedules),
            json::quote(&r.top_phase),
            r.profiled_nanos,
            r.recorded_events,
            r.identical,
        );
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    // Timing columns are host noise; the stable assertions are the
    // selection shape, the determinism flags, and that the profiler and
    // recorder actually observed the runs they claim to describe.
    #[test]
    fn deepest_two_are_measured_and_observation_changes_nothing() {
        let report = obs_measure(150);
        assert_eq!(report.rows.len(), 2);
        assert!(report.all_identical());
        assert_ne!(report.rows[0].kernel, report.rows[1].kernel);
        assert!(report.rows[0].max_depth >= report.rows[1].max_depth);
        for r in &report.rows {
            assert!(r.max_depth > 0, "{}: no depth", r.kernel);
            assert!(r.est_total_schedules > 0.0, "{}: no estimate", r.kernel);
            assert!(
                r.recorded_events > 0,
                "{}: flight recorder saw nothing",
                r.kernel
            );
        }
    }

    #[test]
    fn obs_table_has_expected_shape() {
        let t = obs_table(100);
        assert_eq!(t.id, "E-obs");
        assert_eq!(t.len(), 2);
        let rendered = t.to_string();
        assert!(rendered.contains("target"));
        assert!(!rendered.contains("DIVERGED"));
    }

    #[test]
    fn obs_json_is_balanced_and_tagged() {
        let report = obs_measure(100);
        let doc = obs_json(&report);
        assert!(doc.starts_with("{\"budget\":"));
        assert!(doc.contains("\"reports_identical\":true"));
        assert!(doc.contains("\"target_overhead_pct\":10"));
        let opens = doc.matches('{').count() + doc.matches('[').count();
        let closes = doc.matches('}').count() + doc.matches(']').count();
        assert_eq!(opens, closes);
    }
}
