//! E-dpor: source-set DPOR schedule reduction vs full enumeration.
//!
//! The serial explorer's `dpor` mode replaces enumeration of every
//! interleaving with one representative per Mazurkiewicz trace class
//! plus the backtrack points the race scan proves necessary. This
//! experiment runs both modes over every kernel's buggy variant (dedup
//! and sleep sets off, so the comparison isolates DPOR itself) and
//! records, per kernel: schedules run, whether each search completed
//! within the budget, the reduction factor, and whether the two
//! outcome *sets* agree.
//!
//! The outcome-set oracle mirrors the `dpor_equivalence` suite: `Ok`
//! and `Deadlock` final states are invariants of a trace class, so
//! their full `state_key` is owed; aborting outcomes cut execution
//! mid-class — machine state at the cut varies with independent
//! other-thread progress, which is exactly what DPOR prunes — so only
//! their display form is compared. Sets are only compared when both
//! searches ran to completion (a truncated search is not
//! equivalence-closed).
//!
//! Unlike E-perf and E-par, everything here is **deterministic**:
//! schedule counts are a property of the search, not the host, so the
//! CI gate ([`DporReport::gate_failures`]) holds everywhere, including
//! single-core runners where the throughput gates are skipped.

use std::collections::BTreeSet;

use lfm_kernels::registry;
use lfm_sim::{ExploreLimits, ExploreReport, Explorer, Outcome, Program};
use lfm_study::Table;

/// Schedule budget for the committed `BENCH_explore.json` DPOR section
/// and the CI gate. Large enough that DPOR finishes every kernel
/// exhaustively; full enumeration is allowed to truncate (the
/// reduction factor is then a lower bound).
pub const DPOR_BUDGET: u64 = 100_000;

/// Minimum schedule-reduction factor the two deepest kernels must
/// show. The deepest state spaces are where partial-order reduction
/// earns its keep; anything under 2x there means the race scan has
/// effectively degraded to full enumeration.
pub const DPOR_FLOOR: f64 = 2.0;

/// One kernel's full-enumeration vs DPOR comparison.
#[derive(Debug, Clone)]
pub struct DporRow {
    /// Kernel id.
    pub kernel: &'static str,
    /// The kernel's bug family.
    pub family: String,
    /// Deepest DFS stack observed by the DPOR search.
    pub max_depth: u64,
    /// Schedules full enumeration ran (at most the budget).
    pub full_schedules: u64,
    /// Whether full enumeration finished exhaustively (no truncation,
    /// no step-capped leaf).
    pub full_complete: bool,
    /// Schedules the DPOR search ran.
    pub dpor_schedules: u64,
    /// Whether the DPOR search finished exhaustively.
    pub dpor_complete: bool,
    /// `full_schedules / dpor_schedules` — a lower bound on the true
    /// reduction when full enumeration truncated.
    pub reduction: f64,
    /// Whether both searches completed, making the outcome sets
    /// comparable.
    pub compared: bool,
    /// `true` when the outcome sets agree (vacuously `true` for rows
    /// that were not compared).
    pub outcomes_match: bool,
}

/// The full E-dpor measurement.
#[derive(Debug, Clone)]
pub struct DporReport {
    /// Schedule budget both searches were capped at.
    pub budget: u64,
    /// Per-kernel rows, in registry order.
    pub rows: Vec<DporRow>,
}

impl DporReport {
    /// The row for `kernel`, if that kernel was measured.
    pub fn row(&self, kernel: &str) -> Option<&DporRow> {
        self.rows.iter().find(|r| r.kernel == kernel)
    }

    /// The two deepest kernels (ties broken by id), the rows the
    /// reduction floor applies to.
    pub fn deepest(&self) -> Vec<&DporRow> {
        let mut rows: Vec<&DporRow> = self.rows.iter().collect();
        rows.sort_by(|a, b| b.max_depth.cmp(&a.max_depth).then(a.kernel.cmp(b.kernel)));
        rows.truncate(2);
        rows
    }

    /// The CI gate, as human-readable failures (empty means pass):
    /// every compared row's outcome sets must agree, at least one row
    /// must actually have been compared, and the two deepest kernels
    /// must complete under DPOR with at least [`DPOR_FLOOR`] reduction.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        for r in &self.rows {
            if !r.outcomes_match {
                failures.push(format!(
                    "{}: DPOR outcome set diverged from full enumeration",
                    r.kernel
                ));
            }
        }
        if !self.rows.iter().any(|r| r.compared) {
            failures.push("no kernel completed both searches; outcome oracle never ran".into());
        }
        for r in self.deepest() {
            if !r.dpor_complete {
                failures.push(format!(
                    "{}: DPOR search truncated at budget {} — cannot bound the reduction",
                    r.kernel, self.budget
                ));
            } else if r.reduction < DPOR_FLOOR {
                failures.push(format!(
                    "{}: reduction {:.2}x below the {DPOR_FLOOR:.1}x floor \
                     ({} full vs {} dpor schedules)",
                    r.kernel, r.reduction, r.full_schedules, r.dpor_schedules
                ));
            }
        }
        failures
    }
}

fn limits(dpor: bool, max_schedules: u64) -> ExploreLimits {
    ExploreLimits {
        max_schedules,
        dedup_states: false,
        sleep_sets: false,
        dpor,
        // Step fusion off on both sides: E-dpor isolates DPOR's own
        // reduction against the seed's full-enumeration baseline, and
        // E-fuse measures fusion separately. (Fusion would also let
        // full enumeration *complete* `livelock_retry` inside the
        // budget, firing the outcome oracle on a known pre-existing
        // source-set DPOR gap there — see ROADMAP.)
        fuse: false,
        ..ExploreLimits::default()
    }
}

type OutcomeSet = BTreeSet<(String, u64)>;

fn explore(program: &Program, dpor: bool, budget: u64) -> (ExploreReport, OutcomeSet) {
    let mut set = OutcomeSet::new();
    let report = Explorer::new(program)
        .limits(limits(dpor, budget))
        .run_with_callback(|exec, outcome| {
            let keyed = matches!(outcome, Outcome::Ok | Outcome::Deadlock { .. });
            set.insert((
                outcome.to_string(),
                if keyed { exec.state_key() } else { 0 },
            ));
        });
    (report, set)
}

fn complete(report: &ExploreReport) -> bool {
    !report.truncated && report.counts.step_limit == 0
}

/// Runs the E-dpor measurement: full enumeration vs DPOR on every
/// kernel's buggy variant at the given schedule budget.
pub fn dpor_measure(budget: u64) -> DporReport {
    let mut rows = Vec::new();
    for kernel in registry::all() {
        let program = kernel.buggy();
        let (full, full_set) = explore(&program, false, budget);
        let (reduced, reduced_set) = explore(&program, true, budget);
        let full_complete = complete(&full);
        let dpor_complete = complete(&reduced);
        let compared = full_complete && dpor_complete;
        rows.push(DporRow {
            kernel: kernel.id,
            family: kernel.family.to_string(),
            max_depth: reduced.stats.max_depth,
            full_schedules: full.schedules_run,
            full_complete,
            dpor_schedules: reduced.schedules_run,
            dpor_complete,
            reduction: full.schedules_run as f64 / reduced.schedules_run.max(1) as f64,
            compared,
            outcomes_match: !compared || full_set == reduced_set,
        });
    }
    DporReport { budget, rows }
}

/// Renders the measurement as the E-dpor table.
pub fn dpor_table(budget: u64) -> Table {
    let report = dpor_measure(budget);
    let deepest: Vec<&'static str> = report.deepest().iter().map(|r| r.kernel).collect();
    let mut t = Table::new(
        "E-dpor",
        format!(
            "Source-set DPOR vs full enumeration ({} kernels, budget {})",
            report.rows.len(),
            report.budget
        ),
        vec![
            "kernel",
            "family",
            "depth",
            "full",
            "dpor",
            "reduction",
            "outcomes",
        ],
    );
    for r in &report.rows {
        let gated = deepest.contains(&r.kernel);
        t.row(vec![
            if gated {
                format!("{} *", r.kernel)
            } else {
                r.kernel.to_string()
            },
            r.family.clone(),
            r.max_depth.to_string(),
            if r.full_complete {
                r.full_schedules.to_string()
            } else {
                format!("{}+", r.full_schedules)
            },
            r.dpor_schedules.to_string(),
            format!(
                "{}{:.2}x",
                if r.full_complete { "" } else { ">=" },
                r.reduction
            ),
            if !r.compared {
                "(truncated)".to_string()
            } else if r.outcomes_match {
                "identical".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ]);
    }
    t.note(
        "full enumeration and DPOR both run with dedup and sleep sets off; \
         `N+` marks a search truncated at the budget, making the reduction a \
         lower bound; `outcomes` compares {outcome kind, final state for \
         ok/deadlock} sets and only when both searches completed",
    );
    t.note(format!(
        "* CI gate rows (the two deepest kernels): DPOR must complete and \
         reduce schedules by at least {DPOR_FLOOR:.1}x; schedule counts are \
         deterministic, so unlike the throughput gates this holds on every \
         host"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_holds_at_the_reference_budget() {
        let report = dpor_measure(DPOR_BUDGET);
        assert_eq!(report.rows.len(), registry::all().len());
        let failures = report.gate_failures();
        assert!(failures.is_empty(), "{failures:?}");
        let deepest = report.deepest();
        assert_eq!(deepest.len(), 2);
        assert_ne!(deepest[0].kernel, deepest[1].kernel);
        for r in deepest {
            assert!(r.dpor_complete, "{}: dpor truncated", r.kernel);
            assert!(
                r.reduction >= DPOR_FLOOR,
                "{}: reduction {:.2}",
                r.kernel,
                r.reduction
            );
        }
        // The oracle must actually fire on most kernels: only the very
        // deepest state spaces may outgrow full enumeration's budget.
        let compared = report.rows.iter().filter(|r| r.compared).count();
        assert!(compared * 2 > report.rows.len(), "only {compared} compared");
    }

    #[test]
    fn gate_failures_catch_divergence_and_shallow_reduction() {
        let mut report = dpor_measure(1); // everything truncates
        assert!(!report.gate_failures().is_empty(), "nothing compared");
        report.rows[0].compared = true;
        report.rows[0].outcomes_match = false;
        let failures = report.gate_failures();
        assert!(
            failures.iter().any(|f| f.contains("diverged")),
            "{failures:?}"
        );
    }

    #[test]
    fn dpor_table_has_expected_shape() {
        let t = dpor_table(DPOR_BUDGET);
        assert_eq!(t.id, "E-dpor");
        assert_eq!(t.len(), registry::all().len());
        let rendered = t.to_string();
        assert!(rendered.contains(" *"), "gate rows are marked");
        assert!(rendered.contains("identical"));
        assert!(!rendered.contains("DIVERGED"));
    }
}
