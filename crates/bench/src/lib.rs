//! # lfm-bench — benchmark harness and table regenerator
//!
//! Two entry points:
//!
//! - the **`tables` binary** (`cargo run -p lfm-bench --bin tables`)
//!   regenerates every table (T1–T9), figure demo (F1–F5) and implication
//!   experiment (E-scope, E-detect, E-tm, E-chaos, E-par, E-perf, E-dpor,
//!   E-fuse, E-wit, E-obs) of the study; pass
//!   `--only <id>` to print one artifact, `--markdown` for Markdown;
//! - the **criterion benches** (`cargo bench -p lfm-bench`) measure the
//!   substrates: exploration throughput per kernel family, detector
//!   throughput, TL2 STM vs. mutex scaling, and table generation.
//!
//! The `tables` binary additionally accepts `--json <path>` to write an
//! `lfm-obs/v1` metrics snapshot (see [`snapshot`]).

#![warn(missing_docs)]

pub mod chaos;
pub mod dpor;
pub mod fuse;
pub mod obs;
pub mod par;
pub mod perf;
pub mod serve;
pub mod snapshot;

pub use chaos::{chaos_comparison, chaos_table, ChaosRow};
pub use dpor::{dpor_measure, dpor_table, DporReport, DporRow, DPOR_BUDGET, DPOR_FLOOR};
pub use fuse::{
    fuse_measure, fuse_table, FuseReport, FuseRow, FUSE_BUDGET, FUSE_FLOOR, FUSE_GATE_KERNELS,
};
pub use obs::{obs_json, obs_measure, obs_table, ObsReport, ObsRow, OBS_BUDGET, OBS_TARGET_PCT};
pub use par::{par_scaling, par_table, ParRow, ParScaling};
pub use perf::{
    baseline_dpor_schedules, baseline_fused_schedules, baseline_states_per_sec, perf_json,
    perf_measure, perf_table, PerfReport, PerfRow, PerfSpeedup, BENCH_EXPLORE_SCHEMA, PERF_BUDGET,
    PERF_GATE_KERNEL,
};
pub use serve::{
    baseline_requests_per_sec, serve_json, serve_measure, serve_table, trace_overhead_measure,
    ServeReport, ServeRow, BENCH_SERVE_SCHEMA, SERVE_GATE_SCENARIO, SERVE_SEED,
    SERVE_TRACE_SCENARIO,
};
pub use snapshot::{obs_snapshot, SNAPSHOT_SCHEMA};

use std::panic::{catch_unwind, AssertUnwindSafe};

use lfm_corpus::Corpus;
use lfm_study::experiments::{
    coverage_growth_table, coverage_table, scheduler_table, scope_table, tm_table, witness_table,
};
use lfm_study::figures;
use lfm_study::tables;
use lfm_study::Table;

/// Everything the harness can regenerate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Artifact {
    /// One of the nine tables.
    Table(u8),
    /// One of the five figure demos.
    Figure(u8),
    /// E-scope.
    Scope,
    /// E-detect.
    Detect,
    /// E-test.
    SchedTest,
    /// E-cov.
    CoverageGrowth,
    /// E-tm.
    Tm,
    /// E-chaos.
    Chaos,
    /// E-par.
    Par,
    /// E-perf.
    Perf,
    /// E-dpor.
    Dpor,
    /// E-fuse.
    Fuse,
    /// E-wit.
    Witness,
    /// E-obs.
    Obs,
    /// E-serve.
    Serve,
    /// The findings checker.
    Findings,
}

impl Artifact {
    /// Parses an artifact selector like `t3`, `f1`, `escope`, `findings`.
    pub fn parse(s: &str) -> Option<Artifact> {
        let s = s.to_ascii_lowercase();
        match s.as_str() {
            "escope" | "e-scope" => Some(Artifact::Scope),
            "edetect" | "e-detect" => Some(Artifact::Detect),
            "etest" | "e-test" => Some(Artifact::SchedTest),
            "ecov" | "e-cov" => Some(Artifact::CoverageGrowth),
            "etm" | "e-tm" => Some(Artifact::Tm),
            "echaos" | "e-chaos" => Some(Artifact::Chaos),
            "epar" | "e-par" => Some(Artifact::Par),
            "eperf" | "e-perf" => Some(Artifact::Perf),
            "edpor" | "e-dpor" => Some(Artifact::Dpor),
            "efuse" | "e-fuse" => Some(Artifact::Fuse),
            "ewit" | "e-wit" => Some(Artifact::Witness),
            "eobs" | "e-obs" => Some(Artifact::Obs),
            "eserve" | "e-serve" => Some(Artifact::Serve),
            "findings" => Some(Artifact::Findings),
            _ if s.len() >= 2 => {
                let (kind, num) = s.split_at(1);
                let n: u8 = num.parse().ok()?;
                match kind {
                    "t" if (1..=9).contains(&n) => Some(Artifact::Table(n)),
                    "f" if (1..=5).contains(&n) => Some(Artifact::Figure(n)),
                    _ => None,
                }
            }
            _ => None,
        }
    }

    /// All artifacts in presentation order.
    pub fn all() -> Vec<Artifact> {
        let mut v = vec![Artifact::Findings];
        v.extend((1..=9).map(Artifact::Table));
        v.extend((1..=5).map(Artifact::Figure));
        v.extend([
            Artifact::Scope,
            Artifact::Detect,
            Artifact::SchedTest,
            Artifact::CoverageGrowth,
            Artifact::Tm,
            Artifact::Chaos,
            Artifact::Par,
            Artifact::Perf,
            Artifact::Dpor,
            Artifact::Fuse,
            Artifact::Witness,
            Artifact::Obs,
            Artifact::Serve,
        ]);
        v
    }

    /// The canonical selector for this artifact (the string [`parse`]
    /// accepts and the `LFM_INJECT_PANIC` hook matches against).
    ///
    /// [`parse`]: Artifact::parse
    pub fn id(&self) -> String {
        match self {
            Artifact::Table(n) => format!("t{n}"),
            Artifact::Figure(n) => format!("f{n}"),
            Artifact::Scope => "escope".to_string(),
            Artifact::Detect => "edetect".to_string(),
            Artifact::SchedTest => "etest".to_string(),
            Artifact::CoverageGrowth => "ecov".to_string(),
            Artifact::Tm => "etm".to_string(),
            Artifact::Chaos => "echaos".to_string(),
            Artifact::Par => "epar".to_string(),
            Artifact::Perf => "eperf".to_string(),
            Artifact::Dpor => "edpor".to_string(),
            Artifact::Fuse => "efuse".to_string(),
            Artifact::Witness => "ewit".to_string(),
            Artifact::Obs => "eobs".to_string(),
            Artifact::Serve => "eserve".to_string(),
            Artifact::Findings => "findings".to_string(),
        }
    }

    /// Renders the artifact (plain text or Markdown).
    pub fn render(&self, corpus: &Corpus, markdown: bool) -> String {
        let table = |t: Table| {
            if markdown {
                t.to_markdown()
            } else {
                t.to_string()
            }
        };
        match self {
            Artifact::Table(n) => {
                let t = match n {
                    1 => tables::table1(corpus),
                    2 => tables::table2(corpus),
                    3 => tables::table3(corpus),
                    4 => tables::table4(corpus),
                    5 => tables::table5(corpus),
                    6 => tables::table6(corpus),
                    7 => tables::table7(corpus),
                    8 => tables::table8(corpus),
                    9 => tables::table9(corpus),
                    _ => unreachable!("validated by parse"),
                };
                table(t)
            }
            Artifact::Figure(n) => {
                let f = match n {
                    1 => figures::figure1(),
                    2 => figures::figure2(),
                    3 => figures::figure3(),
                    4 => figures::figure4(),
                    5 => figures::figure5(),
                    _ => unreachable!("validated by parse"),
                };
                f.to_string()
            }
            Artifact::Scope => table(scope_table()),
            Artifact::Detect => table(coverage_table()),
            Artifact::SchedTest => table(scheduler_table(100)),
            Artifact::CoverageGrowth => table(coverage_growth_table()),
            Artifact::Tm => table(tm_table(corpus)),
            Artifact::Chaos => table(chaos::chaos_table(200)),
            Artifact::Par => table(par::par_table(20_000)),
            Artifact::Perf => table(perf::perf_table(perf::PERF_BUDGET)),
            Artifact::Dpor => table(dpor::dpor_table(dpor::DPOR_BUDGET)),
            Artifact::Fuse => table(fuse::fuse_table(fuse::FUSE_BUDGET)),
            Artifact::Witness => table(witness_table()),
            Artifact::Obs => table(obs::obs_table(obs::OBS_BUDGET)),
            Artifact::Serve => table(serve::serve_table()),
            Artifact::Findings => {
                let mut out = String::from("Findings (paper vs measured)\n");
                for f in lfm_study::check_all(corpus) {
                    out.push_str(&format!("{f}\n"));
                }
                out
            }
        }
    }

    /// [`render`](Artifact::render) under `catch_unwind`: a panicking
    /// generator becomes `Err(payload)` so the caller can report the
    /// failure, keep regenerating the other artifacts, and exit
    /// degraded instead of aborting.
    ///
    /// Setting `LFM_INJECT_PANIC=<artifact-id>` forces a panic inside
    /// this artifact's render — the test hook proving the containment
    /// path end to end.
    pub fn render_isolated(&self, corpus: &Corpus, markdown: bool) -> Result<String, String> {
        catch_unwind(AssertUnwindSafe(|| {
            if std::env::var("LFM_INJECT_PANIC").as_deref() == Ok(self.id().as_str()) {
                panic!("injected panic for artifact {}", self.id());
            }
            self.render(corpus, markdown)
        }))
        .map_err(|payload| {
            if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_owned()
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_selectors() {
        assert_eq!(Artifact::parse("t1"), Some(Artifact::Table(1)));
        assert_eq!(Artifact::parse("T9"), Some(Artifact::Table(9)));
        assert_eq!(Artifact::parse("f5"), Some(Artifact::Figure(5)));
        assert_eq!(Artifact::parse("escope"), Some(Artifact::Scope));
        assert_eq!(Artifact::parse("e-tm"), Some(Artifact::Tm));
        assert_eq!(Artifact::parse("etest"), Some(Artifact::SchedTest));
        assert_eq!(Artifact::parse("echaos"), Some(Artifact::Chaos));
        assert_eq!(Artifact::parse("e-chaos"), Some(Artifact::Chaos));
        assert_eq!(Artifact::parse("epar"), Some(Artifact::Par));
        assert_eq!(Artifact::parse("e-par"), Some(Artifact::Par));
        assert_eq!(Artifact::parse("eperf"), Some(Artifact::Perf));
        assert_eq!(Artifact::parse("e-perf"), Some(Artifact::Perf));
        assert_eq!(Artifact::parse("edpor"), Some(Artifact::Dpor));
        assert_eq!(Artifact::parse("e-dpor"), Some(Artifact::Dpor));
        assert_eq!(Artifact::parse("efuse"), Some(Artifact::Fuse));
        assert_eq!(Artifact::parse("e-fuse"), Some(Artifact::Fuse));
        assert_eq!(Artifact::parse("ewit"), Some(Artifact::Witness));
        assert_eq!(Artifact::parse("e-wit"), Some(Artifact::Witness));
        assert_eq!(Artifact::parse("eobs"), Some(Artifact::Obs));
        assert_eq!(Artifact::parse("e-obs"), Some(Artifact::Obs));
        assert_eq!(Artifact::parse("eserve"), Some(Artifact::Serve));
        assert_eq!(Artifact::parse("e-serve"), Some(Artifact::Serve));
        assert_eq!(Artifact::parse("findings"), Some(Artifact::Findings));
        assert_eq!(Artifact::parse("t0"), None);
        assert_eq!(Artifact::parse("t10"), None);
        assert_eq!(Artifact::parse("x1"), None);
        assert_eq!(Artifact::parse(""), None);
    }

    #[test]
    fn all_lists_every_artifact() {
        let all = Artifact::all();
        assert_eq!(all.len(), 1 + 9 + 5 + 13);
    }

    #[test]
    fn every_artifact_id_round_trips_through_parse() {
        for artifact in Artifact::all() {
            assert_eq!(Artifact::parse(&artifact.id()), Some(artifact));
        }
    }

    #[test]
    fn render_isolated_succeeds_without_injection() {
        let corpus = Corpus::full();
        let out = Artifact::Table(2).render_isolated(&corpus, false);
        assert!(out.expect("T2 renders").contains("T2:"));
    }

    // The LFM_INJECT_PANIC side of render_isolated is exercised end to
    // end by the CLI's degraded-exit integration test (environment
    // variables are process-global, so the unit suite leaves them be).

    #[test]
    fn render_table_both_formats() {
        let corpus = Corpus::full();
        let plain = Artifact::Table(2).render(&corpus, false);
        assert!(plain.contains("T2:"));
        let md = Artifact::Table(2).render(&corpus, true);
        assert!(md.contains("### T2"));
        assert!(md.contains("|---|"));
    }

    #[test]
    fn render_findings() {
        let corpus = Corpus::full();
        let s = Artifact::Findings.render(&corpus, false);
        assert!(s.contains("F1-pattern"));
        assert!(!s.contains("MISMATCH"));
    }
}
