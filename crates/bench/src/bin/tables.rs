//! The table/figure regenerator.
//!
//! ```text
//! cargo run -p lfm-bench --bin tables              # everything
//! cargo run -p lfm-bench --bin tables -- --only t3 # one artifact
//! cargo run -p lfm-bench --bin tables -- --markdown
//! cargo run -p lfm-bench --bin tables -- --json obs.json # metrics snapshot
//! cargo run -p lfm-bench --bin tables -- --bench-explore BENCH_explore.json
//! cargo run -p lfm-bench --bin tables -- --check-explore BENCH_explore.json
//! cargo run -p lfm-bench --bin tables -- --bench-serve BENCH_serve.json
//! cargo run -p lfm-bench --bin tables -- --check-serve BENCH_serve.json
//! ```
//!
//! `--bench-explore` runs the E-perf, E-dpor and E-fuse measurements
//! at their reference budgets and writes the `lfm-bench-explore/v1`
//! document; CI uploads it as an artifact. `--check-explore` reruns
//! them and exits non-zero when the DPOR gate fails (outcome-set
//! divergence from full enumeration, or less than the 2x
//! schedule-reduction floor on the two deepest kernels), when the fuse
//! gate fails (fused outcome sets diverging from unfused ones, fusion
//! increasing any schedule count, or less than the 1.5x
//! fusion-alone reduction floor on `livelock_retry` / `toctou_flag`)
//! — both deterministic, enforced on every host — or when serial
//! explorer throughput on the gate kernel regressed more than 30%
//! against the committed baseline (skipped on single-core hosts,
//! where the wall clock is too noisy to gate on).
//! `--bench-serve` / `--check-serve` do the same for the E-serve load
//! harness (`lfm-bench-serve/v1`): the check always enforces zero wrong
//! answers and clean drains, and on multi-core hosts additionally gates
//! the chaos-free scenario's requests/sec against the committed
//! baseline plus the tracing overhead — full tracing must keep at
//! least 90% of untraced throughput (best-of-2 each, same host). All
//! four modes run instead of the table regeneration.

use lfm_bench::Artifact;
use lfm_corpus::Corpus;

/// Fraction of the baseline's states/sec the gate kernel must still
/// reach: generous, so only a structural regression of the hot path
/// (not scheduler jitter) trips CI.
const CHECK_FLOOR: f64 = 0.70;

fn bench_explore(path: &str) -> ! {
    let report = lfm_bench::perf_measure(lfm_bench::PERF_BUDGET);
    let dpor = lfm_bench::dpor_measure(lfm_bench::DPOR_BUDGET);
    let fuse = lfm_bench::fuse_measure(lfm_bench::FUSE_BUDGET);
    let doc = lfm_bench::perf_json(&report, &dpor, &fuse);
    if let Err(e) = std::fs::write(path, &doc) {
        eprintln!("cannot write explore benchmark to `{path}`: {e}");
        std::process::exit(1);
    }
    for s in &report.speedups {
        eprintln!(
            "{}: {:.0} states/sec (legacy {:.0}, speedup {:.2}x, identical: {})",
            s.kernel, s.cow_states_per_sec, s.legacy_states_per_sec, s.speedup, s.identical
        );
    }
    for r in dpor.deepest() {
        eprintln!(
            "{}: {} full vs {} dpor schedules (reduction {}{:.2}x, outcomes {})",
            r.kernel,
            r.full_schedules,
            r.dpor_schedules,
            if r.full_complete { "" } else { ">=" },
            r.reduction,
            if r.compared { "compared" } else { "truncated" }
        );
    }
    let dpor_failures = dpor.gate_failures();
    for f in &dpor_failures {
        eprintln!("dpor gate: {f}");
    }
    for kernel in lfm_bench::FUSE_GATE_KERNELS {
        if let Some(r) = fuse.row(kernel) {
            eprintln!(
                "{}: {} unfused vs {} fused schedules (reduction {}{:.2}x, \
                 dpor composition {:.2}x)",
                r.kernel,
                r.base_schedules,
                r.fused_schedules,
                if r.base_complete { "" } else { ">=" },
                r.reduction,
                r.composed_reduction,
            );
        }
    }
    let fuse_failures = fuse.gate_failures();
    for f in &fuse_failures {
        eprintln!("fuse gate: {f}");
    }
    eprintln!("explore benchmark written to {path}");
    let ok = report.all_identical() && dpor_failures.is_empty() && fuse_failures.is_empty();
    std::process::exit(if ok { 0 } else { 1 });
}

fn check_explore(path: &str) -> ! {
    let baseline = match std::fs::read_to_string(path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("cannot read explore baseline `{path}`: {e}");
            std::process::exit(1);
        }
    };
    let kernel = lfm_bench::PERF_GATE_KERNEL;
    let Some(expected) = lfm_bench::baseline_states_per_sec(&baseline, kernel) else {
        eprintln!("baseline `{path}` has no states_per_sec for `{kernel}`");
        std::process::exit(1);
    };
    // The DPOR half of the gate first: schedule counts and outcome
    // sets are deterministic, so unlike the throughput floor below it
    // holds on every host, single-core included.
    let dpor = lfm_bench::dpor_measure(lfm_bench::DPOR_BUDGET);
    for r in dpor.deepest() {
        let drift = match lfm_bench::baseline_dpor_schedules(&baseline, r.kernel) {
            Some(expected) if expected != r.dpor_schedules => format!(
                " (baseline ran {expected} — search semantics drifted; \
                 regenerate with --bench-explore if intentional)"
            ),
            Some(_) => String::new(),
            None => " (no dpor baseline committed)".to_string(),
        };
        eprintln!(
            "{}: {} full vs {} dpor schedules, reduction {}{:.2}x{drift}",
            r.kernel,
            r.full_schedules,
            r.dpor_schedules,
            if r.full_complete { "" } else { ">=" },
            r.reduction,
        );
    }
    let dpor_failures = dpor.gate_failures();
    if !dpor_failures.is_empty() {
        for f in &dpor_failures {
            eprintln!("dpor gate: {f}");
        }
        std::process::exit(1);
    }
    eprintln!("dpor gate passed");
    // The fuse half: equally deterministic — fused outcome sets must
    // equal unfused ones mode-for-mode, fusion must never increase a
    // schedule count, and the gate kernels must clear the
    // fusion-alone reduction floor.
    let fuse = lfm_bench::fuse_measure(lfm_bench::FUSE_BUDGET);
    for kernel in lfm_bench::FUSE_GATE_KERNELS {
        let Some(r) = fuse.row(kernel) else { continue };
        let drift = match lfm_bench::baseline_fused_schedules(&baseline, r.kernel) {
            Some(expected) if expected != r.fused_schedules => format!(
                " (baseline ran {expected} — search semantics drifted; \
                 regenerate with --bench-explore if intentional)"
            ),
            Some(_) => String::new(),
            None => " (no fuse baseline committed)".to_string(),
        };
        eprintln!(
            "{}: {} unfused vs {} fused schedules, reduction {}{:.2}x, \
             dpor composition {:.2}x{drift}",
            r.kernel,
            r.base_schedules,
            r.fused_schedules,
            if r.base_complete { "" } else { ">=" },
            r.reduction,
            r.composed_reduction,
        );
    }
    let fuse_failures = fuse.gate_failures();
    if !fuse_failures.is_empty() {
        for f in &fuse_failures {
            eprintln!("fuse gate: {f}");
        }
        std::process::exit(1);
    }
    eprintln!("fuse gate passed");
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cores < 2 {
        eprintln!("single-core host: skipping the throughput gate (measured rates are noise here)");
        std::process::exit(0);
    }
    let report = lfm_bench::perf_measure(lfm_bench::PERF_BUDGET);
    // Best-of-N throughput from the deep-kernel comparison when the
    // gate kernel is in it (it is, by construction — deepest space in
    // the registry); the single-run sweep row is the fallback.
    let measured = report
        .speedups
        .iter()
        .find(|s| s.kernel == kernel)
        .map(|s| s.cow_states_per_sec)
        .or_else(|| report.row(kernel).map(|r| r.states_per_sec))
        .unwrap_or(0.0);
    let floor = expected * CHECK_FLOOR;
    eprintln!(
        "{kernel}: measured {measured:.0} states/sec, baseline {expected:.0}, floor {floor:.0}"
    );
    if !report.all_identical() {
        eprintln!("legacy baseline diverged from the optimized report — correctness bug");
        std::process::exit(1);
    }
    if measured < floor {
        eprintln!("serial explorer throughput regressed more than 30% — investigate the hot path");
        std::process::exit(1);
    }
    eprintln!("throughput gate passed");
    std::process::exit(0);
}

/// Fraction of the baseline's requests/sec the chaos-free load
/// scenario must still reach. Service throughput swings with the host
/// far more than the serial hot path (thread scheduling, loopback
/// latency), so the floor is very generous: only a structural
/// regression — an accidental serialization, an unbounded queue, a
/// cache that stopped hitting — trips it.
const SERVE_CHECK_FLOOR: f64 = 0.50;

/// Fraction of untraced requests/sec the fully-traced service must
/// keep (best-of-2 each, same host, same run). Tracing sells itself as
/// a strict observer; more than 10% throughput tax means it has grown
/// a lock, an allocation, or a syscall on the hot path.
const SERVE_TRACE_FLOOR: f64 = 0.90;

fn bench_serve(path: &str) -> ! {
    let report = lfm_bench::serve_measure();
    let doc = lfm_bench::serve_json(&report);
    if let Err(e) = std::fs::write(path, &doc) {
        eprintln!("cannot write serve benchmark to `{path}`: {e}");
        std::process::exit(1);
    }
    for r in &report.rows {
        eprintln!(
            "{}: {}/{} ok, {} wrong, hit rate {:.2}, shed rate {:.2}, \
             p50 {} us, p99 {} us, {:.0} req/sec, drain {}",
            r.scenario,
            r.ok,
            r.requests,
            r.wrong,
            r.hit_rate,
            r.shed_rate,
            r.p50_us,
            r.p99_us,
            r.requests_per_sec,
            if r.clean_drain { "clean" } else { "UNCLEAN" }
        );
    }
    eprintln!("serve benchmark written to {path}");
    std::process::exit(if report.all_correct() { 0 } else { 1 });
}

fn check_serve(path: &str) -> ! {
    let baseline = match std::fs::read_to_string(path) {
        Ok(doc) => doc,
        Err(e) => {
            eprintln!("cannot read serve baseline `{path}`: {e}");
            std::process::exit(1);
        }
    };
    let scenario = lfm_bench::SERVE_GATE_SCENARIO;
    let Some(expected) = lfm_bench::baseline_requests_per_sec(&baseline, scenario) else {
        eprintln!("baseline `{path}` has no requests_per_sec for `{scenario}`");
        std::process::exit(1);
    };
    let report = lfm_bench::serve_measure();
    // The correctness half of the gate holds on every host, single-core
    // included: no wrong answers, no unclean drains, under load and
    // under chaos.
    for r in &report.rows {
        eprintln!(
            "{}: {}/{} ok, {} wrong, {:.0} req/sec, drain {}",
            r.scenario,
            r.ok,
            r.requests,
            r.wrong,
            r.requests_per_sec,
            if r.clean_drain { "clean" } else { "UNCLEAN" }
        );
    }
    if !report.all_correct() {
        eprintln!("serve correctness gate failed: wrong answers or an unclean drain");
        std::process::exit(1);
    }
    let cores = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    if cores < 2 {
        eprintln!("single-core host: skipping the serve throughput gate (rates are noise here)");
        std::process::exit(0);
    }
    let measured = report
        .row(scenario)
        .map(|r| r.requests_per_sec)
        .unwrap_or(0.0);
    let floor = expected * SERVE_CHECK_FLOOR;
    eprintln!(
        "{scenario}: measured {measured:.0} req/sec, baseline {expected:.0}, floor {floor:.0}"
    );
    if measured < floor {
        eprintln!("serve throughput regressed more than 50% — investigate the service path");
        std::process::exit(1);
    }
    // The tracing-overhead half: full tracing (span capture, ring,
    // slow gate at 0 ms) must keep >= SERVE_TRACE_FLOOR of the
    // untraced requests/sec. Both sides are measured best-of-2 in this
    // run on this host, so the ratio cancels the host out.
    let (traced, untraced) = lfm_bench::trace_overhead_measure();
    let ratio = if untraced > 0.0 {
        traced / untraced
    } else {
        0.0
    };
    eprintln!(
        "tracing overhead: traced {traced:.0} req/sec vs untraced {untraced:.0} \
         ({ratio:.2}x, floor {SERVE_TRACE_FLOOR:.2}x)"
    );
    if ratio < SERVE_TRACE_FLOOR {
        eprintln!("full tracing taxes throughput more than 10% — the observer is no longer cheap");
        std::process::exit(1);
    }
    eprintln!("serve gate passed");
    std::process::exit(0);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1));
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1));
    if let Some(path) = args
        .iter()
        .position(|a| a == "--bench-explore")
        .and_then(|i| args.get(i + 1))
    {
        bench_explore(path);
    }
    if let Some(path) = args
        .iter()
        .position(|a| a == "--check-explore")
        .and_then(|i| args.get(i + 1))
    {
        check_explore(path);
    }
    if let Some(path) = args
        .iter()
        .position(|a| a == "--bench-serve")
        .and_then(|i| args.get(i + 1))
    {
        bench_serve(path);
    }
    if let Some(path) = args
        .iter()
        .position(|a| a == "--check-serve")
        .and_then(|i| args.get(i + 1))
    {
        check_serve(path);
    }

    if let Some(path) = json_path {
        let snapshot = lfm_bench::obs_snapshot();
        if let Err(e) = std::fs::write(path, snapshot) {
            eprintln!("cannot write metrics snapshot to `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("metrics snapshot written to {path}");
    }

    let corpus = Corpus::full();

    let artifacts: Vec<Artifact> = match only {
        Some(sel) => match Artifact::parse(sel) {
            Some(a) => vec![a],
            None => {
                eprintln!(
                    "unknown artifact `{sel}`; expected t1..t9, f1..f5, \
                     escope, edetect, etm, echaos, epar, eperf, edpor, efuse, \
                     ewit, eobs, eserve, or findings"
                );
                std::process::exit(2);
            }
        },
        None => Artifact::all(),
    };

    println!("LEARNING FROM MISTAKES — table & figure regenerator");
    println!(
        "corpus: {} bugs (74 non-deadlock, 31 deadlock)\n",
        corpus.len()
    );
    // Panic isolation: one broken generator degrades the run (non-zero
    // exit, FAILED marker) but every other artifact still regenerates.
    let mut failed = 0usize;
    for artifact in artifacts {
        match artifact.render_isolated(&corpus, markdown) {
            Ok(rendered) => println!("{rendered}"),
            Err(payload) => {
                failed += 1;
                eprintln!("FAILED {}: {payload}", artifact.id());
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} artifact(s) failed to render");
        std::process::exit(1);
    }
}
