//! The table/figure regenerator.
//!
//! ```text
//! cargo run -p lfm-bench --bin tables              # everything
//! cargo run -p lfm-bench --bin tables -- --only t3 # one artifact
//! cargo run -p lfm-bench --bin tables -- --markdown
//! cargo run -p lfm-bench --bin tables -- --json obs.json # metrics snapshot
//! ```

use lfm_bench::Artifact;
use lfm_corpus::Corpus;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let markdown = args.iter().any(|a| a == "--markdown");
    let only = args
        .iter()
        .position(|a| a == "--only")
        .and_then(|i| args.get(i + 1));
    let json_path = args
        .iter()
        .position(|a| a == "--json")
        .and_then(|i| args.get(i + 1));

    if let Some(path) = json_path {
        let snapshot = lfm_bench::obs_snapshot();
        if let Err(e) = std::fs::write(path, snapshot) {
            eprintln!("cannot write metrics snapshot to `{path}`: {e}");
            std::process::exit(1);
        }
        eprintln!("metrics snapshot written to {path}");
    }

    let corpus = Corpus::full();

    let artifacts: Vec<Artifact> = match only {
        Some(sel) => match Artifact::parse(sel) {
            Some(a) => vec![a],
            None => {
                eprintln!(
                    "unknown artifact `{sel}`; expected t1..t9, f1..f5, \
                     escope, edetect, etm, echaos, ewit, or findings"
                );
                std::process::exit(2);
            }
        },
        None => Artifact::all(),
    };

    println!("LEARNING FROM MISTAKES — table & figure regenerator");
    println!(
        "corpus: {} bugs (74 non-deadlock, 31 deadlock)\n",
        corpus.len()
    );
    // Panic isolation: one broken generator degrades the run (non-zero
    // exit, FAILED marker) but every other artifact still regenerates.
    let mut failed = 0usize;
    for artifact in artifacts {
        match artifact.render_isolated(&corpus, markdown) {
            Ok(rendered) => println!("{rendered}"),
            Err(payload) => {
                failed += 1;
                eprintln!("FAILED {}: {payload}", artifact.id());
            }
        }
    }
    if failed > 0 {
        eprintln!("{failed} artifact(s) failed to render");
        std::process::exit(1);
    }
}
