//! E-par: serial-vs-parallel exploration scaling.
//!
//! The parallel explorer shards the schedule frontier across worker
//! threads but merges deterministically, so its report must be
//! bit-identical to the serial explorer's while (on a multi-core host)
//! finishing sooner. This experiment runs the largest kernel state
//! space under both explorers at 1/2/4/8 workers, checks the merged
//! reports field-for-field against the serial baseline, and tabulates
//! wall-clock speedup and schedule throughput.
//!
//! Speedup is a *host* property: on a single-core container every
//! worker count time-slices one CPU and the ratio hovers at or below
//! 1×. The report-equality column is the part that must hold
//! everywhere; `host_parallelism` is recorded next to the numbers so a
//! snapshot is interpretable after the fact.

use lfm_kernels::registry;
use lfm_sim::{ExploreLimits, ExploreReport, Explorer, ParExplorer};
use lfm_study::Table;

/// The kernel the scaling experiment runs on: the largest state space
/// in the registry (a retry livelock whose exploration truncates only
/// at the schedule budget, so every run does the same full quota of
/// work).
pub const PAR_KERNEL: &str = "livelock_retry";

/// Worker counts measured by the experiment.
pub const PAR_JOBS: [usize; 4] = [1, 2, 4, 8];

/// One worker-count measurement against the serial baseline.
#[derive(Debug, Clone)]
pub struct ParRow {
    /// Worker threads used.
    pub jobs: usize,
    /// Schedules the merged report counts (equal to the serial run's).
    pub schedules: u64,
    /// Wall-clock time of the parallel run, microseconds.
    pub wall_us: u64,
    /// `serial wall / parallel wall`.
    pub speedup: f64,
    /// Schedules per second of the parallel run.
    pub schedules_per_sec: f64,
    /// Whether the merged report matched the serial baseline
    /// field-for-field (everything except measured wall time).
    pub identical: bool,
}

/// The full E-par measurement: serial baseline plus one [`ParRow`] per
/// entry of [`PAR_JOBS`].
#[derive(Debug, Clone)]
pub struct ParScaling {
    /// Kernel id measured.
    pub kernel: &'static str,
    /// The kernel's bug family.
    pub family: String,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_parallelism: usize,
    /// Schedules the serial baseline ran.
    pub serial_schedules: u64,
    /// Serial baseline wall time, microseconds.
    pub serial_wall_us: u64,
    /// Per-worker-count measurements.
    pub rows: Vec<ParRow>,
}

impl ParScaling {
    /// The speedup measured at `jobs` workers, if that count was run.
    pub fn speedup_at(&self, jobs: usize) -> Option<f64> {
        self.rows.iter().find(|r| r.jobs == jobs).map(|r| r.speedup)
    }

    /// `true` when every parallel report matched the serial baseline.
    pub fn all_identical(&self) -> bool {
        self.rows.iter().all(|r| r.identical)
    }
}

/// Field-for-field report equality, ignoring only the measured wall
/// time (the one field a clock writes rather than the search).
fn reports_identical(a: &ExploreReport, b: &ExploreReport) -> bool {
    a.counts == b.counts
        && a.schedules_run == b.schedules_run
        && a.steps_total == b.steps_total
        && a.truncated == b.truncated
        && a.first_failure == b.first_failure
        && a.first_ok == b.first_ok
        && a.states_deduped == b.states_deduped
        && a.sleep_pruned == b.sleep_pruned
        && a.truncation == b.truncation
        && a.stats.branch_points == b.stats.branch_points
        && a.stats.snapshots == b.stats.snapshots
        && a.stats.max_depth == b.stats.max_depth
        && a.stats.preemption_limited == b.stats.preemption_limited
}

/// Runs the scaling comparison: one serial exploration of
/// [`PAR_KERNEL`] capped at `max_schedules`, then the parallel explorer
/// at each of [`PAR_JOBS`] under the same limits.
pub fn par_scaling(max_schedules: u64) -> ParScaling {
    let kernel = registry::by_id(PAR_KERNEL).expect("known kernel");
    let program = kernel.buggy();
    let limits = ExploreLimits {
        max_schedules,
        dedup_states: true,
        ..ExploreLimits::default()
    };

    let serial = Explorer::new(&program).limits(limits.clone()).run();
    let serial_wall_us = serial.stats.wall.as_micros() as u64;

    let rows = PAR_JOBS
        .into_iter()
        .map(|jobs| {
            let report = ParExplorer::new(&program)
                .limits(limits.clone())
                .jobs(jobs)
                .run();
            let wall_us = report.stats.wall.as_micros() as u64;
            ParRow {
                jobs,
                schedules: report.schedules_run,
                wall_us,
                speedup: serial_wall_us as f64 / (wall_us.max(1)) as f64,
                schedules_per_sec: report.schedules_per_sec(),
                identical: reports_identical(&serial, &report),
            }
        })
        .collect();

    ParScaling {
        kernel: PAR_KERNEL,
        family: kernel.family.to_string(),
        host_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        serial_schedules: serial.schedules_run,
        serial_wall_us,
        rows,
    }
}

/// Renders the scaling measurement as the E-par table.
pub fn par_table(max_schedules: u64) -> Table {
    let scaling = par_scaling(max_schedules);
    let mut t = Table::new(
        "E-par",
        format!(
            "Parallel exploration scaling ({}, {} schedules, host parallelism {})",
            scaling.kernel, scaling.serial_schedules, scaling.host_parallelism
        ),
        vec![
            "explorer",
            "jobs",
            "schedules",
            "wall (us)",
            "speedup",
            "sched/sec",
            "report",
        ],
    );
    t.row(vec![
        "serial".to_string(),
        "1".to_string(),
        scaling.serial_schedules.to_string(),
        scaling.serial_wall_us.to_string(),
        "1.00x".to_string(),
        format!(
            "{:.0}",
            scaling.serial_schedules as f64 / (scaling.serial_wall_us.max(1) as f64 / 1e6)
        ),
        "baseline".to_string(),
    ]);
    for r in &scaling.rows {
        t.row(vec![
            "parallel".to_string(),
            r.jobs.to_string(),
            r.schedules.to_string(),
            r.wall_us.to_string(),
            format!("{:.2}x", r.speedup),
            format!("{:.0}", r.schedules_per_sec),
            if r.identical {
                "identical".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ]);
    }
    t.note(
        "every parallel report is compared field-for-field against the serial \
         baseline (wall time excluded); `identical` is the determinism claim, \
         speedup is a property of the host",
    );
    if scaling.host_parallelism < 2 {
        t.note(
            "single-core host: worker threads time-slice one CPU, so speedup \
             at or below 1x is expected here; the >=1.5x target applies to \
             multi-core runners",
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    // Structure-only assertions on the timing columns: wall time and
    // speedup vary with the host (and this container is single-core),
    // so the stable targets are the report-equality column and the
    // schedule counts.
    #[test]
    fn par_table_has_expected_shape() {
        let t = par_table(300);
        assert_eq!(t.id, "E-par");
        assert_eq!(t.len(), 1 + PAR_JOBS.len(), "serial row + one per jobs");
        let rendered = t.to_string();
        assert!(rendered.contains("livelock_retry"));
        assert!(rendered.contains("baseline"));
        assert!(!rendered.contains("DIVERGED"));
    }

    #[test]
    fn every_worker_count_reproduces_the_serial_report() {
        let scaling = par_scaling(250);
        assert_eq!(scaling.rows.len(), PAR_JOBS.len());
        assert!(scaling.all_identical());
        for r in &scaling.rows {
            assert_eq!(r.schedules, scaling.serial_schedules);
            assert!(r.speedup > 0.0);
        }
        assert!(scaling.speedup_at(4).is_some());
        assert!(scaling.speedup_at(3).is_none());
    }

    #[test]
    fn host_parallelism_is_recorded() {
        let scaling = par_scaling(100);
        assert!(scaling.host_parallelism >= 1);
        assert_eq!(scaling.kernel, PAR_KERNEL);
        assert_eq!(scaling.family, "other (non-deadlock)");
    }
}
