//! Machine-readable metrics snapshots (`lfm-obs/v1`).
//!
//! [`obs_snapshot`] exercises each instrumented subsystem once —
//! exploration per kernel family, the detector pipeline, the TL2 STM,
//! and the table generators — and serializes the collected metrics as
//! one JSON document. The `tables` binary writes it with `--json <path>`
//! so benchmark runs leave a comparable artifact next to the tables.

use std::fmt::Write as _;

use lfm_kernels::{registry, Family};
use lfm_obs::{json, NoopSink};
use lfm_sim::{ExploreLimits, Explorer, RandomWalker};
use lfm_stm::tl2::TSpace;

/// Schema identifier embedded in every snapshot.
pub const SNAPSHOT_SCHEMA: &str = "lfm-obs/v1";

fn push_field(out: &mut String, key: &str, value: impl std::fmt::Display) {
    let _ = write!(out, "{}:{}", json::quote(key), value);
}

/// Builds the full metrics snapshot as a JSON document.
///
/// Deliberately small budgets: the snapshot is a smoke-level profile of
/// every subsystem, not a benchmark — `cargo bench` owns the real
/// measurements.
pub fn obs_snapshot() -> String {
    let mut out = String::with_capacity(4096);
    out.push('{');
    push_field(&mut out, "schema", json::quote(SNAPSHOT_SCHEMA));

    // Exploration, aggregated per kernel family over the buggy variants.
    out.push_str(",\"explore\":[");
    for (i, family) in Family::ALL.into_iter().enumerate() {
        let mut kernels = 0u64;
        let mut schedules = 0u64;
        let mut steps = 0u64;
        let mut failures = 0u64;
        let mut branch_points = 0u64;
        let mut snapshots = 0u64;
        let mut snapshot_bytes_saved = 0u64;
        let mut sleep_pruned = 0u64;
        let mut wall_us = 0u64;
        for kernel in registry::by_family(family) {
            let report = Explorer::new(&kernel.buggy())
                .limits(ExploreLimits {
                    max_schedules: 2_000,
                    sleep_sets: true,
                    ..ExploreLimits::default()
                })
                .run();
            kernels += 1;
            schedules += report.schedules_run;
            steps += report.steps_total;
            failures += report.counts.failures();
            branch_points += report.stats.branch_points;
            snapshots += report.stats.snapshots;
            snapshot_bytes_saved += report.stats.snapshot_bytes_saved;
            sleep_pruned += report.sleep_pruned;
            wall_us += report.stats.wall.as_micros() as u64;
        }
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_field(&mut out, "family", json::quote(&family.to_string()));
        out.push(',');
        push_field(&mut out, "kernels", kernels);
        out.push(',');
        push_field(&mut out, "schedules", schedules);
        out.push(',');
        push_field(&mut out, "failures", failures);
        out.push(',');
        push_field(&mut out, "branch_points", branch_points);
        out.push(',');
        push_field(&mut out, "snapshots", snapshots);
        out.push(',');
        push_field(&mut out, "snapshot_bytes_saved", snapshot_bytes_saved);
        out.push(',');
        push_field(&mut out, "sleep_pruned", sleep_pruned);
        out.push(',');
        push_field(&mut out, "wall_us", wall_us);
        out.push(',');
        push_field(
            &mut out,
            "states_per_sec",
            json::number_f64(steps as f64 / (wall_us.max(1) as f64 / 1e6)),
        );
        out.push('}');
    }
    out.push(']');

    // The detector pipeline on a representative kernel's sampled traces.
    let kernel = registry::by_id("counter_rmw").expect("known kernel");
    let program = kernel.buggy();
    let sampled = RandomWalker::new(&program, 7).collect_traces(6);
    let (training, test): (Vec<_>, Vec<_>) = sampled.into_iter().partition(|(_, o)| o.is_ok());
    let training: Vec<_> = training.into_iter().map(|(t, _)| t).collect();
    let test: Vec<_> = test.into_iter().map(|(t, _)| t).collect();
    let (_, detect_stats) = lfm_detect::detect_all_with_stats(&training, &test, &NoopSink);
    out.push_str(",\"detect\":{\"passes\":[");
    for (i, pass) in detect_stats.passes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_field(&mut out, "detector", json::quote(&pass.kind.to_string()));
        out.push(',');
        push_field(&mut out, "events", pass.counts.events);
        out.push(',');
        push_field(&mut out, "candidates", pass.counts.candidates);
        out.push(',');
        push_field(&mut out, "reports", pass.reports);
        out.push(',');
        push_field(&mut out, "wall_us", pass.wall.as_micros() as u64);
        out.push('}');
    }
    out.push_str("],");
    push_field(
        &mut out,
        "training_wall_us",
        detect_stats.training_wall.as_micros() as u64,
    );
    out.push('}');

    // A short single-threaded TL2 workload: exact, deterministic counts.
    let space = TSpace::new(1);
    for _ in 0..100 {
        space.atomically(|tx| {
            let v = tx.read(0)?;
            tx.write(0, v + 1);
            Ok(())
        });
    }
    let stm = space.stats();
    out.push_str(",\"stm\":{");
    push_field(&mut out, "starts", stm.starts);
    out.push(',');
    push_field(&mut out, "commits", stm.commits);
    out.push(',');
    push_field(&mut out, "aborts", stm.aborts);
    out.push(',');
    push_field(&mut out, "body_retries", stm.body_retries);
    out.push(',');
    push_field(&mut out, "commit_rate", json::number_f64(stm.commit_rate()));
    out.push('}');

    // Minimized witnesses: the E-wit measurement, one record per kernel
    // plus the paper-band tallies the study table reports.
    let rows = lfm_study::experiments::witness_experiment();
    out.push_str(",\"witness\":{\"schema\":\"lfm-trace/v1\",\"kernels\":[");
    for (i, r) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_field(&mut out, "kernel", json::quote(r.kernel));
        out.push(',');
        push_field(&mut out, "family", json::quote(&r.family.to_string()));
        out.push(',');
        push_field(&mut out, "threads", r.threads);
        out.push(',');
        push_field(&mut out, "switches", r.switches);
        out.push(',');
        push_field(&mut out, "conflicting_accesses", r.conflicting_accesses);
        out.push(',');
        push_field(&mut out, "conflict_objects", r.conflict_objects);
        out.push(',');
        push_field(&mut out, "schedule_before", r.schedule_before);
        out.push(',');
        push_field(&mut out, "schedule_after", r.schedule_after);
        out.push(',');
        push_field(&mut out, "replays", r.replays);
        out.push('}');
    }
    out.push_str("],");
    let nondead: Vec<_> = rows
        .iter()
        .filter(|r| r.family != Family::Deadlock)
        .collect();
    let dead: Vec<_> = rows
        .iter()
        .filter(|r| r.family == Family::Deadlock)
        .collect();
    push_field(
        &mut out,
        "nondeadlock_threads_le2",
        nondead.iter().filter(|r| r.threads <= 2).count(),
    );
    out.push(',');
    push_field(
        &mut out,
        "nondeadlock_accesses_le4",
        nondead
            .iter()
            .filter(|r| r.conflicting_accesses <= 4)
            .count(),
    );
    out.push(',');
    push_field(&mut out, "nondeadlock_total", nondead.len());
    out.push(',');
    push_field(
        &mut out,
        "deadlock_threads_le2",
        dead.iter().filter(|r| r.threads <= 2).count(),
    );
    out.push(',');
    push_field(
        &mut out,
        "deadlock_resources_le2",
        dead.iter().filter(|r| r.conflict_objects <= 2).count(),
    );
    out.push(',');
    push_field(&mut out, "deadlock_total", dead.len());
    out.push('}');

    // Parallel-exploration scaling: the E-par measurement. Speedup is a
    // host property (meaningless without `host_parallelism` next to
    // it); `reports_identical` is the determinism claim and must be
    // true on every host.
    let scaling = crate::par::par_scaling(20_000);
    out.push_str(",\"par\":{");
    push_field(&mut out, "kernel", json::quote(scaling.kernel));
    out.push(',');
    push_field(&mut out, "family", json::quote(&scaling.family));
    out.push(',');
    push_field(&mut out, "host_parallelism", scaling.host_parallelism);
    out.push(',');
    push_field(&mut out, "serial_schedules", scaling.serial_schedules);
    out.push(',');
    push_field(&mut out, "serial_wall_us", scaling.serial_wall_us);
    out.push(',');
    push_field(&mut out, "reports_identical", scaling.all_identical());
    out.push_str(",\"rows\":[");
    for (i, r) in scaling.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_field(&mut out, "jobs", r.jobs);
        out.push(',');
        push_field(&mut out, "schedules", r.schedules);
        out.push(',');
        push_field(&mut out, "wall_us", r.wall_us);
        out.push(',');
        push_field(&mut out, "speedup", json::number_f64(r.speedup));
        out.push(',');
        push_field(
            &mut out,
            "schedules_per_sec",
            json::number_f64(r.schedules_per_sec),
        );
        out.push('}');
    }
    out.push_str("],");
    push_field(
        &mut out,
        "speedup_at_4",
        json::number_f64(scaling.speedup_at(4).unwrap_or(0.0)),
    );
    out.push('}');

    // Exploration hot-path throughput: the E-perf measurement, legacy
    // deep-clone baseline vs the COW representation on the two deepest
    // kernels. Like E-par, the rates are host properties; the
    // `reports_identical` flag is the claim that must hold everywhere.
    // (Smoke budget here; BENCH_explore.json carries the reference run
    // at the full PERF_BUDGET.)
    let perf = crate::perf::perf_measure(500);
    out.push_str(",\"perf\":{");
    push_field(&mut out, "budget", perf.budget);
    out.push(',');
    push_field(&mut out, "reports_identical", perf.all_identical());
    out.push_str(",\"deepest\":[");
    for (i, s) in perf.speedups.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        push_field(&mut out, "kernel", json::quote(s.kernel));
        out.push(',');
        push_field(&mut out, "max_depth", s.max_depth);
        out.push(',');
        push_field(
            &mut out,
            "cow_states_per_sec",
            json::number_f64(s.cow_states_per_sec),
        );
        out.push(',');
        push_field(
            &mut out,
            "legacy_states_per_sec",
            json::number_f64(s.legacy_states_per_sec),
        );
        out.push(',');
        push_field(&mut out, "speedup", json::number_f64(s.speedup));
        out.push('}');
    }
    out.push_str("],");
    push_field(
        &mut out,
        "snapshot_bytes_saved_total",
        perf.rows
            .iter()
            .map(|r| r.snapshot_bytes_saved)
            .sum::<u64>(),
    );
    out.push('}');

    // Observability overhead: the E-obs measurement — profiler +
    // progress estimation + flight recorder against observation-off on
    // the two deepest kernels. The overhead percentage is a host
    // property; `reports_identical` must be true everywhere. (Smoke
    // budget, like the perf section above.)
    let obs = crate::obs::obs_measure(300);
    out.push_str(",\"obs\":");
    out.push_str(&crate::obs::obs_json(&obs));

    // Table-generator timings over the full corpus.
    let corpus = lfm_corpus::Corpus::full();
    let (_, timings) = lfm_study::profile_tables(&corpus, &NoopSink);
    out.push_str(",\"study\":{\"tables\":[");
    let mut total_us = 0u64;
    for (i, timing) in timings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let us = timing.wall.as_micros() as u64;
        total_us += us;
        out.push('{');
        push_field(&mut out, "id", json::quote(&timing.id));
        out.push(',');
        push_field(&mut out, "wall_us", us);
        out.push('}');
    }
    out.push_str("],");
    push_field(&mut out, "total_wall_us", total_us);
    out.push_str("}}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_covers_every_subsystem() {
        let snap = obs_snapshot();
        assert!(snap.starts_with('{') && snap.ends_with('}'));
        assert!(snap.contains("\"schema\":\"lfm-obs/v1\""));
        for family in Family::ALL {
            assert!(
                snap.contains(&json::quote(&family.to_string())),
                "missing family {family}"
            );
        }
        for key in [
            "\"detect\":",
            "\"stm\":",
            "\"par\":{\"kernel\":\"livelock_retry\"",
            "\"reports_identical\":true",
            "\"host_parallelism\":",
            "\"speedup_at_4\":",
            "\"perf\":{",
            "\"cow_states_per_sec\":",
            "\"obs\":{",
            "\"target_overhead_pct\":",
            "\"top_phase\":",
            "\"snapshot_bytes_saved_total\":",
            "\"snapshot_bytes_saved\":",
            "\"states_per_sec\":",
            "\"study\":",
            "\"T9\"",
            "\"commits\":100",
            "\"witness\":{\"schema\":\"lfm-trace/v1\"",
            "\"nondeadlock_threads_le2\":",
            "\"deadlock_resources_le2\":",
        ] {
            assert!(snap.contains(key), "missing {key} in {snap}");
        }
        // Balanced braces/brackets — cheap structural sanity without a
        // JSON parser dependency.
        let opens = snap.matches('{').count() + snap.matches('[').count();
        let closes = snap.matches('}').count() + snap.matches(']').count();
        assert_eq!(opens, closes);
    }
}
