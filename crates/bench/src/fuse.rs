//! E-fuse: invisible-step fusion schedule reduction vs the unfused
//! baseline.
//!
//! PR 10's step fusion keeps the running thread moving through ops
//! that touch no shared variable and no sync object (yields, asserts
//! whose local-only condition currently holds) instead of opening a
//! branch point at every multi-enabled state. This experiment measures
//! what that buys, kernel by kernel, with everything else held still:
//! dedup and sleep sets off, the same schedule budget on both sides,
//! fusion the only difference. A second pair of runs repeats the
//! comparison under source-set DPOR, because the interesting question
//! for deep kernels is whether fusion's win *composes* with DPOR's
//! rather than being the same schedules pruned twice.
//!
//! The outcome-set oracle is the E-dpor one: `Ok` and `Deadlock` final
//! states are keyed by their full `state_key` (fusion only reorders
//! global both-movers, so reachable final states are owed exactly);
//! aborting outcomes cut execution mid-trace — the machine state at
//! the cut legitimately varies with where independent invisible ops
//! sat — so only their display form is compared. Sets are compared
//! only when both searches completed.
//!
//! Like E-dpor, everything here is **deterministic**: schedule counts
//! are a property of the search, so the CI gate
//! ([`FuseReport::gate_failures`]) holds on every host. Kernels whose
//! threads never run an invisible op fuse nothing and show an honest
//! 1.00x.

use std::collections::BTreeSet;

use lfm_kernels::registry;
use lfm_sim::{ExploreLimits, ExploreReport, Explorer, Outcome, Program};
use lfm_study::Table;

/// Schedule budget for the committed `BENCH_explore.json` fuse section
/// and the CI gate (the E-dpor budget, for comparable rows).
pub const FUSE_BUDGET: u64 = 100_000;

/// Minimum schedule-reduction factor fusion alone must show on the
/// gate kernels. Below this, fusion is not earning its complexity on
/// the state spaces it was built for.
pub const FUSE_FLOOR: f64 = 1.5;

/// The kernels the reduction floor applies to — the two deepest state
/// spaces, which are also the two with the most invisible ops
/// (`livelock_retry` yields in its back-off path; `toctou_flag`
/// re-checks a local-only assert in its retry loop).
pub const FUSE_GATE_KERNELS: [&str; 2] = ["livelock_retry", "toctou_flag"];

/// One kernel's fused-vs-unfused comparison, plain and under DPOR.
#[derive(Debug, Clone)]
pub struct FuseRow {
    /// Kernel id.
    pub kernel: &'static str,
    /// The kernel's bug family.
    pub family: String,
    /// Schedules the unfused full enumeration ran (at most the budget).
    pub base_schedules: u64,
    /// Whether the unfused search finished exhaustively.
    pub base_complete: bool,
    /// Schedules the fused full enumeration ran.
    pub fused_schedules: u64,
    /// Whether the fused search finished exhaustively.
    pub fused_complete: bool,
    /// Invisible steps the fused search executed without branching.
    pub fused_steps: u64,
    /// `base_schedules / fused_schedules` — a lower bound on the true
    /// reduction when the unfused search truncated.
    pub reduction: f64,
    /// Schedules DPOR ran with fusion off.
    pub dpor_schedules: u64,
    /// Whether the unfused DPOR search finished exhaustively.
    pub dpor_complete: bool,
    /// Schedules DPOR ran with fusion on.
    pub dpor_fused_schedules: u64,
    /// Whether the fused DPOR search finished exhaustively.
    pub dpor_fused_complete: bool,
    /// `dpor_schedules / dpor_fused_schedules` — what fusion still
    /// removes after DPOR has already pruned commuting interleavings.
    pub composed_reduction: f64,
    /// Whether both plain searches completed, making their outcome
    /// sets comparable.
    pub compared: bool,
    /// `true` when the plain outcome sets agree (vacuously `true` for
    /// rows that were not compared).
    pub outcomes_match: bool,
    /// Whether both DPOR searches completed.
    pub dpor_compared: bool,
    /// `true` when the DPOR outcome sets agree.
    pub dpor_outcomes_match: bool,
}

/// The full E-fuse measurement.
#[derive(Debug, Clone)]
pub struct FuseReport {
    /// Schedule budget every search was capped at.
    pub budget: u64,
    /// Per-kernel rows, in registry order.
    pub rows: Vec<FuseRow>,
}

impl FuseReport {
    /// The row for `kernel`, if that kernel was measured.
    pub fn row(&self, kernel: &str) -> Option<&FuseRow> {
        self.rows.iter().find(|r| r.kernel == kernel)
    }

    /// The CI gate, as human-readable failures (empty means pass):
    /// every compared outcome set — plain and DPOR — must agree, at
    /// least one row must actually have been compared, fusion must
    /// never *increase* a schedule count, and on the
    /// [`FUSE_GATE_KERNELS`] the fused search must complete with at
    /// least [`FUSE_FLOOR`] reduction and the DPOR composition must
    /// complete without giving any of DPOR's win back.
    pub fn gate_failures(&self) -> Vec<String> {
        let mut failures = Vec::new();
        for r in &self.rows {
            if !r.outcomes_match {
                failures.push(format!(
                    "{}: fused outcome set diverged from the unfused baseline",
                    r.kernel
                ));
            }
            if !r.dpor_outcomes_match {
                failures.push(format!(
                    "{}: fused DPOR outcome set diverged from unfused DPOR",
                    r.kernel
                ));
            }
            if r.fused_schedules > r.base_schedules {
                failures.push(format!(
                    "{}: fusion increased schedules ({} fused vs {} unfused)",
                    r.kernel, r.fused_schedules, r.base_schedules
                ));
            }
            if r.dpor_fused_schedules > r.dpor_schedules {
                failures.push(format!(
                    "{}: fusion increased DPOR schedules ({} fused vs {} unfused)",
                    r.kernel, r.dpor_fused_schedules, r.dpor_schedules
                ));
            }
        }
        if !self.rows.iter().any(|r| r.compared || r.dpor_compared) {
            failures.push("no kernel completed both searches; outcome oracle never ran".into());
        }
        for kernel in FUSE_GATE_KERNELS {
            let Some(r) = self.row(kernel) else {
                failures.push(format!("{kernel}: gate kernel missing from the registry"));
                continue;
            };
            if !r.fused_complete {
                failures.push(format!(
                    "{}: fused search truncated at budget {} — cannot bound the reduction",
                    r.kernel, self.budget
                ));
            } else if r.reduction < FUSE_FLOOR {
                failures.push(format!(
                    "{}: reduction {:.2}x below the {FUSE_FLOOR:.1}x floor \
                     ({} unfused vs {} fused schedules)",
                    r.kernel, r.reduction, r.base_schedules, r.fused_schedules
                ));
            }
            if !r.dpor_fused_complete {
                failures.push(format!(
                    "{}: fused DPOR search truncated at budget {}",
                    r.kernel, self.budget
                ));
            } else if r.composed_reduction < 1.0 {
                failures.push(format!(
                    "{}: fuse x dpor composition {:.2}x lost ground \
                     ({} dpor vs {} dpor+fuse schedules)",
                    r.kernel, r.composed_reduction, r.dpor_schedules, r.dpor_fused_schedules
                ));
            }
        }
        failures
    }
}

fn limits(dpor: bool, fuse: bool, max_schedules: u64) -> ExploreLimits {
    ExploreLimits {
        max_schedules,
        dedup_states: false,
        sleep_sets: false,
        dpor,
        fuse,
        ..ExploreLimits::default()
    }
}

type OutcomeSet = BTreeSet<(String, u64)>;

fn explore(program: &Program, dpor: bool, fuse: bool, budget: u64) -> (ExploreReport, OutcomeSet) {
    let mut set = OutcomeSet::new();
    let report = Explorer::new(program)
        .limits(limits(dpor, fuse, budget))
        .run_with_callback(|exec, outcome| {
            let keyed = matches!(outcome, Outcome::Ok | Outcome::Deadlock { .. });
            set.insert((
                outcome.to_string(),
                if keyed { exec.state_key() } else { 0 },
            ));
        });
    (report, set)
}

fn complete(report: &ExploreReport) -> bool {
    !report.truncated && report.counts.step_limit == 0
}

/// Runs the E-fuse measurement: unfused vs fused enumeration — plain
/// and under DPOR — on every kernel's buggy variant at the given
/// schedule budget.
pub fn fuse_measure(budget: u64) -> FuseReport {
    let mut rows = Vec::new();
    for kernel in registry::all() {
        let program = kernel.buggy();
        let (base, base_set) = explore(&program, false, false, budget);
        let (fused, fused_set) = explore(&program, false, true, budget);
        let (dpor_base, dpor_base_set) = explore(&program, true, false, budget);
        let (dpor_fused, dpor_fused_set) = explore(&program, true, true, budget);
        let base_complete = complete(&base);
        let fused_complete = complete(&fused);
        let dpor_complete = complete(&dpor_base);
        let dpor_fused_complete = complete(&dpor_fused);
        let compared = base_complete && fused_complete;
        let dpor_compared = dpor_complete && dpor_fused_complete;
        rows.push(FuseRow {
            kernel: kernel.id,
            family: kernel.family.to_string(),
            base_schedules: base.schedules_run,
            base_complete,
            fused_schedules: fused.schedules_run,
            fused_complete,
            fused_steps: fused.stats.fused_steps,
            reduction: base.schedules_run as f64 / fused.schedules_run.max(1) as f64,
            dpor_schedules: dpor_base.schedules_run,
            dpor_complete,
            dpor_fused_schedules: dpor_fused.schedules_run,
            dpor_fused_complete,
            composed_reduction: dpor_base.schedules_run as f64
                / dpor_fused.schedules_run.max(1) as f64,
            compared,
            outcomes_match: !compared || base_set == fused_set,
            dpor_compared,
            dpor_outcomes_match: !dpor_compared || dpor_base_set == dpor_fused_set,
        });
    }
    FuseReport { budget, rows }
}

/// Renders the measurement as the E-fuse table.
pub fn fuse_table(budget: u64) -> Table {
    let report = fuse_measure(budget);
    let mut t = Table::new(
        "E-fuse",
        format!(
            "Invisible-step fusion vs unfused enumeration ({} kernels, budget {})",
            report.rows.len(),
            report.budget
        ),
        vec![
            "kernel",
            "family",
            "nofuse",
            "fuse",
            "reduction",
            "fused",
            "dpor",
            "dpor+fuse",
            "composed",
            "outcomes",
        ],
    );
    for r in &report.rows {
        let gated = FUSE_GATE_KERNELS.contains(&r.kernel);
        t.row(vec![
            if gated {
                format!("{} *", r.kernel)
            } else {
                r.kernel.to_string()
            },
            r.family.clone(),
            if r.base_complete {
                r.base_schedules.to_string()
            } else {
                format!("{}+", r.base_schedules)
            },
            r.fused_schedules.to_string(),
            format!(
                "{}{:.2}x",
                if r.base_complete { "" } else { ">=" },
                r.reduction
            ),
            r.fused_steps.to_string(),
            if r.dpor_complete {
                r.dpor_schedules.to_string()
            } else {
                format!("{}+", r.dpor_schedules)
            },
            r.dpor_fused_schedules.to_string(),
            format!(
                "{}{:.2}x",
                if r.dpor_complete { "" } else { ">=" },
                r.composed_reduction
            ),
            if !r.compared && !r.dpor_compared {
                "(truncated)".to_string()
            } else if r.outcomes_match && r.dpor_outcomes_match {
                "identical".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ]);
    }
    t.note(
        "all searches run with dedup and sleep sets off so fusion is the only \
         difference within a pair; `N+` marks a search truncated at the \
         budget, making the reduction a lower bound; `fused` counts invisible \
         steps executed without branching (0 means the kernel has no \
         invisible ops and its honest 1.00x); `composed` is what fusion still \
         removes after DPOR; `outcomes` compares {outcome kind, final state \
         for ok/deadlock} sets per pair and only when both sides completed",
    );
    t.note(format!(
        "* CI gate rows: fusion alone must reduce schedules by at least \
         {FUSE_FLOOR:.1}x and the dpor+fuse composition must never lose \
         ground; schedule counts are deterministic, so the gate holds on \
         every host"
    ));
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gate_holds_at_the_reference_budget() {
        let report = fuse_measure(FUSE_BUDGET);
        assert_eq!(report.rows.len(), registry::all().len());
        let failures = report.gate_failures();
        assert!(failures.is_empty(), "{failures:?}");
        for kernel in FUSE_GATE_KERNELS {
            let r = report.row(kernel).expect("gate kernel measured");
            assert!(r.fused_complete, "{kernel}: fused search truncated");
            assert!(
                r.reduction >= FUSE_FLOOR,
                "{kernel}: reduction {:.2}",
                r.reduction
            );
            assert!(r.fused_steps > 0, "{kernel}: nothing fused");
        }
        // The oracle must actually fire on most kernels: only the very
        // deepest state spaces may outgrow the unfused budget.
        let compared = report.rows.iter().filter(|r| r.compared).count();
        assert!(compared * 2 > report.rows.len(), "only {compared} compared");
        // And the DPOR pairs are cheap enough to always complete.
        assert!(report.rows.iter().all(|r| r.dpor_compared));
    }

    #[test]
    fn gate_failures_catch_divergence_and_regression() {
        let mut report = fuse_measure(1); // everything truncates
        assert!(!report.gate_failures().is_empty(), "nothing compared");
        report.rows[0].outcomes_match = false;
        report.rows[1].fused_schedules = report.rows[1].base_schedules + 1;
        let failures = report.gate_failures();
        assert!(
            failures.iter().any(|f| f.contains("diverged")),
            "{failures:?}"
        );
        assert!(
            failures.iter().any(|f| f.contains("increased schedules")),
            "{failures:?}"
        );
    }

    #[test]
    fn fuse_table_has_expected_shape() {
        let t = fuse_table(FUSE_BUDGET);
        assert_eq!(t.id, "E-fuse");
        assert_eq!(t.len(), registry::all().len());
        let rendered = t.to_string();
        assert!(rendered.contains(" *"), "gate rows are marked");
        assert!(rendered.contains("identical"));
        assert!(!rendered.contains("DIVERGED"));
    }
}
