//! E-serve: the model-checking service under a gated load harness.
//!
//! Two closed-loop load scenarios against an in-process [`lfm_serve`]
//! server, both fully seeded:
//!
//! 1. **no-chaos** — clients talk straight to the server; this is the
//!    throughput reference committed as `BENCH_serve.json` and gated by
//!    `--check-serve`;
//! 2. **chaos** — the same load behind a seeded [`ChaosProxy`]
//!    (drops, stalls, duplicates, truncations, mid-frame resets); the
//!    gate here is not speed but the robustness contract: **zero wrong
//!    answers**, explicit sheds instead of unbounded queues, and a
//!    clean drain.
//!
//! Like E-perf and E-par, the latency/throughput columns are host
//! properties recorded next to `host_parallelism`; the correctness
//! columns (`wrong`, `clean`) are the part that must hold everywhere.

use std::sync::Arc;
use std::time::Duration;

use lfm_obs::{json, NoopSink};
use lfm_serve::{ChaosProxy, LevelCaps, LoadConfig, NetFaultPlan, Server, ServerConfig};
use lfm_study::Table;

/// Schema identifier embedded in the `BENCH_serve.json` document.
pub const BENCH_SERVE_SCHEMA: &str = "lfm-bench-serve/v1";

/// Load seed shared by the mix, the retry jitter, and the chaos proxy.
pub const SERVE_SEED: u64 = 42;

/// Client threads per scenario.
const SERVE_CLIENTS: usize = 8;

/// Requests each client issues.
const SERVE_REQUESTS_PER_CLIENT: usize = 15;

/// The scenario name whose throughput the CI gate watches: the
/// chaos-free run, where requests/sec measures the service rather than
/// the injected faults.
pub const SERVE_GATE_SCENARIO: &str = "no-chaos";

/// The chaos-free run with every tracing knob on (`trace` plus a
/// zero-threshold slow gate): the numerator of the tracing-overhead
/// gate. Tracing claims to be a strict observer; this row is where the
/// claim is priced.
pub const SERVE_TRACE_SCENARIO: &str = "traced";

/// One load scenario's measurement.
#[derive(Debug, Clone)]
pub struct ServeRow {
    /// Scenario name (`no-chaos` or `chaos-<seed>`).
    pub scenario: String,
    /// Requests issued.
    pub requests: u64,
    /// Requests answered `ok` (possibly after retries).
    pub ok: u64,
    /// Requests that exhausted their retries.
    pub failed: u64,
    /// Wrong answers (must be 0 — see `lfm_serve::load`).
    pub wrong: u64,
    /// Cache hit rate over `ok` answers.
    pub hit_rate: f64,
    /// Fraction of attempts answered with a shed.
    pub shed_rate: f64,
    /// p50 request latency, microseconds (retries included).
    pub p50_us: u64,
    /// p99 request latency, microseconds (retries included).
    pub p99_us: u64,
    /// Completed requests per wall second.
    pub requests_per_sec: f64,
    /// Client-side retries across all requests (attempts beyond each
    /// request's first try).
    pub retries_total: u64,
    /// The worst single request's retry count.
    pub max_retries: u64,
    /// Server-side admissions per degrade level (exhaustive,
    /// sleep-set, preemption-bounded, pct-sampling).
    pub degrade: [u64; 4],
    /// Network faults the chaos proxy injected (0 without a proxy).
    pub faults_injected: u64,
    /// Whether the server drained cleanly at shutdown.
    pub clean_drain: bool,
}

/// The full E-serve measurement.
#[derive(Debug, Clone)]
pub struct ServeReport {
    /// Load seed every scenario shares.
    pub seed: u64,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_parallelism: usize,
    /// Scenario rows: no-chaos first, then chaos.
    pub rows: Vec<ServeRow>,
}

impl ServeReport {
    /// The row for `scenario`, if measured.
    pub fn row(&self, scenario: &str) -> Option<&ServeRow> {
        self.rows.iter().find(|r| r.scenario == scenario)
    }

    /// `true` when every scenario upheld the robustness contract:
    /// zero wrong answers and a clean drain.
    pub fn all_correct(&self) -> bool {
        self.rows.iter().all(|r| r.wrong == 0 && r.clean_drain)
    }
}

/// A bench-sized server: small pool, small queue, small exploration
/// caps — enough to engage the cache, the ladder, and the shed path
/// without turning the measurement into an exploration benchmark.
fn bench_server_config(traced: bool) -> ServerConfig {
    ServerConfig {
        workers: 2,
        queue_cap: 16,
        caps: LevelCaps {
            max_steps: 2_000,
            max_schedules: 2_000,
            explore_jobs: 1,
            dpor: false,
        },
        trace: traced,
        trace_slow_ms: if traced { Some(0) } else { None },
        ..ServerConfig::default()
    }
}

/// Runs one scenario: in-process server (fully traced when `traced`),
/// optional chaos proxy, closed load loop, graceful drain.
fn run_scenario(chaos_net: Option<u64>, seed: u64, traced: bool) -> std::io::Result<ServeRow> {
    let handle = Server::start(bench_server_config(traced), Arc::new(NoopSink))?;
    let proxy = match chaos_net {
        Some(chaos_seed) => Some(ChaosProxy::start(
            NetFaultPlan::new(chaos_seed),
            handle.addr(),
        )?),
        None => None,
    };
    let target = proxy.as_ref().map_or(handle.addr(), |p| p.addr());
    let load = LoadConfig {
        clients: SERVE_CLIENTS,
        requests_per_client: SERVE_REQUESTS_PER_CLIENT,
        seed,
        attempts: 10,
        timeout: Duration::from_secs(30),
        ..LoadConfig::default()
    };
    let report = lfm_serve::run_load(target, &load);
    let faults_injected = match proxy {
        Some(proxy) => {
            let stats = proxy.stats();
            proxy.stop();
            stats.total_injected()
        }
        None => 0,
    };
    let degrade = handle.stats().degrade_histogram();
    handle.request_shutdown();
    let summary = handle.wait();
    Ok(ServeRow {
        scenario: match (chaos_net, traced) {
            (Some(chaos_seed), _) => format!("chaos-{chaos_seed}"),
            (None, true) => SERVE_TRACE_SCENARIO.to_owned(),
            (None, false) => SERVE_GATE_SCENARIO.to_owned(),
        },
        requests: report.requests,
        ok: report.ok,
        failed: report.failed,
        wrong: report.wrong,
        hit_rate: report.hit_rate(),
        shed_rate: report.shed_rate(),
        p50_us: report.latency.p50(),
        p99_us: report.latency.p99(),
        requests_per_sec: report.requests_per_sec(),
        retries_total: report.retries_total,
        max_retries: report.max_retries,
        degrade,
        faults_injected,
        clean_drain: summary.clean,
    })
}

/// Runs the full E-serve measurement: the chaos-free reference, the
/// same load with full tracing on, then the chaos scenario at the
/// shared seed.
pub fn serve_measure() -> ServeReport {
    let mut rows = Vec::new();
    for (chaos_net, traced) in [(None, false), (None, true), (Some(SERVE_SEED), false)] {
        match run_scenario(chaos_net, SERVE_SEED, traced) {
            Ok(row) => rows.push(row),
            Err(e) => panic!("E-serve scenario failed to start: {e}"),
        }
    }
    ServeReport {
        seed: SERVE_SEED,
        host_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        rows,
    }
}

/// Best-of-2 chaos-free requests/sec with full tracing on vs off —
/// the inputs of the `--check-serve` tracing-overhead gate. Best-of
/// rather than mean because the gate hunts a structural cost (a lock
/// on the hot path, an allocation per span), not scheduler weather.
pub fn trace_overhead_measure() -> (f64, f64) {
    let best = |traced: bool| -> f64 {
        (0..2)
            .map(|_| match run_scenario(None, SERVE_SEED, traced) {
                Ok(row) => row.requests_per_sec,
                Err(e) => panic!("E-serve overhead scenario failed to start: {e}"),
            })
            .fold(0.0, f64::max)
    };
    // Interleaving would be fairer under thermal drift, but the runs
    // are short; keep the order deterministic and obvious.
    let traced = best(true);
    let untraced = best(false);
    (traced, untraced)
}

/// Renders the measurement as the E-serve table.
pub fn serve_table() -> Table {
    let report = serve_measure();
    let mut t = Table::new(
        "E-serve",
        format!(
            "Model-checking service under load (seed {}, {} clients x {} requests, \
             host parallelism {})",
            report.seed, SERVE_CLIENTS, SERVE_REQUESTS_PER_CLIENT, report.host_parallelism
        ),
        vec![
            "scenario",
            "ok/requests",
            "wrong",
            "hit rate",
            "shed rate",
            "p50 us",
            "p99 us",
            "req/sec",
            "retries",
            "faults",
            "drain",
        ],
    );
    for r in &report.rows {
        t.row(vec![
            r.scenario.clone(),
            format!("{}/{}", r.ok, r.requests),
            r.wrong.to_string(),
            format!("{:.2}", r.hit_rate),
            format!("{:.2}", r.shed_rate),
            r.p50_us.to_string(),
            r.p99_us.to_string(),
            format!("{:.0}", r.requests_per_sec),
            format!("{} (max {})", r.retries_total, r.max_retries),
            r.faults_injected.to_string(),
            if r.clean_drain { "clean" } else { "UNCLEAN" }.to_string(),
        ]);
    }
    t.note(
        "closed-loop zipf load against an in-process lfm-serve server; the \
         chaos row rides a seeded fault-injecting proxy (drops, stalls, \
         duplicates, truncations, mid-frame resets); `wrong` counts fixed \
         variants reporting failures or buggy kernels falsely proved clean \
         and must be 0 in both rows",
    );
    t.note(
        "latency and req/sec are host properties (see BENCH_serve.json for \
         the committed reference run); wrong=0 and a clean drain are the \
         correctness claim and must hold everywhere",
    );
    t
}

/// Serializes the measurement as the `BENCH_serve.json` document
/// (`lfm-bench-serve/v1`).
pub fn serve_json(report: &ServeReport) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(1024);
    let _ = write!(
        out,
        "{{\"schema\":{},\"seed\":{},\"clients\":{},\"requests_per_client\":{},\
         \"host_parallelism\":{}",
        json::quote(BENCH_SERVE_SCHEMA),
        report.seed,
        SERVE_CLIENTS,
        SERVE_REQUESTS_PER_CLIENT,
        report.host_parallelism
    );
    out.push_str(",\"scenarios\":[");
    for (i, r) in report.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"scenario\":{},\"requests\":{},\"ok\":{},\"failed\":{},\"wrong\":{},\
             \"hit_rate\":{},\"shed_rate\":{},\"p50_us\":{},\"p99_us\":{},\
             \"requests_per_sec\":{},\"retries_total\":{},\"max_retries\":{},\
             \"degrade\":[{},{},{},{}],\"faults_injected\":{},\
             \"clean_drain\":{}}}",
            json::quote(&r.scenario),
            r.requests,
            r.ok,
            r.failed,
            r.wrong,
            json::number_f64(r.hit_rate),
            json::number_f64(r.shed_rate),
            r.p50_us,
            r.p99_us,
            json::number_f64(r.requests_per_sec),
            r.retries_total,
            r.max_retries,
            r.degrade[0],
            r.degrade[1],
            r.degrade[2],
            r.degrade[3],
            r.faults_injected,
            r.clean_drain,
        );
    }
    out.push_str("]}");
    out
}

/// Extracts the gate throughput for `scenario` from a
/// `BENCH_serve.json` document without a JSON parser. Returns `None`
/// when the scenario or field is missing or malformed.
pub fn baseline_requests_per_sec(doc: &str, scenario: &str) -> Option<f64> {
    let marker = format!("\"scenario\":{}", json::quote(scenario));
    let at = doc.find(&marker)?;
    crate::perf::object_field(&doc[at..], "requests_per_sec")
}

#[cfg(test)]
mod tests {
    use super::*;

    // The full two-scenario measurement runs in the `tables` artifact
    // suite and the CI gate; the unit tests here keep to the cheap,
    // deterministic pieces plus one single-scenario smoke.

    #[test]
    fn single_scenario_upholds_the_contract() {
        let row = run_scenario(None, 7, false).expect("scenario runs");
        assert_eq!(row.scenario, SERVE_GATE_SCENARIO);
        assert_eq!(
            row.requests,
            (SERVE_CLIENTS * SERVE_REQUESTS_PER_CLIENT) as u64
        );
        assert_eq!(row.wrong, 0, "wrong answers without chaos: {row:?}");
        assert!(row.clean_drain, "unclean drain: {row:?}");
        assert_eq!(row.ok + row.failed, row.requests);
        assert!(row.ok > 0);
        assert_eq!(row.faults_injected, 0);
        assert!(
            row.retries_total >= row.max_retries,
            "worst request outran the total: {row:?}"
        );
    }

    #[test]
    fn traced_scenario_is_named_and_upholds_the_contract() {
        let row = run_scenario(None, 7, true).expect("scenario runs");
        assert_eq!(row.scenario, SERVE_TRACE_SCENARIO);
        assert_eq!(row.wrong, 0, "tracing produced wrong answers: {row:?}");
        assert!(row.clean_drain, "unclean drain under tracing: {row:?}");
        assert!(row.ok > 0);
    }

    #[test]
    fn json_round_trips_the_gate_scenario() {
        let report = ServeReport {
            seed: SERVE_SEED,
            host_parallelism: 4,
            rows: vec![
                ServeRow {
                    scenario: SERVE_GATE_SCENARIO.to_owned(),
                    requests: 120,
                    ok: 118,
                    failed: 2,
                    wrong: 0,
                    hit_rate: 0.61,
                    shed_rate: 0.05,
                    p50_us: 900,
                    p99_us: 42_000,
                    requests_per_sec: 812.5,
                    retries_total: 3,
                    max_retries: 2,
                    degrade: [30, 0, 5, 2],
                    faults_injected: 0,
                    clean_drain: true,
                },
                ServeRow {
                    scenario: "chaos-42".to_owned(),
                    requests: 120,
                    ok: 110,
                    failed: 10,
                    wrong: 0,
                    hit_rate: 0.64,
                    shed_rate: 0.08,
                    p50_us: 1_400,
                    p99_us: 90_000,
                    requests_per_sec: 410.0,
                    retries_total: 41,
                    max_retries: 6,
                    degrade: [28, 0, 4, 1],
                    faults_injected: 77,
                    clean_drain: true,
                },
            ],
        };
        let doc = serve_json(&report);
        assert!(doc.starts_with("{\"schema\":\"lfm-bench-serve/v1\""));
        assert!(doc.contains("\"retries_total\":3"), "{doc}");
        assert!(doc.contains("\"max_retries\":6"), "{doc}");
        let opens = doc.matches('{').count() + doc.matches('[').count();
        let closes = doc.matches('}').count() + doc.matches(']').count();
        assert_eq!(opens, closes);
        let parsed = baseline_requests_per_sec(&doc, SERVE_GATE_SCENARIO).expect("field extracted");
        assert!((parsed - 812.5).abs() < 0.01, "parsed {parsed}");
        let chaos = baseline_requests_per_sec(&doc, "chaos-42").expect("chaos row extracted");
        assert!((chaos - 410.0).abs() < 0.01, "parsed {chaos}");
        assert_eq!(baseline_requests_per_sec(&doc, "no-such-scenario"), None);
        assert_eq!(baseline_requests_per_sec("{}", SERVE_GATE_SCENARIO), None);
    }

    #[test]
    fn all_correct_rejects_wrong_answers_and_unclean_drains() {
        let mut report = ServeReport {
            seed: 1,
            host_parallelism: 1,
            rows: vec![ServeRow {
                scenario: "x".to_owned(),
                requests: 1,
                ok: 1,
                failed: 0,
                wrong: 0,
                hit_rate: 0.0,
                shed_rate: 0.0,
                p50_us: 1,
                p99_us: 1,
                requests_per_sec: 1.0,
                retries_total: 0,
                max_retries: 0,
                degrade: [1, 0, 0, 0],
                faults_injected: 0,
                clean_drain: true,
            }],
        };
        assert!(report.all_correct());
        report.rows[0].wrong = 1;
        assert!(!report.all_correct());
        report.rows[0].wrong = 0;
        report.rows[0].clean_drain = false;
        assert!(!report.all_correct());
    }
}
