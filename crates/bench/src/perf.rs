//! E-perf: exploration hot-path throughput (COW snapshots + incremental
//! hashing vs the legacy deep-copy representation).
//!
//! The serial explorer's inner loop clones the executor once per
//! explored choice and probes the dedup set once per visited state.
//! Both operations were rewritten: snapshots share heavy state through
//! `Arc` (copy-on-write), and the dedup key is an incrementally
//! maintained fingerprint instead of a from-scratch rehash. The legacy
//! behaviour survives behind [`Explorer::legacy_snapshots`] purely as a
//! baseline, and is observationally identical — same schedules, same
//! dedup decisions, same report — so the only thing this experiment is
//! allowed to show is *time*.
//!
//! Two measurements:
//!
//! 1. a **sweep** of every kernel's buggy variant under the optimized
//!    explorer (dedup on, schedule budget capped): states/second, wall
//!    time, snapshot bytes saved, and a peak-frontier-bytes estimate
//!    per kernel;
//! 2. a **speedup** comparison on the two deepest kernels from the
//!    sweep (deepest DFS stack — where the pre-COW O(depth) clone and
//!    O(state) rehash hurt most): the same exploration run back-to-back
//!    in optimized and legacy mode, reports checked field-for-field.
//!
//! Throughput is a host property; like E-par, the numbers are recorded
//! next to `host_parallelism` and the report-equality column is the
//! part that must hold everywhere.

use lfm_kernels::registry;
use lfm_obs::json;
use lfm_sim::{Executor, ExploreLimits, ExploreReport, Explorer};
use lfm_study::Table;

/// Schedule budget used for the committed `BENCH_explore.json`
/// baseline and the CI regression check (kept in one place so the two
/// always measure the same workload).
pub const PERF_BUDGET: u64 = 2_000;

/// Schema identifier embedded in the `BENCH_explore.json` document.
pub const BENCH_EXPLORE_SCHEMA: &str = "lfm-bench-explore/v1";

/// The kernel the CI regression gate watches: the largest state space
/// in the registry, so its exploration always exhausts the budget and
/// every run does the same amount of work.
pub const PERF_GATE_KERNEL: &str = "livelock_retry";

/// Timed repetitions per explorer mode in the speedup comparison; each
/// mode reports its fastest wall (see `perf_measure`).
const SPEEDUP_REPS: usize = 3;

/// One kernel's sweep measurement under the optimized explorer.
#[derive(Debug, Clone)]
pub struct PerfRow {
    /// Kernel id.
    pub kernel: &'static str,
    /// The kernel's bug family.
    pub family: String,
    /// Schedules the exploration ran.
    pub schedules: u64,
    /// Total visible steps (states visited) across all executions.
    pub steps: u64,
    /// Wall-clock time of the exploration, microseconds.
    pub wall_us: u64,
    /// States visited per second (`steps / wall`).
    pub states_per_sec: f64,
    /// Deepest DFS stack observed.
    pub max_depth: u64,
    /// Heap bytes the COW representation avoided copying.
    pub snapshot_bytes_saved: u64,
    /// Estimated peak bytes held by the DFS frontier:
    /// `(max_depth + 1) * shallow snapshot size` of the root executor.
    /// An estimate — snapshots deeper in the tree carry slightly larger
    /// chunk-pointer tables — but a deterministic one.
    pub peak_frontier_bytes: u64,
}

/// One deep kernel's optimized-vs-legacy comparison.
#[derive(Debug, Clone)]
pub struct PerfSpeedup {
    /// Kernel id.
    pub kernel: &'static str,
    /// Deepest DFS stack observed (why this kernel was picked).
    pub max_depth: u64,
    /// Optimized (COW + incremental hash) wall time, microseconds.
    pub cow_wall_us: u64,
    /// Legacy (deep clone + from-scratch hash) wall time, microseconds.
    pub legacy_wall_us: u64,
    /// Optimized states per second.
    pub cow_states_per_sec: f64,
    /// Legacy states per second.
    pub legacy_states_per_sec: f64,
    /// `legacy wall / optimized wall`.
    pub speedup: f64,
    /// Whether the two reports matched field-for-field (everything
    /// except measured wall time). Must be `true` on every host.
    pub identical: bool,
}

/// The full E-perf measurement.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Schedule budget each exploration was capped at.
    pub budget: u64,
    /// `std::thread::available_parallelism()` on the measuring host.
    pub host_parallelism: usize,
    /// Per-kernel sweep, in registry order.
    pub rows: Vec<PerfRow>,
    /// Legacy comparison on the two deepest kernels.
    pub speedups: Vec<PerfSpeedup>,
}

impl PerfReport {
    /// The sweep row for `kernel`, if that kernel was measured.
    pub fn row(&self, kernel: &str) -> Option<&PerfRow> {
        self.rows.iter().find(|r| r.kernel == kernel)
    }

    /// `true` when every legacy run reproduced the optimized report.
    pub fn all_identical(&self) -> bool {
        self.speedups.iter().all(|s| s.identical)
    }
}

/// Field-for-field report equality, ignoring only the measured wall
/// time. Unlike E-par's serial-vs-parallel check this also compares
/// the COW accounting: legacy mode reports the same
/// `snapshot_bytes_saved` it *would* have saved, by construction.
pub(crate) fn reports_identical(a: &ExploreReport, b: &ExploreReport) -> bool {
    a.counts == b.counts
        && a.schedules_run == b.schedules_run
        && a.steps_total == b.steps_total
        && a.truncated == b.truncated
        && a.first_failure == b.first_failure
        && a.first_ok == b.first_ok
        && a.states_deduped == b.states_deduped
        && a.sleep_pruned == b.sleep_pruned
        && a.truncation == b.truncation
        && a.stats.branch_points == b.stats.branch_points
        && a.stats.snapshots == b.stats.snapshots
        && a.stats.snapshot_bytes_saved == b.stats.snapshot_bytes_saved
        && a.stats.max_depth == b.stats.max_depth
        && a.stats.preemption_limited == b.stats.preemption_limited
        && a.est_total_schedules.to_bits() == b.est_total_schedules.to_bits()
}

fn explore_limits(max_schedules: u64) -> ExploreLimits {
    ExploreLimits {
        max_schedules,
        dedup_states: true,
        ..ExploreLimits::default()
    }
}

/// Runs the full E-perf measurement: the per-kernel sweep, then the
/// legacy comparison on the two deepest kernels.
pub fn perf_measure(max_schedules: u64) -> PerfReport {
    let limits = explore_limits(max_schedules);

    let mut rows = Vec::new();
    for kernel in registry::all() {
        let program = kernel.buggy();
        let shallow = Executor::new(&program).snapshot_shallow_bytes();
        let report = Explorer::new(&program).limits(limits.clone()).run();
        let wall_us = report.stats.wall.as_micros() as u64;
        rows.push(PerfRow {
            kernel: kernel.id,
            family: kernel.family.to_string(),
            schedules: report.schedules_run,
            steps: report.steps_total,
            wall_us,
            states_per_sec: report.states_per_sec(),
            max_depth: report.stats.max_depth,
            snapshot_bytes_saved: report.stats.snapshot_bytes_saved,
            peak_frontier_bytes: (report.stats.max_depth + 1) * shallow,
        });
    }

    // The two deepest kernels (ties broken by id so the pick is
    // deterministic): deepest DFS stack means the most snapshot state
    // alive at once, which is exactly where the pre-COW representation
    // paid its O(depth) clone per choice.
    let mut by_depth: Vec<(u64, &'static str)> =
        rows.iter().map(|r| (r.max_depth, r.kernel)).collect();
    by_depth.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(b.1)));

    let speedups = by_depth
        .iter()
        .take(2)
        .map(|&(max_depth, id)| {
            let kernel = registry::by_id(id).expect("kernel came from the registry");
            let program = kernel.buggy();
            // Interleaved best-of-N: both modes run the identical
            // workload SPEEDUP_REPS times and each keeps its fastest
            // wall. Single runs on a busy host swing by 2x and more;
            // the minimum is the standard way to estimate what the code
            // costs rather than what the scheduler did that millisecond.
            // The semantic reports are asserted identical across every
            // repetition, not just the fastest pair.
            let mut cow_runs = Vec::new();
            let mut legacy_runs = Vec::new();
            for _ in 0..SPEEDUP_REPS {
                cow_runs.push(Explorer::new(&program).limits(limits.clone()).run());
                legacy_runs.push(
                    Explorer::new(&program)
                        .limits(limits.clone())
                        .legacy_snapshots()
                        .run(),
                );
            }
            let fastest = |runs: &[lfm_sim::explore::ExploreReport]| {
                runs.iter()
                    .enumerate()
                    .min_by_key(|(_, r)| r.stats.wall)
                    .map(|(i, _)| i)
                    .expect("SPEEDUP_REPS > 0")
            };
            let identical = cow_runs
                .iter()
                .zip(legacy_runs.iter())
                .all(|(c, l)| reports_identical(c, l));
            let cow = cow_runs.swap_remove(fastest(&cow_runs));
            let legacy = legacy_runs.swap_remove(fastest(&legacy_runs));
            let cow_wall_us = cow.stats.wall.as_micros() as u64;
            let legacy_wall_us = legacy.stats.wall.as_micros() as u64;
            PerfSpeedup {
                kernel: id,
                max_depth,
                cow_wall_us,
                legacy_wall_us,
                cow_states_per_sec: cow.states_per_sec(),
                legacy_states_per_sec: legacy.states_per_sec(),
                speedup: legacy_wall_us as f64 / cow_wall_us.max(1) as f64,
                identical,
            }
        })
        .collect();

    PerfReport {
        budget: max_schedules,
        host_parallelism: std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1),
        rows,
        speedups,
    }
}

/// Renders the measurement as the E-perf table: one sweep row per
/// kernel, then the legacy-comparison rows.
pub fn perf_table(max_schedules: u64) -> Table {
    let report = perf_measure(max_schedules);
    let mut t = Table::new(
        "E-perf",
        format!(
            "Exploration hot-path throughput ({} kernels, budget {}, host parallelism {})",
            report.rows.len(),
            report.budget,
            report.host_parallelism
        ),
        vec![
            "kernel",
            "family",
            "schedules",
            "states/sec",
            "depth",
            "bytes saved",
            "peak frontier",
        ],
    );
    for r in &report.rows {
        t.row(vec![
            r.kernel.to_string(),
            r.family.clone(),
            r.schedules.to_string(),
            format!("{:.0}", r.states_per_sec),
            r.max_depth.to_string(),
            r.snapshot_bytes_saved.to_string(),
            r.peak_frontier_bytes.to_string(),
        ]);
    }
    for s in &report.speedups {
        t.row(vec![
            format!("{} (legacy)", s.kernel),
            "deep-clone baseline".to_string(),
            "same".to_string(),
            format!("{:.0}", s.legacy_states_per_sec),
            s.max_depth.to_string(),
            format!("{:.2}x slower", 1.0 / s.speedup.max(f64::MIN_POSITIVE)),
            if s.identical {
                "identical".to_string()
            } else {
                "DIVERGED".to_string()
            },
        ]);
    }
    t.note(
        "states/sec = visible steps / wall; `peak frontier` is \
         (max_depth + 1) x the root executor's shallow snapshot size, a \
         deterministic estimate of DFS memory; legacy rows rerun the two \
         deepest kernels with pre-COW deep clones + from-scratch hashing \
         and must reproduce the optimized report field-for-field",
    );
    t.note(
        "throughput and speedup are host properties (see \
         BENCH_explore.json for the committed reference run); report \
         equality is the correctness claim and must hold everywhere",
    );
    t
}

/// Serializes the measurement as the `BENCH_explore.json` document
/// (`lfm-bench-explore/v1`). The `dpor` and `fuse` sections are
/// additive to the schema: older documents simply lack them, and
/// [`baseline_dpor_schedules`] / [`baseline_fused_schedules`] return
/// `None` on them.
pub fn perf_json(
    report: &PerfReport,
    dpor: &crate::dpor::DporReport,
    fuse: &crate::fuse::FuseReport,
) -> String {
    use std::fmt::Write as _;
    let mut out = String::with_capacity(4096);
    let _ = write!(
        out,
        "{{\"schema\":{},\"budget\":{},\"host_parallelism\":{}",
        json::quote(BENCH_EXPLORE_SCHEMA),
        report.budget,
        report.host_parallelism
    );
    out.push_str(",\"kernels\":[");
    for (i, r) in report.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"kernel\":{},\"family\":{},\"schedules\":{},\"steps\":{},\"wall_us\":{},\
             \"states_per_sec\":{},\"max_depth\":{},\"snapshot_bytes_saved\":{},\
             \"peak_frontier_bytes\":{}}}",
            json::quote(r.kernel),
            json::quote(&r.family),
            r.schedules,
            r.steps,
            r.wall_us,
            json::number_f64(r.states_per_sec),
            r.max_depth,
            r.snapshot_bytes_saved,
            r.peak_frontier_bytes,
        );
    }
    out.push_str("],\"deepest\":[");
    for (i, s) in report.speedups.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"kernel\":{},\"max_depth\":{},\"cow_wall_us\":{},\"legacy_wall_us\":{},\
             \"cow_states_per_sec\":{},\"legacy_states_per_sec\":{},\"speedup\":{},\
             \"reports_identical\":{}}}",
            json::quote(s.kernel),
            s.max_depth,
            s.cow_wall_us,
            s.legacy_wall_us,
            json::number_f64(s.cow_states_per_sec),
            json::number_f64(s.legacy_states_per_sec),
            json::number_f64(s.speedup),
            s.identical,
        );
    }
    out.push_str("],\"dpor\":{");
    let _ = write!(
        out,
        "\"budget\":{},\"floor\":{},\"rows\":[",
        dpor.budget,
        json::number_f64(crate::dpor::DPOR_FLOOR),
    );
    for (i, r) in dpor.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"kernel\":{},\"family\":{},\"max_depth\":{},\"full_schedules\":{},\
             \"full_complete\":{},\"dpor_schedules\":{},\"dpor_complete\":{},\
             \"reduction\":{},\"compared\":{},\"outcomes_match\":{}}}",
            json::quote(r.kernel),
            json::quote(&r.family),
            r.max_depth,
            r.full_schedules,
            r.full_complete,
            r.dpor_schedules,
            r.dpor_complete,
            json::number_f64(r.reduction),
            r.compared,
            r.outcomes_match,
        );
    }
    out.push_str("]},\"fuse\":{");
    let _ = write!(
        out,
        "\"budget\":{},\"floor\":{},\"rows\":[",
        fuse.budget,
        json::number_f64(crate::fuse::FUSE_FLOOR),
    );
    for (i, r) in fuse.rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"kernel\":{},\"family\":{},\"base_schedules\":{},\"base_complete\":{},\
             \"fused_schedules\":{},\"fused_complete\":{},\"fused_steps\":{},\
             \"reduction\":{},\"dpor_schedules\":{},\"dpor_complete\":{},\
             \"dpor_fused_schedules\":{},\"dpor_fused_complete\":{},\
             \"composed_reduction\":{},\"compared\":{},\"outcomes_match\":{},\
             \"dpor_compared\":{},\"dpor_outcomes_match\":{}}}",
            json::quote(r.kernel),
            json::quote(&r.family),
            r.base_schedules,
            r.base_complete,
            r.fused_schedules,
            r.fused_complete,
            r.fused_steps,
            json::number_f64(r.reduction),
            r.dpor_schedules,
            r.dpor_complete,
            r.dpor_fused_schedules,
            r.dpor_fused_complete,
            json::number_f64(r.composed_reduction),
            r.compared,
            r.outcomes_match,
            r.dpor_compared,
            r.dpor_outcomes_match,
        );
    }
    out.push_str("]}}");
    out
}

/// Extracts the committed DPOR schedule count for `kernel` from a
/// `BENCH_explore.json` document. Schedule counts are deterministic,
/// so `--check-explore` can flag drift against the baseline exactly —
/// drift means the search semantics changed, which is fine only when
/// it is intentional (regenerate with `--bench-explore`). Returns
/// `None` for documents predating the `dpor` section.
pub fn baseline_dpor_schedules(doc: &str, kernel: &str) -> Option<u64> {
    let dpor = doc.find("\"dpor\":")?;
    let tail = &doc[dpor..];
    let marker = format!("\"kernel\":{}", json::quote(kernel));
    let at = tail.find(&marker)?;
    object_field(&tail[at..], "dpor_schedules").map(|v| v as u64)
}

/// Extracts the committed fused schedule count for `kernel` from a
/// `BENCH_explore.json` document, for the same deterministic drift
/// check [`baseline_dpor_schedules`] gives DPOR. Returns `None` for
/// documents predating the `fuse` section.
pub fn baseline_fused_schedules(doc: &str, kernel: &str) -> Option<u64> {
    let fuse = doc.find("\"fuse\":")?;
    let tail = &doc[fuse..];
    let marker = format!("\"kernel\":{}", json::quote(kernel));
    let at = tail.find(&marker)?;
    object_field(&tail[at..], "fused_schedules").map(|v| v as u64)
}

/// Extracts the gate throughput for `kernel` from a
/// `BENCH_explore.json` document without a JSON parser: prefers the
/// best-of-N `"cow_states_per_sec"` from the `"deepest"` section (the
/// stable measurement) and falls back to the kernel's single-run sweep
/// row. Returns `None` when the kernel or field is missing or
/// malformed.
pub fn baseline_states_per_sec(doc: &str, kernel: &str) -> Option<f64> {
    let marker = format!("\"kernel\":{}", json::quote(kernel));
    if let Some(deepest) = doc.find("\"deepest\":") {
        let tail = &doc[deepest..];
        if let Some(v) = tail
            .find(&marker)
            .and_then(|at| object_field(&tail[at..], "cow_states_per_sec"))
        {
            return Some(v);
        }
    }
    let at = doc.find(&marker)?;
    object_field(&doc[at..], "states_per_sec")
}

/// Reads `"name":<number>` inside the object fragment starting at
/// `rest` (everything up to the first `}`). Shared with the E-serve
/// baseline extractor, which reads the same committed-JSON shape.
pub(crate) fn object_field(rest: &str, name: &str) -> Option<f64> {
    let obj = &rest[..rest.find('}')?];
    let needle = format!("\"{name}\":");
    let field = obj.find(&needle)?;
    let val = &obj[field + needle.len()..];
    let end = val
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(val.len());
    val[..end].parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    // Timing columns vary with the host, so the stable assertions are
    // the sweep coverage, the deterministic accounting columns, and the
    // report-equality flags.
    #[test]
    fn sweep_covers_every_kernel_and_legacy_is_identical() {
        let report = perf_measure(150);
        assert_eq!(report.rows.len(), registry::all().len());
        assert_eq!(report.speedups.len(), 2);
        assert!(report.all_identical());
        for r in &report.rows {
            assert!(r.schedules > 0, "{}: no schedules", r.kernel);
            assert!(r.steps > 0, "{}: no steps", r.kernel);
            assert!(
                r.peak_frontier_bytes >= r.max_depth,
                "{}: frontier estimate below depth",
                r.kernel
            );
        }
        for s in &report.speedups {
            assert!(s.speedup > 0.0);
            assert!(s.max_depth > 0);
        }
        // The two deepest kernels are distinct.
        assert_ne!(report.speedups[0].kernel, report.speedups[1].kernel);
    }

    #[test]
    fn deep_kernels_save_snapshot_bytes() {
        let report = perf_measure(150);
        // Every kernel that snapshots at all must report savings: a
        // deep clone always copies strictly more than a COW clone.
        for s in &report.speedups {
            let row = report.row(s.kernel).expect("deep kernel was swept");
            assert!(
                row.snapshot_bytes_saved > 0,
                "{}: COW saved nothing",
                s.kernel
            );
        }
    }

    #[test]
    fn perf_table_has_expected_shape() {
        let t = perf_table(100);
        assert_eq!(t.id, "E-perf");
        assert_eq!(t.len(), registry::all().len() + 2, "sweep rows + 2 legacy");
        let rendered = t.to_string();
        assert!(rendered.contains("(legacy)"));
        assert!(!rendered.contains("DIVERGED"));
    }

    #[test]
    fn json_round_trips_the_gate_kernel() {
        let report = perf_measure(100);
        let dpor = crate::dpor::dpor_measure(500);
        let fuse = crate::fuse::fuse_measure(500);
        let doc = perf_json(&report, &dpor, &fuse);
        assert!(doc.starts_with("{\"schema\":\"lfm-bench-explore/v1\""));
        let opens = doc.matches('{').count() + doc.matches('[').count();
        let closes = doc.matches('}').count() + doc.matches(']').count();
        assert_eq!(opens, closes);
        let expected = report
            .speedups
            .iter()
            .find(|s| s.kernel == PERF_GATE_KERNEL)
            .map(|s| s.cow_states_per_sec)
            .or_else(|| report.row(PERF_GATE_KERNEL).map(|r| r.states_per_sec))
            .expect("gate kernel measured");
        let parsed = baseline_states_per_sec(&doc, PERF_GATE_KERNEL).expect("field extracted");
        // number_f64 formats with finite precision; match loosely.
        let rel = (parsed - expected).abs() / expected.max(1.0);
        assert!(rel < 0.01, "parsed {parsed} vs measured {expected}");
        assert_eq!(baseline_states_per_sec(&doc, "no_such_kernel"), None);
        assert_eq!(baseline_states_per_sec("{}", PERF_GATE_KERNEL), None);
        // The dpor section round-trips exactly (counts are integers).
        let gate = dpor.row(PERF_GATE_KERNEL).expect("gate kernel measured");
        assert_eq!(
            baseline_dpor_schedules(&doc, PERF_GATE_KERNEL),
            Some(gate.dpor_schedules)
        );
        assert_eq!(baseline_dpor_schedules(&doc, "no_such_kernel"), None);
        assert_eq!(baseline_dpor_schedules("{}", PERF_GATE_KERNEL), None);
        // The fuse section round-trips exactly too.
        let fuse_gate = fuse.row(PERF_GATE_KERNEL).expect("gate kernel measured");
        assert_eq!(
            baseline_fused_schedules(&doc, PERF_GATE_KERNEL),
            Some(fuse_gate.fused_schedules)
        );
        assert_eq!(baseline_fused_schedules(&doc, "no_such_kernel"), None);
        assert_eq!(baseline_fused_schedules("{}", PERF_GATE_KERNEL), None);
        // The sweep extractor must not be confused by the dpor or fuse
        // rows that mention the same kernel ids further down the
        // document.
        assert!(baseline_states_per_sec(&doc, PERF_GATE_KERNEL).is_some());
    }
}
