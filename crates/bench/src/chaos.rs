//! E-chaos: manifestation-rate amplification under injected noise.
//!
//! The study's testing implication says naive stress rarely hits the
//! narrow buggy windows. ConTest-style noise making — spurious wakeups,
//! failed `try_lock`s, forced aborts, and bounded stalls, here the
//! deterministic [`FaultPlan`] — widens those windows. This experiment
//! measures the amplification on the simulator (the same seeded walker
//! with and without a fault plan) and, for scale, runs the native
//! kernels under the watchdog-supervised stress harness whose built-in
//! yield noise plays the same role on real threads.

use lfm_kernels::registry;
use lfm_native::{stress_with, NativeOutcome, StressConfig};
use lfm_sim::{FaultPlan, RandomWalker};
use lfm_study::Table;
use std::time::Duration;

/// The chaos seed used for the experiment (also the CI smoke seed).
pub const CHAOS_SEED: u64 = 42;

/// One kernel's quiet-vs-noisy manifestation rates.
#[derive(Debug, Clone)]
pub struct ChaosRow {
    /// Kernel id.
    pub kernel: &'static str,
    /// `"sim"` or `"native"`.
    pub substrate: &'static str,
    /// Trials per campaign.
    pub trials: u64,
    /// Manifestation rate without noise.
    pub quiet_rate: f64,
    /// Manifestation rate under the fault plan (sim only — native
    /// kernels carry their own yield-based noise).
    pub chaos_rate: Option<f64>,
    /// Trials lost to the native watchdog or to panics.
    pub lost: usize,
}

/// Runs the comparison: seeded random walks with and without a
/// [`FaultPlan`] on the simulator, watchdog-supervised stress natively.
pub fn chaos_comparison(trials: u64) -> Vec<ChaosRow> {
    const SIM_KERNELS: [&str; 3] = ["counter_rmw", "toctou_flag", "cache_pair_invariant"];
    let mut rows = Vec::new();
    for id in SIM_KERNELS {
        let kernel = registry::by_id(id).expect("known kernel");
        let program = kernel.buggy();
        let quiet = RandomWalker::new(&program, 7).run_trials(trials);
        let noisy = RandomWalker::new(&program, 7)
            .with_faults(FaultPlan::new(CHAOS_SEED))
            .run_trials(trials);
        rows.push(ChaosRow {
            kernel: id,
            substrate: "sim",
            trials,
            quiet_rate: quiet.failure_rate(),
            chaos_rate: Some(noisy.failure_rate()),
            lost: 0,
        });
    }

    // Native campaigns are orders of magnitude slower per trial, so run
    // fewer of them; each trial is supervised by a scaled watchdog and
    // retried once on a timeout or panic.
    let native_trials = ((trials / 8).max(4)) as usize;
    let config = StressConfig::new(native_trials)
        .per_trial_timeout(lfm_native::scaled(Duration::from_secs(5)))
        .retries(1);
    type NativeKernel = fn() -> NativeOutcome;
    let native: [(&'static str, NativeKernel); 2] = [
        ("racy_counter", || {
            lfm_native::kernels::racy_counter(2, 500, false)
        }),
        ("double_check_init", || {
            lfm_native::kernels::double_check_init(3, false)
        }),
    ];
    for (id, kernel) in native {
        let report = stress_with(&config, kernel);
        rows.push(ChaosRow {
            kernel: id,
            substrate: "native",
            trials: report.trials as u64,
            quiet_rate: report.rate(),
            chaos_rate: None,
            lost: report.timeouts + report.panics,
        });
    }
    rows
}

/// Renders the comparison as the E-chaos table.
pub fn chaos_table(trials: u64) -> Table {
    let rows = chaos_comparison(trials);
    let mut t = Table::new(
        "E-chaos",
        format!("Manifestation amplification under noise (seed {CHAOS_SEED})"),
        vec!["kernel", "substrate", "trials", "quiet rate", "chaos rate"],
    );
    let mut lost = 0;
    for r in &rows {
        t.row(vec![
            r.kernel.to_string(),
            r.substrate.to_string(),
            r.trials.to_string(),
            format!("{:.0}%", 100.0 * r.quiet_rate),
            match r.chaos_rate {
                Some(rate) => format!("{:.0}%", 100.0 * rate),
                None => "—".to_string(),
            },
        ]);
        lost += r.lost;
    }
    t.note(
        "sim rows rerun the same seeded walker with a FaultPlan (spurious \
         wakeups, trylock failures, forced aborts, stalls); native rows are \
         watchdog-supervised stress campaigns whose yield noise is baked in",
    );
    if lost > 0 {
        t.note(format!(
            "{lost} native trial(s) lost to the per-trial watchdog or panics \
             (after one retry each)"
        ));
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    // Structure-only assertions: manifestation rates vary by scheduler
    // and machine, and the shadow-build rand stub diverges from the real
    // one, so the numbers themselves are not stable test targets.
    #[test]
    fn chaos_table_has_expected_shape() {
        let t = chaos_table(40);
        assert_eq!(t.id, "E-chaos");
        assert_eq!(t.len(), 5, "3 sim rows + 2 native rows");
        let rendered = t.to_string();
        assert!(rendered.contains("counter_rmw"));
        assert!(rendered.contains("native"));
        assert!(rendered.contains("chaos rate"));
    }

    #[test]
    fn sim_rows_have_chaos_rates_and_native_rows_do_not() {
        let rows = chaos_comparison(20);
        for r in &rows {
            match r.substrate {
                "sim" => assert!(r.chaos_rate.is_some()),
                "native" => assert!(r.chaos_rate.is_none()),
                other => panic!("unexpected substrate {other}"),
            }
        }
    }
}
