//! The study's classification taxonomy.
//!
//! Every axis mirrors a dimension of the ASPLOS'08 characterization:
//! bug pattern, manifestation scope (threads / variables / accesses /
//! resources), fix strategy, and transactional-memory applicability.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The four applications whose bug databases the study examined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum App {
    /// MySQL database server.
    MySql,
    /// Apache HTTP server (httpd and support libraries).
    Apache,
    /// Mozilla browser suite.
    Mozilla,
    /// OpenOffice office suite.
    OpenOffice,
}

impl App {
    /// All four applications, in the study's canonical order.
    pub const ALL: [App; 4] = [App::MySql, App::Apache, App::Mozilla, App::OpenOffice];

    /// Human-readable name as printed in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            App::MySql => "MySQL",
            App::Apache => "Apache",
            App::Mozilla => "Mozilla",
            App::OpenOffice => "OpenOffice",
        }
    }
}

impl fmt::Display for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Top-level bug class: the study splits its 105 bugs into 74 non-deadlock
/// and 31 deadlock bugs and analyses them separately.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BugClass {
    /// Wrong results/crashes from unexpected interleavings.
    NonDeadlock,
    /// Threads permanently blocked on each other.
    Deadlock,
}

impl fmt::Display for BugClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            BugClass::NonDeadlock => "non-deadlock",
            BugClass::Deadlock => "deadlock",
        })
    }
}

/// Root-cause pattern of a non-deadlock bug. A bug can exhibit both
/// atomicity and order violations, hence [`PatternSet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// The intended atomicity of a code region is violated by a remote
    /// access slipping in between.
    Atomicity,
    /// The intended order between two operations is flipped.
    Order,
    /// Neither (e.g. livelock-style retry storms).
    Other,
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Pattern::Atomicity => "atomicity violation",
            Pattern::Order => "order violation",
            Pattern::Other => "other",
        })
    }
}

/// The (non-empty) set of patterns a non-deadlock bug exhibits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PatternSet {
    /// Exhibits an atomicity violation.
    pub atomicity: bool,
    /// Exhibits an order violation.
    pub order: bool,
    /// Falls outside both categories.
    pub other: bool,
}

impl PatternSet {
    /// Pure atomicity violation.
    pub const ATOMICITY: PatternSet = PatternSet {
        atomicity: true,
        order: false,
        other: false,
    };
    /// Pure order violation.
    pub const ORDER: PatternSet = PatternSet {
        atomicity: false,
        order: true,
        other: false,
    };
    /// Both atomicity and order violation.
    pub const BOTH: PatternSet = PatternSet {
        atomicity: true,
        order: true,
        other: false,
    };
    /// Neither.
    pub const OTHER: PatternSet = PatternSet {
        atomicity: false,
        order: false,
        other: true,
    };

    /// `true` when the bug is an atomicity or order violation — the 97%
    /// bucket of the study's first finding.
    pub fn is_atomicity_or_order(&self) -> bool {
        self.atomicity || self.order
    }
}

impl fmt::Display for PatternSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (self.atomicity, self.order, self.other) {
            (true, true, _) => f.write_str("atomicity+order"),
            (true, false, _) => f.write_str("atomicity"),
            (false, true, _) => f.write_str("order"),
            (false, false, _) => f.write_str("other"),
        }
    }
}

/// Number of threads involved in the minimal buggy interleaving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ThreadCount {
    /// One thread (self-deadlocks).
    One,
    /// Exactly two threads — 96% of all studied bugs need at most this.
    Two,
    /// Three or more threads.
    MoreThanTwo,
}

impl fmt::Display for ThreadCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ThreadCount::One => "1",
            ThreadCount::Two => "2",
            ThreadCount::MoreThanTwo => ">2",
        })
    }
}

/// Number of shared variables whose accesses are involved in a
/// non-deadlock bug's manifestation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum VariableCount {
    /// A single variable — 66% of non-deadlock bugs.
    One,
    /// More than one variable (multi-variable bugs, invisible to
    /// single-variable detectors).
    MoreThanOne,
}

impl fmt::Display for VariableCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            VariableCount::One => "1",
            VariableCount::MoreThanOne => ">1",
        })
    }
}

/// Number of memory accesses whose partial order guarantees manifestation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessCount {
    /// At most four accesses — 92% of non-deadlock bugs, the study's
    /// "small scope" testing implication.
    AtMostFour,
    /// More than four accesses.
    MoreThanFour,
}

impl fmt::Display for AccessCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessCount::AtMostFour => "<=4",
            AccessCount::MoreThanFour => ">4",
        })
    }
}

/// Number of resources (locks, etc.) involved in a deadlock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ResourceCount {
    /// One resource: self-deadlocks (22% of deadlock bugs).
    One,
    /// Two resources — together with `One`, 97% of deadlock bugs.
    Two,
    /// Three or more resources.
    MoreThanTwo,
}

impl fmt::Display for ResourceCount {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ResourceCount::One => "1",
            ResourceCount::Two => "2",
            ResourceCount::MoreThanTwo => ">2",
        })
    }
}

/// How developers fixed a non-deadlock bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NonDeadlockFix {
    /// Added a condition check (often a `while` re-check) — not a lock.
    ConditionCheck,
    /// Switched/reordered code so the window disappears.
    CodeSwitch,
    /// Changed the algorithm or data structure.
    DesignChange,
    /// Added or changed locks — only 27% of non-deadlock fixes.
    AddOrChangeLock,
    /// Other strategies (data privatization, retries, …).
    Other,
}

impl fmt::Display for NonDeadlockFix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            NonDeadlockFix::ConditionCheck => "condition check",
            NonDeadlockFix::CodeSwitch => "code switch",
            NonDeadlockFix::DesignChange => "design change",
            NonDeadlockFix::AddOrChangeLock => "add/change lock",
            NonDeadlockFix::Other => "other",
        })
    }
}

/// How developers fixed a deadlock bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeadlockFix {
    /// Give up acquiring a resource (release and retry, trylock, …) —
    /// 61% of deadlock fixes, and a strategy that can introduce new
    /// non-deadlock bugs.
    GiveUpResource,
    /// Impose a global acquisition order.
    AcquireInOrder,
    /// Split a resource so the cycle cannot form.
    SplitResource,
    /// Other strategies.
    Other,
}

impl fmt::Display for DeadlockFix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DeadlockFix::GiveUpResource => "give up resource",
            DeadlockFix::AcquireInOrder => "acquire in order",
            DeadlockFix::SplitResource => "split resource",
            DeadlockFix::Other => "other",
        })
    }
}

/// Either fix taxonomy, for uniform reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FixStrategy {
    /// Fix of a non-deadlock bug.
    NonDeadlock(NonDeadlockFix),
    /// Fix of a deadlock bug.
    Deadlock(DeadlockFix),
}

impl fmt::Display for FixStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixStrategy::NonDeadlock(x) => x.fmt(f),
            FixStrategy::Deadlock(x) => x.fmt(f),
        }
    }
}

/// Why transactional memory cannot (or only conditionally can) help.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TmObstacle {
    /// The critical region performs irrevocable I/O.
    IoInRegion,
    /// The region is too long / contains system calls; wrapping it in a
    /// transaction is impractical.
    LongRegion,
    /// The synchronization is not used for atomicity (e.g. ordering),
    /// so TM's atomicity guarantee is beside the point.
    NotAtomicityIntent,
}

impl fmt::Display for TmObstacle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TmObstacle::IoInRegion => "I/O in critical region",
            TmObstacle::LongRegion => "region too long",
            TmObstacle::NotAtomicityIntent => "not an atomicity intent",
        })
    }
}

/// The study's TM-applicability verdict for one bug.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TmApplicability {
    /// Wrapping the relevant region in a transaction avoids the bug.
    Helps,
    /// TM could help, with caveats (performance, retry semantics, partial
    /// restructuring).
    MaybeHelps,
    /// TM cannot help, for the stated obstacle.
    CannotHelp(TmObstacle),
}

impl TmApplicability {
    /// `true` for [`TmApplicability::Helps`].
    pub fn helps(&self) -> bool {
        matches!(self, TmApplicability::Helps)
    }
}

impl fmt::Display for TmApplicability {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TmApplicability::Helps => f.write_str("helps"),
            TmApplicability::MaybeHelps => f.write_str("maybe helps"),
            TmApplicability::CannotHelp(o) => write!(f, "cannot help ({o})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_order_and_names() {
        assert_eq!(App::ALL.len(), 4);
        assert_eq!(App::MySql.name(), "MySQL");
        assert_eq!(App::OpenOffice.to_string(), "OpenOffice");
    }

    #[test]
    fn pattern_set_classification() {
        assert!(PatternSet::ATOMICITY.is_atomicity_or_order());
        assert!(PatternSet::ORDER.is_atomicity_or_order());
        assert!(PatternSet::BOTH.is_atomicity_or_order());
        assert!(!PatternSet::OTHER.is_atomicity_or_order());
        assert_eq!(PatternSet::BOTH.to_string(), "atomicity+order");
        assert_eq!(PatternSet::OTHER.to_string(), "other");
    }

    #[test]
    fn display_strings_match_paper_vocabulary() {
        assert_eq!(ThreadCount::MoreThanTwo.to_string(), ">2");
        assert_eq!(AccessCount::AtMostFour.to_string(), "<=4");
        assert_eq!(ResourceCount::One.to_string(), "1");
        assert_eq!(
            NonDeadlockFix::AddOrChangeLock.to_string(),
            "add/change lock"
        );
        assert_eq!(DeadlockFix::GiveUpResource.to_string(), "give up resource");
        assert_eq!(
            TmApplicability::CannotHelp(TmObstacle::IoInRegion).to_string(),
            "cannot help (I/O in critical region)"
        );
    }

    #[test]
    fn tm_helps_predicate() {
        assert!(TmApplicability::Helps.helps());
        assert!(!TmApplicability::MaybeHelps.helps());
        assert!(!TmApplicability::CannotHelp(TmObstacle::LongRegion).helps());
    }

    #[test]
    fn serde_round_trip() {
        let variants = [
            TmApplicability::Helps,
            TmApplicability::MaybeHelps,
            TmApplicability::CannotHelp(TmObstacle::NotAtomicityIntent),
        ];
        for v in variants {
            let s = serde_json_like(&v);
            assert!(!s.is_empty());
        }
    }

    // serde_json is not a dependency; just check that Serialize is derived
    // by serializing into a no-op serializer via bincode-like trick is
    // overkill — instead assert the traits exist at compile time.
    fn serde_json_like<T: serde::Serialize>(_v: &T) -> &'static str {
        "serializable"
    }
}
