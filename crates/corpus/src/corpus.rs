//! The [`Corpus`] collection and its query API.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::bug::{Bug, BugId};
use crate::data;
use crate::taxonomy::{App, BugClass, Pattern, ThreadCount, TmApplicability, VariableCount};

/// The bug corpus: an ordered collection of [`Bug`] records with query
/// helpers. [`Corpus::full`] loads the study's 105 bugs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Corpus {
    bugs: Vec<Bug>,
}

impl Corpus {
    /// The full 105-bug study corpus.
    pub fn full() -> Corpus {
        Corpus { bugs: data::all() }
    }

    /// A corpus from arbitrary records (for tests and subsets).
    pub fn from_bugs(bugs: Vec<Bug>) -> Corpus {
        Corpus { bugs }
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.bugs.len()
    }

    /// `true` when the corpus has no records.
    pub fn is_empty(&self) -> bool {
        self.bugs.is_empty()
    }

    /// Iterates over all records.
    pub fn iter(&self) -> impl Iterator<Item = &Bug> {
        self.bugs.iter()
    }

    /// All records as a slice.
    pub fn bugs(&self) -> &[Bug] {
        &self.bugs
    }

    /// Looks up a record by id.
    pub fn get(&self, id: &BugId) -> Option<&Bug> {
        self.bugs.iter().find(|b| &b.id == id)
    }

    /// Looks up a record by id string.
    pub fn get_str(&self, id: &str) -> Option<&Bug> {
        self.bugs.iter().find(|b| b.id.as_str() == id)
    }

    /// Starts a filtered query over the corpus.
    pub fn query(&self) -> CorpusQuery<'_> {
        CorpusQuery {
            corpus: self,
            app: None,
            class: None,
            pattern: None,
            threads: None,
            variables: None,
            tm_helps: None,
            with_kernel: None,
        }
    }

    /// Records for one application.
    pub fn by_app(&self, app: App) -> Vec<&Bug> {
        self.query().app(app).collect()
    }

    /// The non-deadlock subset.
    pub fn non_deadlock(&self) -> Vec<&Bug> {
        self.query().class(BugClass::NonDeadlock).collect()
    }

    /// The deadlock subset.
    pub fn deadlock(&self) -> Vec<&Bug> {
        self.query().class(BugClass::Deadlock).collect()
    }

    /// Counts records per application, in canonical app order.
    pub fn counts_by_app(&self) -> BTreeMap<App, usize> {
        let mut m = BTreeMap::new();
        for app in App::ALL {
            m.insert(app, 0);
        }
        for b in &self.bugs {
            *m.entry(b.app).or_insert(0) += 1;
        }
        m
    }
}

impl<'a> IntoIterator for &'a Corpus {
    type Item = &'a Bug;
    type IntoIter = std::slice::Iter<'a, Bug>;
    fn into_iter(self) -> Self::IntoIter {
        self.bugs.iter()
    }
}

impl FromIterator<Bug> for Corpus {
    fn from_iter<I: IntoIterator<Item = Bug>>(iter: I) -> Corpus {
        Corpus {
            bugs: iter.into_iter().collect(),
        }
    }
}

impl Extend<Bug> for Corpus {
    fn extend<I: IntoIterator<Item = Bug>>(&mut self, iter: I) {
        self.bugs.extend(iter);
    }
}

/// A builder-style filtered query over a [`Corpus`].
///
/// ```rust
/// use lfm_corpus::{Corpus, App, BugClass};
///
/// let corpus = Corpus::full();
/// let mozilla_deadlocks = corpus
///     .query()
///     .app(App::Mozilla)
///     .class(BugClass::Deadlock)
///     .count();
/// assert_eq!(mozilla_deadlocks, 16);
/// ```
#[derive(Debug, Clone)]
pub struct CorpusQuery<'c> {
    corpus: &'c Corpus,
    app: Option<App>,
    class: Option<BugClass>,
    pattern: Option<Pattern>,
    threads: Option<ThreadCount>,
    variables: Option<VariableCount>,
    tm_helps: Option<bool>,
    with_kernel: Option<bool>,
}

impl<'c> CorpusQuery<'c> {
    /// Restricts to one application.
    pub fn app(mut self, app: App) -> Self {
        self.app = Some(app);
        self
    }

    /// Restricts to one bug class.
    pub fn class(mut self, class: BugClass) -> Self {
        self.class = Some(class);
        self
    }

    /// Restricts to non-deadlock bugs exhibiting the given pattern
    /// (matches when the pattern is *present*, so a both-patterns bug
    /// matches either).
    pub fn pattern(mut self, pattern: Pattern) -> Self {
        self.pattern = Some(pattern);
        self
    }

    /// Restricts by the number of threads involved.
    pub fn threads(mut self, threads: ThreadCount) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Restricts by the number of variables involved (non-deadlock only;
    /// deadlock bugs never match).
    pub fn variables(mut self, variables: VariableCount) -> Self {
        self.variables = Some(variables);
        self
    }

    /// Restricts by whether the study judged TM to directly help.
    pub fn tm_helps(mut self, helps: bool) -> Self {
        self.tm_helps = Some(helps);
        self
    }

    /// Restricts to bugs with (or without) a linked executable kernel.
    pub fn with_kernel(mut self, has: bool) -> Self {
        self.with_kernel = Some(has);
        self
    }

    fn matches(&self, bug: &Bug) -> bool {
        if let Some(app) = self.app {
            if bug.app != app {
                return false;
            }
        }
        if let Some(class) = self.class {
            if bug.class() != class {
                return false;
            }
        }
        if let Some(pattern) = self.pattern {
            match bug.patterns() {
                None => return false,
                Some(ps) => {
                    let has = match pattern {
                        Pattern::Atomicity => ps.atomicity,
                        Pattern::Order => ps.order,
                        Pattern::Other => ps.other,
                    };
                    if !has {
                        return false;
                    }
                }
            }
        }
        if let Some(threads) = self.threads {
            if bug.threads != threads {
                return false;
            }
        }
        if let Some(variables) = self.variables {
            if bug.variables() != Some(variables) {
                return false;
            }
        }
        if let Some(helps) = self.tm_helps {
            if matches!(bug.tm, TmApplicability::Helps) != helps {
                return false;
            }
        }
        if let Some(has) = self.with_kernel {
            if bug.kernel.is_some() != has {
                return false;
            }
        }
        true
    }

    /// Runs the query, collecting matching records.
    pub fn collect(self) -> Vec<&'c Bug> {
        self.corpus
            .bugs
            .iter()
            .filter(|b| self.matches(b))
            .collect()
    }

    /// Runs the query, counting matches.
    pub fn count(self) -> usize {
        self.corpus.bugs.iter().filter(|b| self.matches(b)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_corpus_shape() {
        let c = Corpus::full();
        assert_eq!(c.len(), 105);
        assert!(!c.is_empty());
        assert_eq!(c.non_deadlock().len(), 74);
        assert_eq!(c.deadlock().len(), 31);
    }

    #[test]
    fn counts_by_app_match_study() {
        let c = Corpus::full();
        let counts = c.counts_by_app();
        assert_eq!(counts[&App::MySql], 23);
        assert_eq!(counts[&App::Apache], 17);
        assert_eq!(counts[&App::Mozilla], 57);
        assert_eq!(counts[&App::OpenOffice], 8);
    }

    #[test]
    fn lookup_by_id() {
        let c = Corpus::full();
        let b = c.get_str("apache-25520").expect("known bug id");
        assert_eq!(b.app, App::Apache);
        assert!(c.get(&b.id).is_some());
        assert!(c.get_str("nonexistent-1").is_none());
    }

    #[test]
    fn query_composition() {
        let c = Corpus::full();
        let n = c
            .query()
            .app(App::Mozilla)
            .class(BugClass::NonDeadlock)
            .pattern(Pattern::Order)
            .count();
        assert_eq!(n, 14); // 12 pure order + 2 both

        let multi = c
            .query()
            .class(BugClass::NonDeadlock)
            .variables(VariableCount::MoreThanOne)
            .count();
        assert_eq!(multi, 25);

        let helps = c.query().tm_helps(true).count();
        assert_eq!(helps, 42);
    }

    #[test]
    fn variables_filter_excludes_deadlocks() {
        let c = Corpus::full();
        let n = c
            .query()
            .class(BugClass::Deadlock)
            .variables(VariableCount::One)
            .count();
        assert_eq!(n, 0);
    }

    #[test]
    fn kernel_filter() {
        let c = Corpus::full();
        let with = c.query().with_kernel(true).count();
        let without = c.query().with_kernel(false).count();
        assert_eq!(with + without, 105);
        assert!(
            with >= 30,
            "a good share of bugs link to kernels, got {with}"
        );
    }

    #[test]
    fn corpus_collects_from_iterator() {
        let c = Corpus::full();
        let sub: Corpus = c.iter().filter(|b| b.is_deadlock()).cloned().collect();
        assert_eq!(sub.len(), 31);
        let mut ext = Corpus::from_bugs(Vec::new());
        ext.extend(sub.iter().cloned());
        assert_eq!(ext.len(), 31);
    }
}
