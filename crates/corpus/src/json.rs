//! Hand-rolled JSON export of the corpus.
//!
//! The offline dependency set has no `serde_json`, so this module writes
//! the JSON by hand: a small escaper plus per-type emitters. The schema
//! is stable and documented here so downstream tools (spreadsheets,
//! pandas, other studies) can consume the dataset:
//!
//! ```json
//! {
//!   "source": "Lu et al., ASPLOS 2008 (reconstructed)",
//!   "bugs": [
//!     {
//!       "id": "apache-25520",
//!       "app": "Apache",
//!       "title": "...",
//!       "description": "...",
//!       "class": "non-deadlock",
//!       "threads": "2",
//!       "patterns": ["atomicity"],        // non-deadlock only
//!       "variables": "1",                  // non-deadlock only
//!       "accesses": "<=4",                 // non-deadlock only
//!       "resources": "2",                  // deadlock only
//!       "fix": "add/change lock",
//!       "tm": "cannot help (I/O in critical region)",
//!       "kernel": "log_buffer_apache"      // optional
//!     }, ...
//!   ]
//! }
//! ```

use crate::bug::{Bug, BugDetail};
use crate::corpus::Corpus;
use crate::taxonomy::BugClass;

/// Escapes a string for inclusion in a JSON string literal.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn field(out: &mut String, indent: &str, key: &str, value: &str, trailing_comma: bool) {
    out.push_str(indent);
    out.push('"');
    out.push_str(key);
    out.push_str("\": \"");
    out.push_str(&escape(value));
    out.push('"');
    if trailing_comma {
        out.push(',');
    }
    out.push('\n');
}

fn bug_to_json(bug: &Bug, indent: &str) -> String {
    let pad = format!("{indent}  ");
    let mut out = format!("{indent}{{\n");
    field(&mut out, &pad, "id", bug.id.as_str(), true);
    field(&mut out, &pad, "app", bug.app.name(), true);
    field(&mut out, &pad, "title", &bug.title, true);
    field(&mut out, &pad, "description", &bug.description, true);
    let class = match bug.class() {
        BugClass::NonDeadlock => "non-deadlock",
        BugClass::Deadlock => "deadlock",
    };
    field(&mut out, &pad, "class", class, true);
    field(&mut out, &pad, "threads", &bug.threads.to_string(), true);
    match &bug.detail {
        BugDetail::NonDeadlock {
            patterns,
            variables,
            accesses,
            ..
        } => {
            let mut names = Vec::new();
            if patterns.atomicity {
                names.push("\"atomicity\"");
            }
            if patterns.order {
                names.push("\"order\"");
            }
            if patterns.other {
                names.push("\"other\"");
            }
            out.push_str(&format!("{pad}\"patterns\": [{}],\n", names.join(", ")));
            field(&mut out, &pad, "variables", &variables.to_string(), true);
            field(&mut out, &pad, "accesses", &accesses.to_string(), true);
        }
        BugDetail::Deadlock { resources, .. } => {
            field(&mut out, &pad, "resources", &resources.to_string(), true);
        }
    }
    field(&mut out, &pad, "fix", &bug.fix().to_string(), true);
    let has_kernel = bug.kernel.is_some();
    field(&mut out, &pad, "tm", &bug.tm.to_string(), has_kernel);
    if let Some(kernel) = &bug.kernel {
        field(&mut out, &pad, "kernel", kernel, false);
    }
    out.push_str(&format!("{indent}}}"));
    out
}

/// Serializes the corpus to pretty-printed JSON.
pub fn to_json(corpus: &Corpus) -> String {
    let mut out = String::from("{\n");
    out.push_str(
        "  \"source\": \"Lu, Park, Seo, Zhou — Learning from Mistakes (ASPLOS 2008); \
         synthesized reconstruction, see EXPERIMENTS.md\",\n",
    );
    out.push_str(&format!("  \"count\": {},\n", corpus.len()));
    out.push_str("  \"bugs\": [\n");
    let n = corpus.len();
    for (i, bug) in corpus.iter().enumerate() {
        out.push_str(&bug_to_json(bug, "    "));
        if i + 1 < n {
            out.push(',');
        }
        out.push('\n');
    }
    out.push_str("  ]\n}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a\"b"), "a\\\"b");
        assert_eq!(escape("a\\b"), "a\\\\b");
        assert_eq!(escape("a\nb\tc"), "a\\nb\\tc");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn full_corpus_exports() {
        let corpus = Corpus::full();
        let json = to_json(&corpus);
        assert!(json.starts_with("{\n"));
        assert!(json.trim_end().ends_with('}'));
        assert!(json.contains("\"count\": 105"));
        assert!(json.contains("\"id\": \"apache-25520\""));
        assert!(json.contains("\"patterns\": [\"atomicity\"]"));
        assert!(json.contains("\"resources\": \"2\""));
        assert!(json.contains("\"kernel\": \"log_buffer_apache\""));
        // 105 bug objects.
        assert_eq!(json.matches("\"id\":").count(), 105);
    }

    #[test]
    fn json_is_structurally_balanced() {
        let json = to_json(&Corpus::full());
        // Quick structural sanity without a parser: balanced braces and
        // brackets outside string literals.
        let mut depth_braces = 0i64;
        let mut depth_brackets = 0i64;
        let mut in_string = false;
        let mut escape_next = false;
        for c in json.chars() {
            if in_string {
                if escape_next {
                    escape_next = false;
                } else if c == '\\' {
                    escape_next = true;
                } else if c == '"' {
                    in_string = false;
                }
                continue;
            }
            match c {
                '"' => in_string = true,
                '{' => depth_braces += 1,
                '}' => depth_braces -= 1,
                '[' => depth_brackets += 1,
                ']' => depth_brackets -= 1,
                _ => {}
            }
            assert!(depth_braces >= 0 && depth_brackets >= 0);
        }
        assert_eq!(depth_braces, 0);
        assert_eq!(depth_brackets, 0);
        assert!(!in_string);
    }

    #[test]
    fn no_trailing_commas() {
        let json = to_json(&Corpus::full());
        assert!(!json.contains(",\n  ]"));
        assert!(!json.contains(",\n    }"));
        assert!(!json.contains(",\n}"));
    }
}
