//! The curated dataset, one module per studied application.
//!
//! Every record is *synthesized*: metadata axes are allocated so that the
//! per-app and corpus-wide marginals match the published study exactly
//! (see DESIGN.md §4.1 for the quota tables); titles and descriptions are
//! modeled on the kind of bugs each application's tracker contains.

pub mod apache;
pub mod mozilla;
pub mod mysql;
pub mod openoffice;

use crate::bug::Bug;

/// All 105 records, in the study's application order
/// (MySQL, Apache, Mozilla, OpenOffice).
pub fn all() -> Vec<Bug> {
    let mut v = mysql::bugs();
    v.extend(apache::bugs());
    v.extend(mozilla::bugs());
    v.extend(openoffice::bugs());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dataset_has_105_bugs() {
        assert_eq!(all().len(), 105);
    }

    #[test]
    fn ids_globally_unique() {
        let bugs = all();
        let mut ids: Vec<_> = bugs.iter().map(|b| b.id.as_str().to_owned()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), bugs.len());
    }
}
