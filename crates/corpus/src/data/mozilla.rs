//! Mozilla bug records: 41 non-deadlock + 16 deadlock — the largest slice
//! of the corpus, as in the study.
//!
//! Modeled on the Mozilla suite's classic multithreaded subsystems:
//! SpiderMonkey (JS engine), necko (networking + cache), XPCOM threads and
//! event queues, imglib, NSS, the timer thread, mailnews, and layout.

use crate::bug::{dl, nd, Bug};
use crate::taxonomy::{
    AccessCount::{AtMostFour, MoreThanFour},
    App::Mozilla,
    DeadlockFix as DF, NonDeadlockFix as NF, PatternSet as PS, ResourceCount as RC,
    ThreadCount as TC, TmApplicability as TM, TmObstacle as OB,
    VariableCount::{MoreThanOne, One},
};

/// All Mozilla records.
pub fn bugs() -> Vec<Bug> {
    let mut v = non_deadlock_atomicity();
    v.extend(non_deadlock_mixed_and_order());
    v.extend(deadlock());
    v
}

/// Rows 1–27: pure atomicity violations.
fn non_deadlock_atomicity() -> Vec<Bug> {
    vec![
        // 1: A, 1 var, <=4, 2 thr, CondCheck, Helps
        nd(
            "mozilla-52111",
            Mozilla,
            "JS property cache fill counter lost updates",
            "Two JS threads filling the shared property cache increment the \
             fill counter with load-add-store; interleaved increments lose \
             counts and the cache disables itself prematurely.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::Helps,
            Some("counter_rmw"),
        ),
        // 2: A, 1, <=4, 2, CodeSwitch, Helps
        nd(
            "mozilla-57766",
            Mozilla,
            "necko cache entry doom flag read before writer clears in-use bit",
            "The cache eviction thread reads the entry's doom flag before the \
             writer clears its in-use bit; swapping the two statements in the \
             writer closes the window where a doomed-but-in-use entry is freed.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::CodeSwitch,
            TM::Helps,
            None,
        ),
        // 3: A, multi, <=4, 2, DesignChange, Maybe
        nd(
            "mozilla-73291",
            Mozilla,
            "JS GC thing count diverges from arena list",
            "The garbage collector tracks the allocated-things counter and the \
             arena free list as two separately updated variables; an allocation \
             interleaving with a sweep leaves count and list inconsistent and a \
             later GC over-collects. The pair invariant spans two variables.",
            PS::ATOMICITY,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::DesignChange,
            TM::MaybeHelps,
            Some("cache_pair_invariant"),
        ),
        // 4: A, 1, <=4, 2, CondCheck, Helps
        nd(
            "mozilla-79054",
            Mozilla,
            "nsSocketTransport checks mThread non-null then dereferences",
            "The socket transport checks `if (mThread)` and then calls through \
             the pointer; shutdown nulls mThread between check and call and the \
             browser crashes. The canonical check-then-act single-variable \
             atomicity violation.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::Helps,
            Some("check_then_act_null"),
        ),
        // 5: A, 1, <=4, 2, CodeSwitch, Helps
        nd(
            "mozilla-84627",
            Mozilla,
            "imglib decoder reads frame count mid-update",
            "The image decoder publishes the frame count before linking the \
             last frame; moving the count store after the link (a code switch) \
             prevents the animation thread from indexing past the list.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::CodeSwitch,
            TM::Helps,
            None,
        ),
        // 6: A, multi, <=4, 2, Lock, Maybe
        nd(
            "mozilla-91343",
            Mozilla,
            "cookie service updates count and hashtable non-atomically",
            "Adding a cookie bumps `mCookieCount` and inserts into the \
             hashtable as two steps; the cookie-purge thread interleaves and \
             either purges too much or skips purging. Fixed by extending the \
             service mutex over both updates.",
            PS::ATOMICITY,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::MaybeHelps,
            None,
        ),
        // 7: A, 1, <=4, 2, CondCheck, Helps
        nd(
            "mozilla-99224",
            Mozilla,
            "double-checked initialization of the atom table",
            "The XPCOM atom table uses `if (!gAtomTable) gAtomTable = Init()`; \
             two threads both observe null and both initialize, leaking one \
             table and dangling interned atoms from it.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::Helps,
            Some("double_check_init"),
        ),
        // 8: A, 1, <=4, 2, CodeSwitch, Helps
        nd(
            "mozilla-103331",
            Mozilla,
            "timer thread reads deadline before arming flag is stored",
            "nsTimerImpl stores the deadline after setting the armed flag; the \
             timer thread reading flag-then-deadline can fire with a stale \
             deadline. Swapping the stores removes the torn pair.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::CodeSwitch,
            TM::Helps,
            None,
        ),
        // 9: A, multi, >4, 2, Lock, Cannot(io)
        nd(
            "mozilla-108725",
            Mozilla,
            "disk cache writes metadata, map and journal as separate steps",
            "Evicting a disk-cache entry updates the in-memory map, the block \
             file bitmap, and appends a journal record — more than four \
             accesses across several variables, interleaved by a concurrent \
             open. The journal append is file I/O, so a transaction cannot \
             cover the region; a coarse lock does.",
            PS::ATOMICITY,
            MoreThanOne,
            MoreThanFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::CannotHelp(OB::IoInRegion),
            None,
        ),
        // 10: A, 1, <=4, 2, CondCheck, Helps
        nd(
            "mozilla-112418",
            Mozilla,
            "plugin host tests instance busy flag then reenters",
            "The plugin host checks the instance's busy flag and then calls \
             into it; a NPAPI callback on another thread sets busy between the \
             two, corrupting per-instance state. Re-checking under the monitor \
             fixes it.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::Helps,
            Some("toctou_flag"),
        ),
        // 11: A, 1, <=4, 2, CodeSwitch, Helps
        nd(
            "mozilla-118853",
            Mozilla,
            "mailnews folder cache reads dirty bit mid-flush",
            "The folder cache flusher clears the dirty bit before writing out \
             the summary; a concurrent setter's update is lost. Clearing the \
             bit after the write (statement swap) preserves the update.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::CodeSwitch,
            TM::Helps,
            None,
        ),
        // 12: A, multi, <=4, 2, DesignChange, Maybe
        nd(
            "mozilla-124922",
            Mozilla,
            "necko request queue length and head pointer desynchronize",
            "nsHttpConnectionMgr maintains a pending-request count separate \
             from the queue; interleaved enqueue/dispatch leaves count≠queue \
             and the manager stops dispatching. Redesigned to derive the count \
             from the queue.",
            PS::ATOMICITY,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::DesignChange,
            TM::MaybeHelps,
            Some("len_data_desync"),
        ),
        // 13: A, 1, <=4, 2, CondCheck, Helps
        nd(
            "mozilla-131447",
            Mozilla,
            "RDF resource refcount check-then-release",
            "nsRDFResource::Release reads the refcount, decides to destroy, \
             then decrements; two releasing threads both decide to destroy. \
             Fixed with a re-check of the count under the service lock.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::Helps,
            Some("bank_withdraw"),
        ),
        // 14: A, 1, <=4, 2, Lock, Helps
        nd(
            "mozilla-137069",
            Mozilla,
            "JS runtime GC-bytes counter races with allocation fast path",
            "The allocation fast path bumps `rt->gcBytes` unlocked for speed; \
             concurrent allocations lose updates and the GC trigger drifts. \
             The fix moves the counter under the GC lock.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::Helps,
            Some("counter_rmw"),
        ),
        // 15: A, multi, <=4, 2, Other, Maybe
        nd(
            "mozilla-142651",
            Mozilla,
            "docshell session history index and list updated separately",
            "Navigations update mSessionHistory's entry list and the current \
             index in two steps; a concurrent history prune between them makes \
             the index point past the list. Fixed by privatizing the pair \
             behind an accessor that updates both (bucketed 'other').",
            PS::ATOMICITY,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::Other,
            TM::MaybeHelps,
            Some("state_data_pair"),
        ),
        // 16: A, 1, <=4, 2, CondCheck, Helps
        nd(
            "mozilla-150355",
            Mozilla,
            "NSS token session flag tested then used across logout",
            "PK11 code tests the token's logged-in flag then uses the session; \
             a logout on another thread invalidates it in between, failing the \
             operation with a crash rather than an error. Re-validate under \
             the slot lock.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::Helps,
            None,
        ),
        // 17: A, 1, <=4, 2, Lock, Maybe
        nd(
            "mozilla-157394",
            Mozilla,
            "xpcom proxy event queue pending-count torn update",
            "The proxy event queue's pending counter is updated outside the \
             queue monitor on the fast path; lost updates park the consumer \
             with events still queued.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::MaybeHelps,
            None,
        ),
        // 18: A, multi, >4, >2, Other, Cannot(long)
        nd(
            "mozilla-163595",
            Mozilla,
            "layout reflow coalescing tears across three updating threads",
            "Reflow batching aggregates dirty-frame state from the parser \
             thread, the image notification thread and the main thread; the \
             coalescing window spans many accesses over several variables and \
             needs all three threads to manifest. The batching region is far \
             too long to wrap transactionally; the fix privatizes per-thread \
             dirty sets.",
            PS::ATOMICITY,
            MoreThanOne,
            MoreThanFour,
            TC::MoreThanTwo,
            NF::Other,
            TM::CannotHelp(OB::LongRegion),
            None,
        ),
        // 19: A, 1, <=4, 2, CondCheck, Helps
        nd(
            "mozilla-170109",
            Mozilla,
            "necko DNS cache entry expiry checked then refreshed twice",
            "Two resolver threads both observe an expired entry and both \
             re-resolve and insert, leaking one entry and double-counting \
             stats. A second check under the cache lock fixes it.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::Helps,
            Some("double_check_init"),
        ),
        // 20: A, 1, <=4, 2, DesignChange, Maybe
        nd(
            "mozilla-176919",
            Mozilla,
            "editor transaction stack pointer torn during async spellcheck",
            "The async spellchecker walks the transaction stack while edits \
             push onto it; the top-pointer read/write pair tears. The fix \
             redesigns the spellchecker to operate on a snapshot.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::DesignChange,
            TM::MaybeHelps,
            None,
        ),
        // 21: A, multi, <=4, 2, Lock, Maybe
        nd(
            "mozilla-183361",
            Mozilla,
            "image cache total-size and per-entry sizes drift apart",
            "The image cache keeps a global total alongside per-entry sizes; \
             eviction updates them in two unlocked steps and the invariant \
             total==Σsizes breaks, wedging eviction. Both counters moved under \
             one lock.",
            PS::ATOMICITY,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::MaybeHelps,
            Some("double_counter_invariant"),
        ),
        // 22: A, 1, <=4, 2, CondCheck, Helps
        nd(
            "mozilla-190631",
            Mozilla,
            "js_FlushPropertyCache races with lookup's emptiness test",
            "The property-cache flush tests `cache->empty` then walks entries; \
             a concurrent fill between test and walk leaves a new entry \
             unflushed and later misdirects a lookup.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::Helps,
            Some("toctou_flag"),
        ),
        // 23: A, 1, <=4, 2, Lock, Maybe
        nd(
            "mozilla-197341",
            Mozilla,
            "string bundle service caches bundle pointer unlocked",
            "nsStringBundleService's one-element cache is read and replaced \
             without the service lock on a hot path; a torn pointer/key pair \
             returns the wrong localization bundle.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::MaybeHelps,
            Some("aba_problem"),
        ),
        // 24: A, multi, <=4, 2, Other, Cannot(io)
        nd(
            "mozilla-204340",
            Mozilla,
            "download manager progress record torn across file and UI state",
            "Progress updates write the bytes-done field, then append to the \
             downloads file, then flip the UI-dirty flag; a cancel interleaves \
             and the file records a finished download that the UI shows as \
             cancelled. The file append makes the region non-transactional; \
             fixed by funneling updates through a single writer thread.",
            PS::ATOMICITY,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::Other,
            TM::CannotHelp(OB::IoInRegion),
            None,
        ),
        // 25: A, 1, <=4, 2, CondCheck, Helps
        nd(
            "mozilla-211801",
            Mozilla,
            "nsPipe available-bytes check races with concurrent read",
            "A pipe reader checks `mAvailable >= count` then consumes; two \
             readers both pass and the second underflows the buffer. The fix \
             re-checks availability inside the monitor.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::Helps,
            Some("bank_withdraw"),
        ),
        // 26: A, 1, <=4, 2, Lock, Maybe
        nd(
            "mozilla-219470",
            Mozilla,
            "history service visit-count increment unprotected on hot path",
            "Recording a page visit increments the in-memory visit count \
             outside the history lock; concurrent loads lose counts and \
             autocomplete ranking degrades.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::MaybeHelps,
            Some("stat_counter"),
        ),
        // 27: A, multi, <=4, 2, Other, Cannot(notAtomicity)
        nd(
            "mozilla-226581",
            Mozilla,
            "necko socket poll list and interest flags updated around poll()",
            "The socket transport service mutates the poll list and per-socket \
             interest flags around the blocking poll() call; the 'lock' being \
             violated is really an ownership hand-off protocol, not an \
             atomicity intent, so TM does not express it. Fixed by migrating \
             mutations onto the socket thread ('other').",
            PS::ATOMICITY,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::Other,
            TM::CannotHelp(OB::NotAtomicityIntent),
            None,
        ),
    ]
}

/// Rows 28–29 (atomicity+order) and 30–41 (pure order violations).
fn non_deadlock_mixed_and_order() -> Vec<Bug> {
    vec![
        // 28: AO, multi, <=4, 2, CodeSwitch, Maybe
        nd(
            "mozilla-233541",
            Mozilla,
            "necko cache stream both torn and reordered against doom",
            "Closing a cache output stream must both happen-after the final \
             write and be atomic with the entry's doom check; the code violated \
             both intentions, corrupting entries two different ways depending \
             on the interleaving (both atomicity and order violation, across \
             the stream state and entry state).",
            PS::BOTH,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::CodeSwitch,
            TM::MaybeHelps,
            None,
        ),
        // 29: AO, 1, <=4, 2, Other, Cannot(long)
        nd(
            "mozilla-241066",
            Mozilla,
            "plugin stream teardown races and reorders against NPP_Write",
            "Stream teardown may both interleave inside an in-progress \
             NPP_Write (atomicity) and run before the pending-data flush it \
             was supposed to follow (order). The region spans a plugin call of \
             unbounded length, so a transactional wrap is not viable; fixed by \
             deferring teardown to the stream's own event ('other').",
            PS::BOTH,
            One,
            AtMostFour,
            TC::Two,
            NF::Other,
            TM::CannotHelp(OB::LongRegion),
            None,
        ),
        // 30: O, 1, <=4, 2, CondCheck, Helps
        nd(
            "mozilla-61369",
            Mozilla,
            "nsThread used before Init() stores mThread",
            "The creator starts the underlying PR thread, which calls back \
             into the nsThread object before the creator stores mThread; the \
             callback reads null. The canonical use-before-init order \
             violation; fixed by a condition wait for initialization.",
            PS::ORDER,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::Helps,
            Some("use_before_init_mozilla"),
        ),
        // 31: O, multi, >4, 2, DesignChange, Maybe
        nd(
            "mozilla-248032",
            Mozilla,
            "mailnews biff state machine observes steps out of order",
            "The biff (new-mail check) state machine publishes state, server \
             pointer, and folder list in an order the IMAP thread does not \
             expect; manifestation requires a specific order over five \
             accesses across three variables. Redesigned as a message-passing \
             hand-off.",
            PS::ORDER,
            MoreThanOne,
            MoreThanFour,
            TC::Two,
            NF::DesignChange,
            TM::MaybeHelps,
            None,
        ),
        // 32: O, 1, <=4, 2, Lock, Maybe
        nd(
            "mozilla-254305",
            Mozilla,
            "observer service notified after component manager shutdown",
            "Shutdown assumed the observer service drains before the component \
             manager tears down; a worker's late notify arrives after teardown \
             and dispatches into freed tables. A shutdown mutex now orders the \
             two phases.",
            PS::ORDER,
            One,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::MaybeHelps,
            Some("shutdown_order"),
        ),
        // 33: O, multi, <=4, 2, Other, Cannot(io)
        nd(
            "mozilla-260377",
            Mozilla,
            "profile lock file written after prefs flush begins",
            "Profile teardown starts flushing prefs.js before writing the \
             profile lock sentinel the flusher checks, so a second instance \
             starts mid-flush and both write the file. The sentinel write is \
             file I/O; fixed by funneling both steps into one shutdown task.",
            PS::ORDER,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::Other,
            TM::CannotHelp(OB::IoInRegion),
            None,
        ),
        // 34: O, 1, <=4, 2, CondCheck, Helps
        nd(
            "mozilla-267071",
            Mozilla,
            "timer thread signalled before it enters its monitor wait",
            "Arming the first timer signals the timer thread's monitor before \
             the thread has entered Wait(); the wakeup is lost and the timer \
             fires late or never. Fixed by re-checking the queue under the \
             monitor before waiting.",
            PS::ORDER,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::Helps,
            Some("missed_signal"),
        ),
        // 35: O, multi, <=4, 2, Lock, Maybe
        nd(
            "mozilla-273615",
            Mozilla,
            "imglib consumer reads frame before decoder publishes size",
            "The display path expects image width/height to be published \
             before the first frame notification; the decoder emits the \
             notification first, and layout reads zero dimensions (two \
             variables: the frame pointer and the size pair).",
            PS::ORDER,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::MaybeHelps,
            Some("consume_before_produce"),
        ),
        // 36: O, 1, <=4, 2, CodeSwitch, Helps
        nd(
            "mozilla-279231",
            Mozilla,
            "worker exits before joiner records its completion",
            "Thread shutdown posts the 'done' event before clearing the \
             joinable flag, so the joiner can run between the two and miss the \
             thread entirely, leaking it. The two statements were swapped.",
            PS::ORDER,
            One,
            AtMostFour,
            TC::Two,
            NF::CodeSwitch,
            TM::Helps,
            Some("join_less_exit"),
        ),
        // 37: O, multi, <=4, 2, Other, Cannot(notAtomicity)
        nd(
            "mozilla-285404",
            Mozilla,
            "NSS certificate store init ordered after first verification",
            "A background prefetch can issue the first certificate \
             verification before the store's root list finishes loading; the \
             verification fails closed. The constraint is pure ordering — \
             there is no atomicity intent for TM to restore; fixed by gating \
             verification on an init event ('other').",
            PS::ORDER,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::Other,
            TM::CannotHelp(OB::NotAtomicityIntent),
            None,
        ),
        // 38: O, 1, <=4, 2, DesignChange, Maybe
        nd(
            "mozilla-291088",
            Mozilla,
            "necko publishes connection to pool before SSL handshake state",
            "A connection is inserted into the reuse pool before its SSL \
             handshake-complete flag is stored; a second request picks it up \
             and writes plaintext. Redesigned so insertion happens in the \
             handshake-complete callback.",
            PS::ORDER,
            One,
            AtMostFour,
            TC::Two,
            NF::DesignChange,
            TM::MaybeHelps,
            Some("publish_before_init"),
        ),
        // 39: O, multi, >4, >2, Other, Cannot(long)
        nd(
            "mozilla-297060",
            Mozilla,
            "session restore aggregates window state from racing writers",
            "Session-restore serialization reads per-window state while the \
             main thread, the IO thread and a worker all append updates; a \
             consistent snapshot requires ordering more than four accesses \
             across three threads. The aggregation phase is too long for a \
             transaction; fixed by double-buffering the state ('other').",
            PS::ORDER,
            MoreThanOne,
            MoreThanFour,
            TC::MoreThanTwo,
            NF::Other,
            TM::CannotHelp(OB::LongRegion),
            None,
        ),
        // 40: O, 1, <=4, 2, Lock, Maybe
        nd(
            "mozilla-303727",
            Mozilla,
            "XPCOM shutdown proceeds before cycle collector thread parks",
            "Shutdown assumed the cycle collector parks before module unload \
             starts; without an enforced order the collector touches unloaded \
             code. A shutdown lock now serializes the two.",
            PS::ORDER,
            One,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::MaybeHelps,
            Some("shutdown_order"),
        ),
        // 41: O, multi, <=4, 2, Other, Cannot(notAtomicity)
        nd(
            "mozilla-310210",
            Mozilla,
            "mDNS responder answers before interface list is published",
            "The responder thread can answer a query using the interface list \
             before the enumeration thread publishes its tail entry and count; \
             the answer omits interfaces. A pure ordering protocol (publish \
             before answer) with no atomicity intent; fixed with an init \
             barrier event ('other').",
            PS::ORDER,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::Other,
            TM::CannotHelp(OB::NotAtomicityIntent),
            None,
        ),
    ]
}

fn deadlock() -> Vec<Bug> {
    vec![
        // d1: 1 res, 1 thr, GiveUp, Helps
        dl(
            "mozilla-dl-54543",
            Mozilla,
            "nsCacheService lock re-entered from eviction callback",
            "Evicting an entry invokes its listener while holding the cache \
             service lock; the listener calls back into the service, which \
             re-acquires the same lock. Fixed by releasing the lock around \
             listener callbacks.",
            RC::One,
            TC::One,
            DF::GiveUpResource,
            TM::Helps,
            Some("self_relock"),
        ),
        // d2: 1 res, 1 thr, GiveUp, Maybe
        dl(
            "mozilla-dl-62198",
            Mozilla,
            "JS GC lock re-acquired in finalizer (self-deadlock)",
            "A finalizer running under the GC lock allocates, and the \
             allocation slow path takes the GC lock again. Fixed by deferring \
             finalizer allocation until after the lock is dropped.",
            RC::One,
            TC::One,
            DF::GiveUpResource,
            TM::MaybeHelps,
            Some("self_relock"),
        ),
        // d3: 1 res, 1 thr, Other, Cannot(io)
        dl(
            "mozilla-dl-69012",
            Mozilla,
            "profile prefs writer re-enters the prefs monitor via flush",
            "Writing prefs holds the prefs monitor and calls a flush helper \
             that re-enters the monitor; the region writes prefs.js so a \
             transactional restructure does not apply. Fixed by a recursion \
             guard flag ('other').",
            RC::One,
            TC::One,
            DF::Other,
            TM::CannotHelp(OB::IoInRegion),
            Some("self_relock"),
        ),
        // d4: 1 res, 1 thr, Other, Cannot(long)
        dl(
            "mozilla-dl-75390",
            Mozilla,
            "synchronous proxy call to same thread waits on itself",
            "A synchronous XPCOM proxy posted to the caller's own event queue \
             waits for a reply that only the caller could process. One thread, \
             one resource (the reply monitor), blocked forever. Fixed by \
             detecting same-thread dispatch and calling directly ('other').",
            RC::One,
            TC::One,
            DF::Other,
            TM::CannotHelp(OB::LongRegion),
            None,
        ),
        // d5: 2 res, 2 thr, GiveUp, Helps
        dl(
            "mozilla-dl-81426",
            Mozilla,
            "cache service lock vs cache entry lock ABBA",
            "The eviction path locks service-then-entry; the doom path locks \
             entry-then-service. Concurrent eviction and doom deadlock. Fixed \
             by dropping the entry lock before calling into the service.",
            RC::Two,
            TC::Two,
            DF::GiveUpResource,
            TM::Helps,
            Some("abba"),
        ),
        // d6: 2 res, 2 thr, GiveUp, Helps
        dl(
            "mozilla-dl-88332",
            Mozilla,
            "imglib cache lock vs decoder monitor cycle",
            "The animation timer holds the image-cache lock and enters the \
             decoder monitor; the decoder thread holds its monitor and \
             re-enters the cache to update sizes. Fixed by releasing the cache \
             lock before notifying the decoder.",
            RC::Two,
            TC::Two,
            DF::GiveUpResource,
            TM::Helps,
            Some("abba"),
        ),
        // d7: 2 res, 2 thr, GiveUp, Maybe
        dl(
            "mozilla-dl-94215",
            Mozilla,
            "necko DNS lock vs proxy service lock taken in opposite orders",
            "Resolution with a PAC proxy holds the DNS lock and queries the \
             proxy service; PAC reconfiguration holds the proxy lock and \
             flushes DNS. Fixed by giving up the DNS lock before the proxy \
             query.",
            RC::Two,
            TC::Two,
            DF::GiveUpResource,
            TM::MaybeHelps,
            Some("abba"),
        ),
        // d8: 2 res, 2 thr, GiveUp, Maybe
        dl(
            "mozilla-dl-101731",
            Mozilla,
            "mailnews folder lock held across blocking IMAP wait",
            "The UI thread holds the folder lock and waits for the IMAP \
             thread's completion monitor; the IMAP thread needs the folder \
             lock to complete. Fixed by waiting without holding the folder \
             lock.",
            RC::Two,
            TC::Two,
            DF::GiveUpResource,
            TM::MaybeHelps,
            Some("wait_holding_lock"),
        ),
        // d9: 2 res, 2 thr, GiveUp, Cannot(io)
        dl(
            "mozilla-dl-109482",
            Mozilla,
            "disk cache map lock held across block-file write that needs it",
            "A writer holds the cache-map lock across a block-file write whose \
             error path re-enters the map; meanwhile the eviction thread \
             blocks on the map lock holding the block-file lock the write \
             needs. File I/O in the region rules out a transactional fix; the \
             write is now performed after dropping the map lock.",
            RC::Two,
            TC::Two,
            DF::GiveUpResource,
            TM::CannotHelp(OB::IoInRegion),
            Some("wait_holding_lock"),
        ),
        // d10: 2 res, 2 thr, GiveUp, Cannot(long)
        dl(
            "mozilla-dl-117265",
            Mozilla,
            "plugin host lock held across long NPAPI call that re-enters",
            "The plugin host holds its instance-table lock across an NPAPI \
             call of unbounded duration; the plugin calls back into the host \
             from another thread, which waits on the table lock while the \
             first thread waits on the plugin's own lock.",
            RC::Two,
            TC::Two,
            DF::GiveUpResource,
            TM::CannotHelp(OB::LongRegion),
            None,
        ),
        // d11: 2 res, 2 thr, GiveUp, Cannot(notAtomicity)
        dl(
            "mozilla-dl-123904",
            Mozilla,
            "nsEventQueue monitor vs DOM lock hand-off protocol cycle",
            "The event queue monitor and the DOM mutation lock form a cycle \
             between the UI and parser threads; the monitor implements a \
             hand-off protocol rather than data atomicity, so TM does not \
             apply. Fixed by releasing the DOM lock before dispatching.",
            RC::Two,
            TC::Two,
            DF::GiveUpResource,
            TM::CannotHelp(OB::NotAtomicityIntent),
            Some("bounded_buffer"),
        ),
        // d12: 2 res, 2 thr, AcquireInOrder, Helps
        dl(
            "mozilla-dl-130512",
            Mozilla,
            "rwlock read-to-write upgrade while a peer does the same",
            "Two style-system threads holding read locks on the rule tree \
             both try to upgrade to write; neither can proceed while the other \
             holds its read lock. Fixed by acquiring the write lock up front \
             (ordering the acquisition).",
            RC::Two,
            TC::Two,
            DF::AcquireInOrder,
            TM::Helps,
            Some("rwlock_upgrade"),
        ),
        // d13: 2 res, 2 thr, AcquireInOrder, Maybe
        dl(
            "mozilla-dl-137748",
            Mozilla,
            "join of decoder thread while holding the lock it exits under",
            "Image teardown joins the decoder thread while holding the decoder \
             lock that the thread's exit path acquires. Fixed by documenting \
             and enforcing join-before-lock ordering.",
            RC::Two,
            TC::Two,
            DF::AcquireInOrder,
            TM::MaybeHelps,
            Some("join_under_lock"),
        ),
        // d14: 2 res, 2 thr, AcquireInOrder, Maybe
        dl(
            "mozilla-dl-144831",
            Mozilla,
            "NSS slot lock vs session lock order inverted in C_Login path",
            "The login path takes slot-then-session; key generation takes \
             session-then-slot. A global lock order (slot before session) was \
             imposed across the module.",
            RC::Two,
            TC::Two,
            DF::AcquireInOrder,
            TM::MaybeHelps,
            Some("abba"),
        ),
        // d15: 2 res, 2 thr, SplitResource, Helps
        dl(
            "mozilla-dl-151176",
            Mozilla,
            "single I/O semaphore shared by reader and writer rings",
            "Reader and writer thread pools throttled through one counting \
             semaphore; a full ring of writers waiting for readers (and vice \
             versa) starves into a cycle. The semaphore was split into \
             independent read and write semaphores.",
            RC::Two,
            TC::Two,
            DF::SplitResource,
            TM::Helps,
            Some("semaphore_cycle"),
        ),
        // d16: >2 res, >2 thr, GiveUp, Helps
        dl(
            "mozilla-dl-158629",
            Mozilla,
            "three-lock cycle across necko, cache and timer threads",
            "The socket thread holds the transport lock and wants the cache \
             lock; the cache thread holds the cache lock and wants the timer \
             lock; the timer thread holds the timer lock and wants the \
             transport lock — a three-resource, three-thread cycle (the only \
             >2-resource deadlock in the corpus). Fixed by dropping the \
             transport lock before touching the cache.",
            RC::MoreThanTwo,
            TC::MoreThanTwo,
            DF::GiveUpResource,
            TM::Helps,
            Some("lock_cycle_3"),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::BugClass;

    #[test]
    fn counts_match_quotas() {
        let all = bugs();
        assert_eq!(all.len(), 57);
        assert_eq!(
            all.iter()
                .filter(|b| b.class() == BugClass::NonDeadlock)
                .count(),
            41
        );
        assert_eq!(
            all.iter()
                .filter(|b| b.class() == BugClass::Deadlock)
                .count(),
            16
        );
    }

    #[test]
    fn pattern_quota() {
        let nd: Vec<_> = bugs().into_iter().filter(|b| b.is_non_deadlock()).collect();
        let a = nd
            .iter()
            .filter(|b| b.patterns().unwrap().atomicity)
            .count();
        let o = nd.iter().filter(|b| b.patterns().unwrap().order).count();
        let both = nd
            .iter()
            .filter(|b| {
                let p = b.patterns().unwrap();
                p.atomicity && p.order
            })
            .count();
        assert_eq!(a, 29);
        assert_eq!(o, 14);
        assert_eq!(both, 2);
    }

    #[test]
    fn multivariable_quota() {
        let nd: Vec<_> = bugs().into_iter().filter(|b| b.is_non_deadlock()).collect();
        use crate::taxonomy::VariableCount;
        let multi = nd
            .iter()
            .filter(|b| b.variables() == Some(VariableCount::MoreThanOne))
            .count();
        assert_eq!(multi, 16);
    }

    #[test]
    fn deadlock_resource_quota() {
        use crate::taxonomy::ResourceCount;
        let d: Vec<_> = bugs().into_iter().filter(|b| b.is_deadlock()).collect();
        let one = d
            .iter()
            .filter(|b| b.resources() == Some(ResourceCount::One))
            .count();
        let more = d
            .iter()
            .filter(|b| b.resources() == Some(ResourceCount::MoreThanTwo))
            .count();
        assert_eq!(one, 4);
        assert_eq!(more, 1);
    }

    #[test]
    fn ids_are_unique() {
        let all = bugs();
        let mut ids: Vec<_> = all.iter().map(|b| b.id.as_str().to_owned()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
    }
}
