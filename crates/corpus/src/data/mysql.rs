//! MySQL bug records: 14 non-deadlock + 9 deadlock.
//!
//! Records are synthesized to the study's per-app quotas (see DESIGN.md
//! §4.1); subsystems and failure modes are modeled on the kinds of MySQL
//! server bugs the study sampled (binlog, InnoDB, query cache,
//! replication, table cache, …).

use crate::bug::{dl, nd, Bug};
use crate::taxonomy::{
    AccessCount::{AtMostFour, MoreThanFour},
    App::MySql,
    DeadlockFix as DF, NonDeadlockFix as NF, PatternSet as PS, ResourceCount as RC,
    ThreadCount as TC, TmApplicability as TM, TmObstacle as OB,
    VariableCount::{MoreThanOne, One},
};

/// All MySQL records.
pub fn bugs() -> Vec<Bug> {
    let mut v = non_deadlock();
    v.extend(deadlock());
    v
}

fn non_deadlock() -> Vec<Bug> {
    vec![
        nd(
            "mysql-791",
            MySql,
            "binlog entries interleave during log rotation",
            "While one thread rotates the binary log (close old file, open new), \
             another session appends its transaction record. The append's \
             read-of-current-log and write are not atomic with respect to the \
             rotation, so an entry lands in a closed log and replication breaks.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::CannotHelp(OB::IoInRegion),
            Some("read_frag_write"),
        ),
        nd(
            "mysql-2011",
            MySql,
            "query cache invalidation races with lookup",
            "A SELECT checks `query_cache_size != 0` and then dereferences the \
             cache structure; concurrently, RESET QUERY CACHE frees the structure \
             between the check and the use, crashing the server.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::Helps,
            Some("check_then_act_null"),
        ),
        nd(
            "mysql-3596",
            MySql,
            "InnoDB buffer pool LRU statistic lost updates",
            "Two purge workers increment `buf_pool->stat.n_pages_made_young` with \
             a plain load-add-store. Concurrent increments lose counts, skewing \
             the flushing heuristics under load.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::MaybeHelps,
            Some("counter_rmw"),
        ),
        nd(
            "mysql-5014",
            MySql,
            "HANDLER close races with table flush check",
            "The HANDLER code checks `table->needs_reopen` and proceeds to read \
             the table object while FLUSH TABLES concurrently marks and frees it. \
             The check-then-act window yields reads of freed memory.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::Helps,
            Some("bank_withdraw"),
        ),
        nd(
            "mysql-6387",
            MySql,
            "table cache count diverges from cache list",
            "Opening a table updates the `table_cache_count` counter and the \
             cache's linked list in two steps. A concurrent close interleaves \
             between them, leaving count and list inconsistent and later \
             triggering an assertion in the cache eviction path.",
            PS::ATOMICITY,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::DesignChange,
            TM::MaybeHelps,
            Some("len_data_desync"),
        ),
        nd(
            "mysql-7209",
            MySql,
            "slow query log header and body interleave",
            "The slow-query logger writes the timestamp header and the statement \
             body as two `write()` calls. Two sessions logging simultaneously \
             interleave header/body pairs and corrupt the log file.",
            PS::ATOMICITY,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::CannotHelp(OB::IoInRegion),
            None,
        ),
        nd(
            "mysql-9560",
            MySql,
            "replication status aggregation tears across workers",
            "SHOW SLAVE STATUS aggregates per-worker positions from several \
             applier threads while they advance; the snapshot mixes positions \
             from different group commits. Manifestation requires three or more \
             workers advancing through a multi-field update window.",
            PS::ATOMICITY,
            MoreThanOne,
            MoreThanFour,
            TC::MoreThanTwo,
            NF::Other,
            TM::MaybeHelps,
            None,
        ),
        nd(
            "mysql-10928",
            MySql,
            "key cache resize reads stale block count",
            "MyISAM key cache resize reads `blocks_used` before waiting for \
             in-flight reads to drain; moving the read after the drain (a \
             two-line code switch) closes the window where a stale count \
             under-allocates the new cache.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::CodeSwitch,
            TM::Helps,
            None,
        ),
        nd(
            "mysql-12848",
            MySql,
            "FLUSH TABLES both tears and reorders the reopen flag",
            "The reopen path both assumes the flag-check and table-use are atomic \
             and assumes the flusher publishes the new table version before \
             setting the flag; the actual code does neither, so the bug manifests \
             both as an atomicity violation and as an order violation.",
            PS::BOTH,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::Helps,
            Some("toctou_flag"),
        ),
        nd(
            "mysql-14262",
            MySql,
            "slave SQL thread consumes relay event before IO thread completes it",
            "The SQL applier thread assumes the IO thread has finished writing \
             the relay-log event before it reads it; under a fast apply cycle the \
             read happens first and the applier sees a truncated event.",
            PS::ORDER,
            One,
            AtMostFour,
            TC::Two,
            NF::CodeSwitch,
            TM::MaybeHelps,
            Some("consume_before_produce"),
        ),
        nd(
            "mysql-16593",
            MySql,
            "shutdown reads thread count before signal handler registers exit",
            "Server shutdown expects every worker to have registered its exit \
             before the count is read; a late worker registers after the read, \
             and shutdown proceeds while the worker still touches global state.",
            PS::ORDER,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::MaybeHelps,
            Some("join_less_exit"),
        ),
        nd(
            "mysql-19938",
            MySql,
            "DDL publishes partial table definition to concurrent readers",
            "ALTER TABLE installs the new TABLE_SHARE pointer before finishing \
             the index metadata it points to; a concurrent query follows the \
             pointer and reads half-initialized metadata (two variables: the \
             pointer and the init flag).",
            PS::ORDER,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::DesignChange,
            TM::Helps,
            Some("publish_before_init"),
        ),
        nd(
            "mysql-21587",
            MySql,
            "InnoDB purge starts before trx list initialization completes",
            "At startup the purge coordinator may begin scanning the transaction \
             list before the recovery thread finishes rebuilding it; the scan \
             observes an uninitialized tail pointer.",
            PS::ORDER,
            One,
            AtMostFour,
            TC::Two,
            NF::Other,
            TM::Helps,
            Some("use_before_init_mozilla"),
        ),
        nd(
            "mysql-24988",
            MySql,
            "metadata lock retry storm starves DDL",
            "Two sessions repeatedly back off and retry conflicting metadata \
             lock requests in lockstep; neither makes progress for seconds. Not \
             an atomicity or order violation — the 'other' pattern bucket.",
            PS::OTHER,
            One,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::CannotHelp(OB::NotAtomicityIntent),
            Some("livelock_retry"),
        ),
    ]
}

fn deadlock() -> Vec<Bug> {
    vec![
        dl(
            "mysql-dl-3791",
            MySql,
            "LOCK_open re-acquired in error path (self-deadlock)",
            "An error path inside close_thread_tables() re-acquires LOCK_open, \
             which the caller already holds. The thread blocks on itself; the \
             fix gives up the resource by releasing before the error path.",
            RC::One,
            TC::One,
            DF::GiveUpResource,
            TM::Helps,
            Some("self_relock"),
        ),
        dl(
            "mysql-dl-5229",
            MySql,
            "binlog mutex re-entered from within the dump thread callback",
            "A callback invoked under LOCK_log calls back into a helper that \
             takes LOCK_log again. The lock is not used to protect a memory \
             invariant but to serialize an I/O ordering protocol, so wrapping \
             in a transaction would not express the intent.",
            RC::One,
            TC::One,
            DF::Other,
            TM::CannotHelp(OB::NotAtomicityIntent),
            Some("self_relock"),
        ),
        dl(
            "mysql-dl-6634",
            MySql,
            "LOCK_open vs LOCK_thd_data taken in opposite orders",
            "The kill path takes LOCK_thd_data then LOCK_open; the table-open \
             path takes them in the opposite order. Under concurrent KILL and \
             table open, the classic ABBA cycle forms.",
            RC::Two,
            TC::Two,
            DF::GiveUpResource,
            TM::Helps,
            Some("abba"),
        ),
        dl(
            "mysql-dl-8731",
            MySql,
            "event scheduler lock vs table cache lock cycle",
            "The event scheduler holds its queue mutex while opening a table \
             (which takes the table-cache mutex); DROP EVENT holds the \
             table-cache mutex while cancelling events (which takes the queue \
             mutex).",
            RC::Two,
            TC::Two,
            DF::GiveUpResource,
            TM::MaybeHelps,
            Some("abba"),
        ),
        dl(
            "mysql-dl-10249",
            MySql,
            "InnoDB dict lock vs MySQL table lock in DDL vs background stats",
            "Background statistics collection acquires dict_sys->mutex then the \
             MDL; ALTER TABLE acquires the MDL then dict_sys->mutex. The fix \
             releases dict_sys->mutex before upgrading.",
            RC::Two,
            TC::Two,
            DF::GiveUpResource,
            TM::MaybeHelps,
            Some("abba"),
        ),
        dl(
            "mysql-dl-12004",
            MySql,
            "replication relay log lock ordered after applier lock",
            "The IO thread and SQL thread acquired the relay-log mutex and the \
             applier-state mutex in opposite orders; the fix imposes a global \
             acquisition order documented in the locking hierarchy.",
            RC::Two,
            TC::Two,
            DF::AcquireInOrder,
            TM::Helps,
            Some("abba"),
        ),
        dl(
            "mysql-dl-15667",
            MySql,
            "FLUSH TABLES WITH READ LOCK vs purge thread ordering",
            "The global read lock and the purge queue mutex are acquired in \
             opposite orders by the FTWRL path and the purge coordinator; fixed \
             by ordering purge acquisition first.",
            RC::Two,
            TC::Two,
            DF::AcquireInOrder,
            TM::MaybeHelps,
            None,
        ),
        dl(
            "mysql-dl-18345",
            MySql,
            "log flush waits under the commit mutex that the flusher needs",
            "Group commit held the commit mutex while fsync-ing; the flusher \
             needed the same mutex to advance. The region performs file I/O, so \
             a transactional rewrite is not applicable; the fix splits the \
             commit mutex into queue and flush stages.",
            RC::Two,
            TC::Two,
            DF::SplitResource,
            TM::CannotHelp(OB::IoInRegion),
            Some("wait_holding_lock"),
        ),
        dl(
            "mysql-dl-22113",
            MySql,
            "DROP DATABASE holds dict lock across a long file-removal loop",
            "DROP DATABASE holds the dictionary mutex while unlinking every \
             table file; a checkpoint thread waiting on the mutex in turn blocks \
             the redo flush DROP needs to finish. Fixed by releasing the \
             dictionary mutex between files (give up the resource).",
            RC::Two,
            TC::Two,
            DF::GiveUpResource,
            TM::CannotHelp(OB::LongRegion),
            Some("wait_holding_lock"),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::BugClass;

    #[test]
    fn counts_match_quotas() {
        let all = bugs();
        assert_eq!(all.len(), 23);
        assert_eq!(
            all.iter()
                .filter(|b| b.class() == BugClass::NonDeadlock)
                .count(),
            14
        );
        assert_eq!(
            all.iter()
                .filter(|b| b.class() == BugClass::Deadlock)
                .count(),
            9
        );
    }

    #[test]
    fn ids_are_unique_and_prefixed() {
        let all = bugs();
        let mut ids: Vec<_> = all.iter().map(|b| b.id.as_str().to_owned()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
        assert!(all.iter().all(|b| b.id.as_str().starts_with("mysql-")));
    }

    #[test]
    fn deadlock_fix_quotas() {
        use crate::taxonomy::{DeadlockFix, FixStrategy};
        let d: Vec<_> = bugs().into_iter().filter(|b| b.is_deadlock()).collect();
        let count = |f: DeadlockFix| {
            d.iter()
                .filter(|b| matches!(b.fix(), FixStrategy::Deadlock(x) if x == f))
                .count()
        };
        assert_eq!(count(DeadlockFix::GiveUpResource), 5);
        assert_eq!(count(DeadlockFix::AcquireInOrder), 2);
        assert_eq!(count(DeadlockFix::SplitResource), 1);
        assert_eq!(count(DeadlockFix::Other), 1);
    }

    #[test]
    fn pattern_quota() {
        let all = bugs();
        let nd: Vec<_> = all.iter().filter(|b| b.is_non_deadlock()).collect();
        let atomicity = nd
            .iter()
            .filter(|b| b.patterns().unwrap().atomicity)
            .count();
        let order = nd.iter().filter(|b| b.patterns().unwrap().order).count();
        let both = nd
            .iter()
            .filter(|b| {
                let p = b.patterns().unwrap();
                p.atomicity && p.order
            })
            .count();
        let other = nd.iter().filter(|b| b.patterns().unwrap().other).count();
        assert_eq!(atomicity, 9);
        assert_eq!(order, 5);
        assert_eq!(both, 1);
        assert_eq!(other, 1);
    }
}
