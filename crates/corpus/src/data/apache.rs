//! Apache bug records: 13 non-deadlock + 4 deadlock.
//!
//! Modeled on httpd / APR subsystems: the worker MPM, mod_log_config's
//! shared buffer, mod_mem_cache, APR pools, scoreboard, and mod_ssl
//! session caching.

use crate::bug::{dl, nd, Bug};
use crate::taxonomy::{
    AccessCount::{AtMostFour, MoreThanFour},
    App::Apache,
    DeadlockFix as DF, NonDeadlockFix as NF, PatternSet as PS, ResourceCount as RC,
    ThreadCount as TC, TmApplicability as TM, TmObstacle as OB,
    VariableCount::{MoreThanOne, One},
};

/// All Apache records.
pub fn bugs() -> Vec<Bug> {
    let mut v = non_deadlock();
    v.extend(deadlock());
    v
}

fn non_deadlock() -> Vec<Bug> {
    vec![
        nd(
            "apache-25520",
            Apache,
            "mod_log_config shared buffer pointer torn between workers",
            "Two worker threads append to the shared access-log buffer: each \
             reads the current write offset, copies its record, then stores the \
             new offset. Interleaved read/copy/store pairs overwrite each \
             other's records and corrupt the log.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::CannotHelp(OB::IoInRegion),
            Some("log_buffer_apache"),
        ),
        nd(
            "apache-21287",
            Apache,
            "mod_mem_cache object refcount decremented non-atomically",
            "cache_object cleanup does `obj->refcount--; if (!obj->refcount) \
             free(obj)` without atomicity; two threads finishing with the same \
             object both see refcount reach zero or neither does, causing a \
             double free or a leak.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::Helps,
            Some("stat_counter"),
        ),
        nd(
            "apache-31018",
            Apache,
            "scoreboard worker-slot status lost updates",
            "Workers update their scoreboard slot state with plain \
             load-modify-store; the parent's maintenance pass interleaves and \
             resurrects a dead slot, skewing process management decisions.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::MaybeHelps,
            Some("counter_rmw"),
        ),
        nd(
            "apache-36594",
            Apache,
            "mod_ssl session cache index and entry updated in two steps",
            "Inserting an SSL session updates the hash index and the entry's \
             expiry field separately; a concurrent lookup between the steps \
             finds the index pointing at an entry with a stale expiry and \
             resurrects an expired session (two variables).",
            PS::ATOMICITY,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::DesignChange,
            TM::MaybeHelps,
            Some("state_data_pair"),
        ),
        nd(
            "apache-42031",
            Apache,
            "worker queue info idle-count read before push is visible",
            "The listener reads `queue_info->idlers` before a worker's push of \
             itself becomes visible; reordering the push before the decrement \
             (a code switch) removes the window that wedged the listener.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::CodeSwitch,
            TM::Helps,
            None,
        ),
        nd(
            "apache-44402",
            Apache,
            "piped log writer interleaves header and body writes",
            "Error-log entries written through a piped logger perform two \
             writes (prefix, message). Concurrent children interleave them, \
             producing garbled lines. The region is I/O, so a transactional \
             wrap is not applicable; a mutex serializes the writes instead.",
            PS::ATOMICITY,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::CannotHelp(OB::IoInRegion),
            None,
        ),
        nd(
            "apache-46215",
            Apache,
            "mod_cache revalidation races across header, body and meta updates",
            "Revalidating a cached entity rewrites five fields (status, headers, \
             body handle, expiry, etag) while readers stream the old entity; a \
             reader observing a mix of old and new fields serves a hybrid \
             response. Needs an ordering over more than four accesses to pin \
             down.",
            PS::ATOMICITY,
            One,
            MoreThanFour,
            TC::Two,
            NF::Other,
            TM::MaybeHelps,
            None,
        ),
        nd(
            "apache-48790",
            Apache,
            "APR reslist count checked then grown without atomicity",
            "apr_reslist_acquire checks `ntotal < max` and then creates a new \
             resource; two acquirers both pass the check and the list exceeds \
             its bound. Fixed by re-checking under the list mutex.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::Helps,
            Some("bank_withdraw"),
        ),
        nd(
            "apache-50026",
            Apache,
            "mpm event timeout queue length diverges from list under churn",
            "The event MPM maintains a timeout queue and a separate length \
             counter; pop and length-decrement interleave with push, and the \
             divergence eventually makes maintenance skip live connections.",
            PS::ATOMICITY,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::Other,
            TM::MaybeHelps,
            Some("len_data_desync"),
        ),
        nd(
            "apache-52327",
            Apache,
            "child init publishes hook table before module init completes",
            "A child process publishes its hook dispatch table before one \
             module finishes registering; the first request dispatches into a \
             half-registered table. Reordering registration before publication \
             fixes it.",
            PS::ORDER,
            One,
            AtMostFour,
            TC::Two,
            NF::CodeSwitch,
            TM::Helps,
            Some("publish_before_init"),
        ),
        nd(
            "apache-53919",
            Apache,
            "graceful restart signals workers before draining listeners",
            "The restart path assumed listeners stop before workers are told to \
             exit; the actual signal arrives first under load, and an accepting \
             worker processes a connection with torn-down per-child state.",
            PS::ORDER,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::MaybeHelps,
            Some("shutdown_order"),
        ),
        nd(
            "apache-55284",
            Apache,
            "mod_proxy balancer applies slot update before shm header version",
            "The balancer manager writes a member's new weight and then the shm \
             header's generation counter; readers poll generation first, so the \
             intended 'bump then publish' order is inverted and a reader mixes \
             generations across two variables over a long scan.",
            PS::ORDER,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::Other,
            TM::Helps,
            None,
        ),
        nd(
            "apache-57179",
            Apache,
            "listener notifies cond before worker enters wait",
            "The listener signals 'work available' before an idle worker has \
             entered the condition wait; the wakeup is lost and the connection \
             stalls until the next event. The mutex added by the fix exists to \
             order wait and signal, not to protect data.",
            PS::ORDER,
            One,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::CannotHelp(OB::NotAtomicityIntent),
            Some("missed_signal"),
        ),
    ]
}

fn deadlock() -> Vec<Bug> {
    vec![
        dl(
            "apache-dl-32147",
            Apache,
            "APR pool mutex re-acquired during cleanup callback (self-deadlock)",
            "Destroying a pool runs registered cleanups while holding the pool \
             mutex; one cleanup allocates from the same pool and re-acquires \
             the mutex. Fixed by releasing the mutex around cleanup callbacks.",
            RC::One,
            TC::One,
            DF::GiveUpResource,
            TM::Helps,
            Some("self_relock"),
        ),
        dl(
            "apache-dl-37680",
            Apache,
            "mod_rewrite log mutex vs cache mutex ABBA",
            "The rewrite map cache path locks cache-then-log; the logging path \
             locks log-then-cache when flushing a map miss. Concurrent requests \
             deadlock. Fixed by dropping the cache mutex before logging.",
            RC::Two,
            TC::Two,
            DF::GiveUpResource,
            TM::Helps,
            Some("abba"),
        ),
        dl(
            "apache-dl-42942",
            Apache,
            "worker queue mutex vs pool mutex cycle during connection teardown",
            "Teardown holds the connection queue mutex and destroys a pool \
             (taking the allocator mutex); the allocator's low-memory path \
             recycles into the queue, taking the queue mutex.",
            RC::Two,
            TC::Two,
            DF::GiveUpResource,
            TM::MaybeHelps,
            Some("abba"),
        ),
        dl(
            "apache-dl-46990",
            Apache,
            "mod_ssl session cache lock held across OCSP network fetch",
            "The OCSP revalidation path held the session-cache mutex across a \
             blocking network call while the handshake path waited on it \
             holding the SSL context lock the fetch needed. Fixed by ordering \
             the two acquisitions; the region blocks on the network, far too \
             long for a transaction.",
            RC::Two,
            TC::Two,
            DF::AcquireInOrder,
            TM::CannotHelp(OB::LongRegion),
            Some("wait_holding_lock"),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::BugClass;

    #[test]
    fn counts_match_quotas() {
        let all = bugs();
        assert_eq!(all.len(), 17);
        assert_eq!(
            all.iter()
                .filter(|b| b.class() == BugClass::NonDeadlock)
                .count(),
            13
        );
        assert_eq!(
            all.iter()
                .filter(|b| b.class() == BugClass::Deadlock)
                .count(),
            4
        );
    }

    #[test]
    fn pattern_quota() {
        let nd: Vec<_> = bugs().into_iter().filter(|b| b.is_non_deadlock()).collect();
        let a = nd
            .iter()
            .filter(|b| b.patterns().unwrap().atomicity)
            .count();
        let o = nd.iter().filter(|b| b.patterns().unwrap().order).count();
        let both = nd
            .iter()
            .filter(|b| {
                let p = b.patterns().unwrap();
                p.atomicity && p.order
            })
            .count();
        assert_eq!(a, 9);
        assert_eq!(o, 4);
        assert_eq!(both, 0);
    }

    #[test]
    fn fix_strategy_quotas() {
        use crate::taxonomy::{FixStrategy, NonDeadlockFix};
        let nd: Vec<_> = bugs().into_iter().filter(|b| b.is_non_deadlock()).collect();
        let count = |f: NonDeadlockFix| {
            nd.iter()
                .filter(|b| matches!(b.fix(), FixStrategy::NonDeadlock(x) if x == f))
                .count()
        };
        assert_eq!(count(NonDeadlockFix::ConditionCheck), 3);
        assert_eq!(count(NonDeadlockFix::CodeSwitch), 2);
        assert_eq!(count(NonDeadlockFix::DesignChange), 1);
        assert_eq!(count(NonDeadlockFix::AddOrChangeLock), 4);
        assert_eq!(count(NonDeadlockFix::Other), 3);
    }

    #[test]
    fn tm_quotas() {
        use crate::taxonomy::TmApplicability;
        let all = bugs();
        let helps = all
            .iter()
            .filter(|b| matches!(b.tm, TmApplicability::Helps))
            .count();
        let maybe = all
            .iter()
            .filter(|b| matches!(b.tm, TmApplicability::MaybeHelps))
            .count();
        let cannot = all
            .iter()
            .filter(|b| matches!(b.tm, TmApplicability::CannotHelp(_)))
            .count();
        assert_eq!((helps, maybe, cannot), (7, 6, 4));
    }

    #[test]
    fn ids_are_unique() {
        let all = bugs();
        let mut ids: Vec<_> = all.iter().map(|b| b.id.as_str().to_owned()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
    }
}
