//! OpenOffice bug records: 6 non-deadlock + 2 deadlock.
//!
//! Modeled on the office suite's threaded subsystems: VCL's solar mutex
//! world, Writer autosave, Calc's recalculation, and the UNO dispatch
//! bridge.

use crate::bug::{dl, nd, Bug};
use crate::taxonomy::{
    AccessCount::AtMostFour,
    App::OpenOffice,
    DeadlockFix as DF, NonDeadlockFix as NF, PatternSet as PS, ResourceCount as RC,
    ThreadCount as TC, TmApplicability as TM, TmObstacle as OB,
    VariableCount::{MoreThanOne, One},
};

/// All OpenOffice records.
pub fn bugs() -> Vec<Bug> {
    vec![
        // nd1: A, 1, <=4, 2, Lock, Helps
        nd(
            "openoffice-38275",
            OpenOffice,
            "Calc recalculation counter lost updates across sheet threads",
            "Parallel sheet recalculation bumps the dirty-cell counter with \
             plain load-add-store; lost updates end recalculation early and \
             leave stale cells. The counter was moved under the document \
             mutex.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::Helps,
            Some("counter_rmw"),
        ),
        // nd2: A, 1, <=4, 2, CondCheck, Maybe
        nd(
            "openoffice-44126",
            OpenOffice,
            "Writer autosave checks modified flag then saves stale document",
            "Autosave tests the document-modified flag and then serializes; an \
             edit between test and serialize is silently dropped from the \
             autosave file. A re-check inside the save loop fixes it.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::ConditionCheck,
            TM::MaybeHelps,
            Some("toctou_flag"),
        ),
        // nd3: A, multi, <=4, 2, Design, Maybe
        nd(
            "openoffice-51833",
            OpenOffice,
            "UNO dispatch cache entry and generation updated in two steps",
            "The dispatch cache stores the handler pointer and a generation \
             stamp separately; an invalidation between the two writes lets a \
             reader pair a new handler with an old generation and dispatch \
             into a disposed object. Redesigned to pack both into one slot.",
            PS::ATOMICITY,
            MoreThanOne,
            AtMostFour,
            TC::Two,
            NF::DesignChange,
            TM::MaybeHelps,
            Some("state_data_pair"),
        ),
        // nd4: A, 1, <=4, 2, Switch, Helps
        nd(
            "openoffice-59410",
            OpenOffice,
            "VCL idle handler reads paint-pending flag before queue drain",
            "The idle painter reads the paint-pending flag before the event \
             thread finishes draining the invalidation queue; swapping the \
             drain and the flag store closes the lost-paint window.",
            PS::ATOMICITY,
            One,
            AtMostFour,
            TC::Two,
            NF::CodeSwitch,
            TM::Helps,
            None,
        ),
        // nd5: O, 1, <=4, 2, Other, Maybe
        nd(
            "openoffice-66092",
            OpenOffice,
            "print job started before spooler thread publishes device handle",
            "Printing expects the spooler thread to publish the device handle \
             before the job body runs; under load the body runs first and \
             aborts. Fixed by handing the job to the spooler thread itself \
             ('other').",
            PS::ORDER,
            One,
            AtMostFour,
            TC::Two,
            NF::Other,
            TM::MaybeHelps,
            Some("publish_before_init"),
        ),
        // nd6: Other, 1, <=4, 2, Lock, Cannot(notAtomicity)
        nd(
            "openoffice-72451",
            OpenOffice,
            "solar mutex yield loop starves the event thread",
            "Two threads repeatedly yield and re-acquire the solar mutex in \
             lockstep, starving the event thread for seconds — neither an \
             atomicity nor an order violation (the 'other' bucket). The yield \
             protocol is not an atomicity intent, so TM does not apply; the \
             fix reworks the yield into a prioritized lock.",
            PS::OTHER,
            One,
            AtMostFour,
            TC::Two,
            NF::AddOrChangeLock,
            TM::CannotHelp(OB::NotAtomicityIntent),
            Some("livelock_retry"),
        ),
        // d1: 2 res, 2 thr, GiveUp, Helps
        dl(
            "openoffice-dl-47239",
            OpenOffice,
            "solar mutex vs document mutex ABBA between UI and autosave",
            "The UI thread holds the solar mutex and takes the document mutex \
             on edit; autosave holds the document mutex and needs the solar \
             mutex to update the status bar. Fixed by having autosave give up \
             the document mutex before touching the UI.",
            RC::Two,
            TC::Two,
            DF::GiveUpResource,
            TM::Helps,
            Some("abba"),
        ),
        // d2: 2 res, 2 thr, Other, Cannot(long)
        dl(
            "openoffice-dl-63514",
            OpenOffice,
            "UNO remote bridge waits for reply under the request mutex",
            "A synchronous UNO call holds the bridge request mutex while \
             waiting for the remote reply; the reply dispatcher needs the same \
             mutex to deliver it. The wait spans a remote round-trip, far \
             beyond transactional scope; fixed with a dedicated reply queue \
             ('other').",
            RC::Two,
            TC::Two,
            DF::Other,
            TM::CannotHelp(OB::LongRegion),
            Some("wait_holding_lock"),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::BugClass;

    #[test]
    fn counts_match_quotas() {
        let all = bugs();
        assert_eq!(all.len(), 8);
        assert_eq!(
            all.iter()
                .filter(|b| b.class() == BugClass::NonDeadlock)
                .count(),
            6
        );
        assert_eq!(
            all.iter()
                .filter(|b| b.class() == BugClass::Deadlock)
                .count(),
            2
        );
    }

    #[test]
    fn pattern_and_fix_quotas() {
        use crate::taxonomy::{FixStrategy, NonDeadlockFix};
        let nd: Vec<_> = bugs().into_iter().filter(|b| b.is_non_deadlock()).collect();
        let atomicity = nd
            .iter()
            .filter(|b| b.patterns().unwrap().atomicity)
            .count();
        let other = nd.iter().filter(|b| b.patterns().unwrap().other).count();
        assert_eq!(atomicity, 4);
        assert_eq!(other, 1);
        let lock = nd
            .iter()
            .filter(|b| {
                matches!(
                    b.fix(),
                    FixStrategy::NonDeadlock(NonDeadlockFix::AddOrChangeLock)
                )
            })
            .count();
        assert_eq!(lock, 2);
    }

    #[test]
    fn tm_quotas() {
        use crate::taxonomy::TmApplicability;
        let all = bugs();
        let helps = all
            .iter()
            .filter(|b| matches!(b.tm, TmApplicability::Helps))
            .count();
        assert_eq!(helps, 3);
    }

    #[test]
    fn ids_are_unique() {
        let all = bugs();
        let mut ids: Vec<_> = all.iter().map(|b| b.id.as_str().to_owned()).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), all.len());
    }
}
