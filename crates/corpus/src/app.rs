//! Per-application metadata backing the study's Table 1
//! ("applications studied").

use serde::Serialize;

use crate::taxonomy::App;

/// Metadata row for one studied application.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct AppInfo {
    /// The application.
    pub app: App,
    /// One-line description as in the paper's overview table.
    pub description: &'static str,
    /// Approximate size in millions of lines of code at study time
    /// (reconstructed, order-of-magnitude).
    pub approx_mloc: f64,
    /// The public bug database the bugs were sampled from.
    pub bug_database: &'static str,
    /// Non-deadlock bugs sampled by the study.
    pub sampled_non_deadlock: usize,
    /// Deadlock bugs sampled by the study.
    pub sampled_deadlock: usize,
}

impl AppInfo {
    /// Total sampled bugs for this application.
    pub fn sampled_total(&self) -> usize {
        self.sampled_non_deadlock + self.sampled_deadlock
    }
}

/// The four applications' metadata, in canonical order.
pub fn all_apps() -> Vec<AppInfo> {
    vec![
        AppInfo {
            app: App::MySql,
            description: "database server",
            approx_mloc: 1.9,
            bug_database: "bugs.mysql.com",
            sampled_non_deadlock: 14,
            sampled_deadlock: 9,
        },
        AppInfo {
            app: App::Apache,
            description: "HTTP server and support libraries",
            approx_mloc: 0.35,
            bug_database: "issues.apache.org/bugzilla",
            sampled_non_deadlock: 13,
            sampled_deadlock: 4,
        },
        AppInfo {
            app: App::Mozilla,
            description: "browser suite",
            approx_mloc: 3.4,
            bug_database: "bugzilla.mozilla.org",
            sampled_non_deadlock: 41,
            sampled_deadlock: 16,
        },
        AppInfo {
            app: App::OpenOffice,
            description: "office suite",
            approx_mloc: 4.4,
            bug_database: "openoffice.org issue tracker",
            sampled_non_deadlock: 6,
            sampled_deadlock: 2,
        },
    ]
}

/// Metadata for one application.
pub fn app_info(app: App) -> AppInfo {
    all_apps()
        .into_iter()
        .find(|i| i.app == app)
        .expect("all four apps have metadata")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_apps_in_order() {
        let apps = all_apps();
        assert_eq!(apps.len(), 4);
        assert_eq!(
            apps.iter().map(|a| a.app).collect::<Vec<_>>(),
            App::ALL.to_vec()
        );
    }

    #[test]
    fn sampled_counts_sum_to_105() {
        let total: usize = all_apps().iter().map(|a| a.sampled_total()).sum();
        assert_eq!(total, 105);
        let nd: usize = all_apps().iter().map(|a| a.sampled_non_deadlock).sum();
        let d: usize = all_apps().iter().map(|a| a.sampled_deadlock).sum();
        assert_eq!(nd, 74);
        assert_eq!(d, 31);
    }

    #[test]
    fn lookup_by_app() {
        let info = app_info(App::Mozilla);
        assert_eq!(info.sampled_total(), 57);
        assert!(info.bug_database.contains("mozilla"));
    }
}
