//! # lfm-corpus — the 105-bug concurrency-bug corpus
//!
//! A machine-readable reconstruction of the dataset behind *"Learning
//! from Mistakes: A Comprehensive Study on Real World Concurrency Bug
//! Characteristics"* (ASPLOS 2008): 105 bugs — 74 non-deadlock, 31
//! deadlock — sampled from MySQL, Apache, Mozilla and OpenOffice, each
//! classified along the study's four dimensions (pattern, manifestation,
//! fix strategy, TM applicability).
//!
//! **Provenance caveat:** per-bug metadata here is *synthesized* — the
//! study's raw per-bug table was never published machine-readably. The
//! per-application and corpus-wide marginal totals match the study's
//! published statistics exactly (and are locked in by tests); titles and
//! descriptions are modeled on each application's real bug population.
//! See `DESIGN.md` and `EXPERIMENTS.md` at the workspace root.
//!
//! # Example
//!
//! ```rust
//! use lfm_corpus::{Corpus, BugClass, Pattern};
//!
//! let corpus = Corpus::full();
//! let nd = corpus.non_deadlock();
//! let atomicity_or_order = nd
//!     .iter()
//!     .filter(|b| b.patterns().unwrap().is_atomicity_or_order())
//!     .count();
//! // Finding 1: 97% of non-deadlock bugs are atomicity or order violations.
//! assert_eq!(atomicity_or_order, 72);
//! assert_eq!(nd.len(), 74);
//! # let _ = (BugClass::NonDeadlock, Pattern::Atomicity);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod app;
mod bug;
mod corpus;
pub mod data;
pub mod json;
mod taxonomy;

pub use app::{all_apps, app_info, AppInfo};
pub use bug::{Bug, BugDetail, BugId};
pub use corpus::{Corpus, CorpusQuery};
pub use json::to_json;
pub use taxonomy::{
    AccessCount, App, BugClass, DeadlockFix, FixStrategy, NonDeadlockFix, Pattern, PatternSet,
    ResourceCount, ThreadCount, TmApplicability, TmObstacle, VariableCount,
};
