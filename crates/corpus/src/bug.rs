//! The [`Bug`] record: one row of the study's dataset.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::taxonomy::{
    AccessCount, App, BugClass, DeadlockFix, FixStrategy, NonDeadlockFix, PatternSet,
    ResourceCount, ThreadCount, TmApplicability, VariableCount,
};

/// Stable identifier of a corpus bug, e.g. `"mysql-644"`.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct BugId(pub String);

impl BugId {
    /// The identifier as a string slice.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for BugId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for BugId {
    fn from(s: &str) -> BugId {
        BugId(s.to_owned())
    }
}

/// Class-specific detail of a bug record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BugDetail {
    /// Detail axes recorded for non-deadlock bugs.
    NonDeadlock {
        /// Root-cause pattern(s).
        patterns: PatternSet,
        /// Variables involved in the manifestation.
        variables: VariableCount,
        /// Accesses whose order guarantees manifestation.
        accesses: AccessCount,
        /// How developers fixed it.
        fix: NonDeadlockFix,
    },
    /// Detail axes recorded for deadlock bugs.
    Deadlock {
        /// Resources involved in the cycle.
        resources: ResourceCount,
        /// How developers fixed it.
        fix: DeadlockFix,
    },
}

/// One bug of the 105-bug corpus.
///
/// Field meanings follow the study's methodology section; see the crate
/// docs for the synthesized-vs-paper-exact caveat.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Bug {
    /// Stable identifier, `"<app>-<number>"`.
    pub id: BugId,
    /// Application the bug was reported against.
    pub app: App,
    /// Short title in bug-tracker style.
    pub title: String,
    /// What goes wrong and under which interleaving.
    pub description: String,
    /// Number of threads in the minimal manifestation.
    pub threads: ThreadCount,
    /// Class-specific axes.
    pub detail: BugDetail,
    /// The study's TM-applicability verdict.
    pub tm: TmApplicability,
    /// Identifier of the `lfm-kernels` kernel modeling this bug's
    /// pattern, when one exists.
    pub kernel: Option<String>,
}

impl Bug {
    /// The bug's class, derived from its detail.
    pub fn class(&self) -> BugClass {
        match self.detail {
            BugDetail::NonDeadlock { .. } => BugClass::NonDeadlock,
            BugDetail::Deadlock { .. } => BugClass::Deadlock,
        }
    }

    /// `true` for non-deadlock bugs.
    pub fn is_non_deadlock(&self) -> bool {
        self.class() == BugClass::NonDeadlock
    }

    /// `true` for deadlock bugs.
    pub fn is_deadlock(&self) -> bool {
        self.class() == BugClass::Deadlock
    }

    /// The pattern set, for non-deadlock bugs.
    pub fn patterns(&self) -> Option<PatternSet> {
        match &self.detail {
            BugDetail::NonDeadlock { patterns, .. } => Some(*patterns),
            BugDetail::Deadlock { .. } => None,
        }
    }

    /// Variables involved, for non-deadlock bugs.
    pub fn variables(&self) -> Option<VariableCount> {
        match &self.detail {
            BugDetail::NonDeadlock { variables, .. } => Some(*variables),
            BugDetail::Deadlock { .. } => None,
        }
    }

    /// Accesses involved, for non-deadlock bugs.
    pub fn accesses(&self) -> Option<AccessCount> {
        match &self.detail {
            BugDetail::NonDeadlock { accesses, .. } => Some(*accesses),
            BugDetail::Deadlock { .. } => None,
        }
    }

    /// Resources involved, for deadlock bugs.
    pub fn resources(&self) -> Option<ResourceCount> {
        match &self.detail {
            BugDetail::Deadlock { resources, .. } => Some(*resources),
            BugDetail::NonDeadlock { .. } => None,
        }
    }

    /// The fix strategy in the uniform [`FixStrategy`] taxonomy.
    pub fn fix(&self) -> FixStrategy {
        match &self.detail {
            BugDetail::NonDeadlock { fix, .. } => FixStrategy::NonDeadlock(*fix),
            BugDetail::Deadlock { fix, .. } => FixStrategy::Deadlock(*fix),
        }
    }
}

impl fmt::Display for Bug {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {} — {}", self.id, self.app, self.title)
    }
}

/// Compact constructor for non-deadlock records (used by the dataset
/// modules; keeps each record readable).
#[allow(clippy::too_many_arguments)]
pub(crate) fn nd(
    id: &str,
    app: App,
    title: &str,
    description: &str,
    patterns: PatternSet,
    variables: VariableCount,
    accesses: AccessCount,
    threads: ThreadCount,
    fix: NonDeadlockFix,
    tm: TmApplicability,
    kernel: Option<&'static str>,
) -> Bug {
    Bug {
        id: BugId::from(id),
        app,
        title: title.to_owned(),
        description: description.to_owned(),
        threads,
        detail: BugDetail::NonDeadlock {
            patterns,
            variables,
            accesses,
            fix,
        },
        tm,
        kernel: kernel.map(str::to_owned),
    }
}

/// Compact constructor for deadlock records.
#[allow(clippy::too_many_arguments)]
pub(crate) fn dl(
    id: &str,
    app: App,
    title: &str,
    description: &str,
    resources: ResourceCount,
    threads: ThreadCount,
    fix: DeadlockFix,
    tm: TmApplicability,
    kernel: Option<&'static str>,
) -> Bug {
    Bug {
        id: BugId::from(id),
        app,
        title: title.to_owned(),
        description: description.to_owned(),
        threads,
        detail: BugDetail::Deadlock { resources, fix },
        tm,
        kernel: kernel.map(str::to_owned),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::TmObstacle;

    fn sample_nd() -> Bug {
        nd(
            "test-1",
            App::MySql,
            "racy counter",
            "two threads race on a counter",
            PatternSet::ATOMICITY,
            VariableCount::One,
            AccessCount::AtMostFour,
            ThreadCount::Two,
            NonDeadlockFix::AddOrChangeLock,
            TmApplicability::Helps,
            Some("counter_rmw"),
        )
    }

    fn sample_dl() -> Bug {
        dl(
            "test-2",
            App::Apache,
            "abba",
            "two locks in opposite order",
            ResourceCount::Two,
            ThreadCount::Two,
            DeadlockFix::GiveUpResource,
            TmApplicability::CannotHelp(TmObstacle::NotAtomicityIntent),
            Some("abba"),
        )
    }

    #[test]
    fn class_derivation() {
        assert_eq!(sample_nd().class(), BugClass::NonDeadlock);
        assert!(sample_nd().is_non_deadlock());
        assert_eq!(sample_dl().class(), BugClass::Deadlock);
        assert!(sample_dl().is_deadlock());
    }

    #[test]
    fn axis_accessors_are_class_specific() {
        let b = sample_nd();
        assert_eq!(b.patterns(), Some(PatternSet::ATOMICITY));
        assert_eq!(b.variables(), Some(VariableCount::One));
        assert_eq!(b.accesses(), Some(AccessCount::AtMostFour));
        assert_eq!(b.resources(), None);
        assert!(matches!(b.fix(), FixStrategy::NonDeadlock(_)));

        let d = sample_dl();
        assert_eq!(d.patterns(), None);
        assert_eq!(d.variables(), None);
        assert_eq!(d.accesses(), None);
        assert_eq!(d.resources(), Some(ResourceCount::Two));
        assert!(matches!(d.fix(), FixStrategy::Deadlock(_)));
    }

    #[test]
    fn display_shows_id_app_title() {
        let s = sample_nd().to_string();
        assert!(s.contains("test-1"));
        assert!(s.contains("MySQL"));
        assert!(s.contains("racy counter"));
    }

    #[test]
    fn bug_id_conversions() {
        let id = BugId::from("x-1");
        assert_eq!(id.as_str(), "x-1");
        assert_eq!(id.to_string(), "x-1");
    }
}
