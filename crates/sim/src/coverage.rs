//! Interleaving coverage: the ordered conflicting-access-pair metric
//! used by systematic concurrency-testing work (CHESS and successors).
//!
//! For every shared variable, each pair of *consecutive* accesses by
//! different threads where at least one writes contributes one covered
//! key `(var, first thread, first-is-write, second thread,
//! second-is-write)`. Coverage over a test campaign is the union across
//! runs. The study's testing implication becomes measurable: random
//! testing saturates pair coverage quickly, yet a bug may require a
//! specific *conjunction* of pairs that plain pair coverage does not
//! force — which is why the reproduction's E-cov experiment shows high
//! pair coverage alongside missed manifestations.

use std::collections::BTreeSet;

use crate::ids::{ThreadId, VarId};
use crate::trace::{Event, EventKind};

/// One covered ordered access pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct PairKey {
    /// The variable both accesses touch.
    pub var: VarId,
    /// Thread of the earlier access.
    pub first: ThreadId,
    /// Whether the earlier access writes.
    pub first_write: bool,
    /// Thread of the later access.
    pub second: ThreadId,
    /// Whether the later access writes.
    pub second_write: bool,
}

/// A set of covered access pairs, unioned across runs.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PairCoverage {
    pairs: BTreeSet<PairKey>,
}

impl PairCoverage {
    /// An empty coverage set.
    pub fn new() -> PairCoverage {
        PairCoverage::default()
    }

    /// Adds the pairs of one recorded event sequence.
    pub fn observe_events(&mut self, events: &[Event]) {
        // Track the previous access per variable.
        let mut last: std::collections::BTreeMap<VarId, (ThreadId, bool)> =
            std::collections::BTreeMap::new();
        for event in events {
            let Some(var) = event.kind.var() else {
                continue;
            };
            let write = event.kind.is_write_access();
            // Failed CAS is a read; EventKind::var covers all accesses.
            let _ = matches!(event.kind, EventKind::Cas { .. });
            if let Some(&(prev_thread, prev_write)) = last.get(&var) {
                if prev_thread != event.thread && (prev_write || write) {
                    self.pairs.insert(PairKey {
                        var,
                        first: prev_thread,
                        first_write: prev_write,
                        second: event.thread,
                        second_write: write,
                    });
                }
            }
            last.insert(var, (event.thread, write));
        }
    }

    /// Union with another coverage set.
    pub fn merge(&mut self, other: &PairCoverage) {
        self.pairs.extend(other.pairs.iter().copied());
    }

    /// Number of distinct covered pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// `true` when nothing is covered.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// Whether a specific pair is covered.
    pub fn contains(&self, key: &PairKey) -> bool {
        self.pairs.contains(key)
    }

    /// Iterates the covered pairs.
    pub fn iter(&self) -> impl Iterator<Item = &PairKey> {
        self.pairs.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Executor, RecordMode};
    use crate::expr::Expr;
    use crate::program::ProgramBuilder;
    use crate::schedule::Schedule;
    use crate::stmt::Stmt;

    fn t(i: usize) -> ThreadId {
        ThreadId::from_index(i)
    }

    fn racy() -> crate::program::Program {
        let mut b = ProgramBuilder::new("racy");
        let v = b.var("x", 0);
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::read(v, "t"),
                    Stmt::write(v, Expr::local("t") + Expr::lit(1)),
                ],
            );
        }
        b.build().unwrap()
    }

    fn events_of(p: &crate::program::Program, sched: Vec<ThreadId>) -> Vec<Event> {
        let mut e = Executor::with_record(p, RecordMode::Full);
        e.replay(&Schedule::from(sched), 100);
        e.into_trace().events
    }

    #[test]
    fn serial_run_covers_the_cross_thread_boundary_pair() {
        let p = racy();
        let mut cov = PairCoverage::new();
        cov.observe_events(&events_of(&p, vec![t(0), t(0), t(1), t(1)]));
        // a's write -> b's read is the only cross-thread adjacent pair
        // (a's read->write and b's read->write are same-thread).
        assert_eq!(cov.len(), 1);
        let key = PairKey {
            var: crate::ids::VarId::from_index(0),
            first: t(0),
            first_write: true,
            second: t(1),
            second_write: false,
        };
        assert!(cov.contains(&key));
    }

    #[test]
    fn interleaved_run_covers_more_pairs() {
        let p = racy();
        let mut serial = PairCoverage::new();
        serial.observe_events(&events_of(&p, vec![t(0), t(0), t(1), t(1)]));
        let mut lost = PairCoverage::new();
        lost.observe_events(&events_of(&p, vec![t(0), t(1), t(0), t(1)]));
        // read_a, read_b (no write: not a conflicting pair), write_a,
        // write_b: covers read_b->write_a and write_a->write_b.
        assert_eq!(lost.len(), 2);
        let mut union = serial.clone();
        union.merge(&lost);
        assert_eq!(union.len(), 3);
        assert!(union.len() > serial.len());
    }

    #[test]
    fn read_read_pairs_are_not_conflicting() {
        let mut b = ProgramBuilder::new("rr");
        let v = b.var("x", 0);
        b.thread("a", vec![Stmt::read(v, "t")]);
        b.thread("b", vec![Stmt::read(v, "t")]);
        let p = b.build().unwrap();
        let mut cov = PairCoverage::new();
        cov.observe_events(&events_of(&p, vec![t(0), t(1)]));
        assert!(cov.is_empty());
    }

    #[test]
    fn same_thread_pairs_are_ignored() {
        let mut b = ProgramBuilder::new("solo");
        let v = b.var("x", 0);
        b.thread("a", vec![Stmt::write(v, 1), Stmt::write(v, 2)]);
        let p = b.build().unwrap();
        let mut cov = PairCoverage::new();
        cov.observe_events(&events_of(&p, vec![t(0), t(0)]));
        assert!(cov.is_empty());
    }
}
