//! Per-thread transaction state for the in-simulator STM.
//!
//! The simulator gives [`crate::Stmt::TxBegin`]/[`crate::Stmt::TxCommit`]
//! word-based, lazy-versioning semantics: reads record a read set, writes
//! go to a redo log, and commit validates the read set against the current
//! shared state. On validation failure the transaction rolls back its
//! locals and restarts at the `TxBegin`. This mirrors a TL2-style STM
//! closely enough for the study's TM-applicability experiments while
//! staying deterministic under the model checker.

use crate::fxhash::Locals;
use crate::ids::VarId;

/// In-flight transaction bookkeeping (one per thread at most; nesting is
/// rejected at build time).
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct TxState {
    /// Instruction index of the `TxBegin`, the restart point on abort.
    pub start_pc: usize,
    /// First-observed value of every variable read (and not previously
    /// written) inside the transaction. Repeated reads return the recorded
    /// value so the transaction sees a consistent snapshot.
    pub read_set: Vec<(VarId, i64)>,
    /// Redo log: last write per variable.
    pub write_set: Vec<(VarId, i64)>,
    /// Locals at `TxBegin`, restored on abort.
    pub locals_snapshot: Locals,
    /// Whether an irrevocable I/O effect was performed inside the
    /// transaction — the canonical "TM cannot help" obstacle in the study.
    pub io_performed: bool,
}

impl TxState {
    pub fn new(start_pc: usize, locals: &Locals) -> TxState {
        TxState {
            start_pc,
            read_set: Vec::new(),
            write_set: Vec::new(),
            locals_snapshot: locals.clone(),
            io_performed: false,
        }
    }

    /// The transactional view of `var`: redo log first, then read set,
    /// then the global value (which is then recorded in the read set).
    pub fn read(&mut self, var: VarId, global: i64) -> i64 {
        if let Some(&(_, v)) = self.write_set.iter().rev().find(|(w, _)| *w == var) {
            return v;
        }
        if let Some(&(_, v)) = self.read_set.iter().find(|(r, _)| *r == var) {
            return v;
        }
        self.read_set.push((var, global));
        global
    }

    /// Buffers a write in the redo log.
    pub fn write(&mut self, var: VarId, value: i64) {
        if let Some(entry) = self.write_set.iter_mut().find(|(w, _)| *w == var) {
            entry.1 = value;
        } else {
            self.write_set.push((var, value));
        }
    }

    /// `true` when every read-set entry still matches the global state.
    pub fn validate(&self, globals: &[i64]) -> bool {
        self.read_set
            .iter()
            .all(|(var, seen)| globals[var.index()] == *seen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: usize) -> VarId {
        VarId::from_index(i)
    }

    #[test]
    fn read_prefers_redo_log_then_read_set() {
        let mut tx = TxState::new(0, &Locals::default());
        assert_eq!(tx.read(v(0), 10), 10); // from global, recorded
        assert_eq!(tx.read(v(0), 999), 10); // snapshot, not fresh global
        tx.write(v(0), 42);
        assert_eq!(tx.read(v(0), 999), 42); // redo log wins
    }

    #[test]
    fn write_overwrites_in_place() {
        let mut tx = TxState::new(0, &Locals::default());
        tx.write(v(1), 1);
        tx.write(v(1), 2);
        assert_eq!(tx.write_set, vec![(v(1), 2)]);
    }

    #[test]
    fn validate_checks_read_set_against_globals() {
        let mut tx = TxState::new(0, &Locals::default());
        let globals = vec![5, 7];
        assert_eq!(tx.read(v(1), globals[1]), 7);
        assert!(tx.validate(&globals));
        let changed = vec![5, 8];
        assert!(!tx.validate(&changed));
        // Writes alone never invalidate.
        let mut tx2 = TxState::new(0, &Locals::default());
        tx2.write(v(0), 9);
        assert!(tx2.validate(&changed));
    }
}
