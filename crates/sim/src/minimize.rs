//! Schedule minimization: shrink a failing schedule to its essence.
//!
//! The explorer's first failing schedule is rarely the *simplest* one —
//! it reflects DFS visit order, not the bug's structure. This module
//! applies ddmin-style delta debugging to a witness schedule in two
//! phases, each candidate validated by deterministic replay:
//!
//! 1. **Context switches**: the schedule is split into runs of
//!    consecutive same-thread choices and ddmin removes whole runs.
//!    Removing a run merges its neighbors, so this phase directly
//!    minimizes the number of context switches — the quantity the
//!    study's "most bugs need very few context switches" observation is
//!    about.
//! 2. **Preemption points**: ddmin over the surviving individual
//!    choices, trimming steps a run-granular pass cannot reach.
//!
//! Removal is sound because [`Executor::replay`] degrades gracefully:
//! choices for non-enabled threads are skipped and an exhausted schedule
//! falls back to the first enabled thread, so every candidate subset is
//! still a complete, executable schedule. A candidate is kept only when
//! its outcome equals the original failure bit-for-bit.

use lfm_obs::{Histogram, HistogramSnapshot};

use crate::exec::Executor;
use crate::ids::ThreadId;
use crate::outcome::Outcome;
use crate::program::Program;
use crate::schedule::Schedule;

/// Result of minimizing one schedule.
#[derive(Debug, Clone)]
pub struct MinimizeReport {
    /// The minimized *explicit* schedule: replaying it reproduces the
    /// outcome choice-for-choice (every entry is taken).
    pub schedule: Schedule,
    /// The outcome the minimized schedule reproduces.
    pub outcome: Outcome,
    /// Context switches in the schedule before minimization.
    pub switches_before: usize,
    /// Context switches after minimization.
    pub switches_after: usize,
    /// Number of validation replays ddmin performed.
    pub replays: usize,
    /// Distribution of steps per validation replay.
    pub replay_steps: HistogramSnapshot,
}

/// Classic ddmin over a list of items: finds a (1-minimal under chunk
/// removal) subset for which `test` still returns true. `test` is never
/// called on the full input (assumed true) and is called on the empty
/// candidate first.
fn ddmin<T: Clone>(items: Vec<T>, mut test: impl FnMut(&[T]) -> bool) -> Vec<T> {
    if test(&[]) {
        return Vec::new();
    }
    let mut current = items;
    let mut n = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            // Complement: everything except current[start..end].
            let mut candidate = Vec::with_capacity(current.len() - (end - start));
            candidate.extend_from_slice(&current[..start]);
            candidate.extend_from_slice(&current[end..]);
            if test(&candidate) {
                current = candidate;
                n = (n - 1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= current.len() {
                break;
            }
            n = (2 * n).min(current.len());
        }
    }
    current
}

/// Splits a schedule into runs of consecutive same-thread choices.
fn runs(schedule: &Schedule) -> Vec<(ThreadId, usize)> {
    let mut out: Vec<(ThreadId, usize)> = Vec::new();
    for t in schedule.iter() {
        match out.last_mut() {
            Some((last, count)) if *last == t => *count += 1,
            _ => out.push((t, 1)),
        }
    }
    out
}

fn flatten(runs: &[(ThreadId, usize)]) -> Schedule {
    let mut s = Schedule::new();
    for &(t, count) in runs {
        for _ in 0..count {
            s.push(t);
        }
    }
    s
}

/// Minimizes `schedule` against `program`: the returned schedule
/// reproduces the same outcome with (locally) minimal context switches
/// and length. See the [module docs](self) for the strategy.
pub fn minimize(program: &Program, schedule: &Schedule, max_steps: usize) -> MinimizeReport {
    let steps_hist = Histogram::new();
    let mut replays = 0usize;
    let mut check = |candidate: &Schedule, target: &Outcome| -> Option<Schedule> {
        let mut exec = Executor::new(program);
        // Same checked-replay helper as trace reconstruction and
        // witness verification: candidates with skipped or filled-in
        // choices are fine (that grace is what makes subset removal
        // sound), but they must degrade by the one shared rule.
        let (outcome, _) = exec.replay_checked(candidate, max_steps);
        replays += 1;
        steps_hist.record(exec.steps() as u64);
        (outcome == *target).then(|| exec.schedule_taken().clone())
    };

    // Resolve the target outcome and the explicit baseline schedule.
    let mut exec = Executor::new(program);
    let (target, baseline_deviation) = exec.replay_checked(schedule, max_steps);
    debug_assert_eq!(
        baseline_deviation.out_of_range, 0,
        "minimizing a schedule from a different program"
    );
    let baseline = exec.schedule_taken().clone();
    let switches_before = baseline.context_switches();

    // Phase 1: remove whole runs (context switches).
    let kept_runs = ddmin(runs(&baseline), |cand| {
        check(&flatten(cand), &target).is_some()
    });
    let after_runs = check(&flatten(&kept_runs), &target).expect("ddmin result revalidates");

    // Phase 2: remove individual choices from the explicit schedule.
    let choices: Vec<ThreadId> = after_runs.iter().collect();
    let kept = ddmin(choices, |cand| {
        let s: Schedule = cand.iter().copied().collect();
        check(&s, &target).is_some()
    });
    let minimized = check(&kept.into_iter().collect(), &target).expect("ddmin result revalidates");

    MinimizeReport {
        switches_after: minimized.context_switches(),
        schedule: minimized,
        outcome: target,
        switches_before,
        replays,
        replay_steps: steps_hist.snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use crate::expr::Expr;
    use crate::program::ProgramBuilder;
    use crate::stmt::Stmt;
    use crate::witness::Witness;

    fn racy_counter() -> Program {
        let mut b = ProgramBuilder::new("racy-counter");
        let v = b.var("counter", 0);
        for name in ["t1", "t2"] {
            b.thread(
                name,
                vec![
                    Stmt::read(v, "tmp"),
                    Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
                ],
            );
        }
        b.final_assert(Expr::shared(v).eq(Expr::lit(2)), "both increments kept");
        b.build().unwrap()
    }

    fn abba() -> Program {
        let mut b = ProgramBuilder::new("abba");
        let a = b.mutex();
        let bm = b.mutex();
        b.thread(
            "t1",
            vec![
                Stmt::lock(a),
                Stmt::lock(bm),
                Stmt::unlock(bm),
                Stmt::unlock(a),
            ],
        );
        b.thread(
            "t2",
            vec![
                Stmt::lock(bm),
                Stmt::lock(a),
                Stmt::unlock(a),
                Stmt::unlock(bm),
            ],
        );
        b.build().unwrap()
    }

    fn first_failure(p: &Program) -> (Schedule, Outcome) {
        Explorer::new(p)
            .stop_on_first_failure()
            .run()
            .first_failure
            .expect("program has a failing interleaving")
    }

    #[test]
    fn ddmin_finds_a_single_essential_item() {
        let items: Vec<u32> = (0..32).collect();
        let kept = ddmin(items, |cand| cand.contains(&17));
        assert_eq!(kept, vec![17]);
    }

    #[test]
    fn ddmin_keeps_a_scattered_pair() {
        let items: Vec<u32> = (0..40).collect();
        let kept = ddmin(items, |cand| cand.contains(&3) && cand.contains(&31));
        assert_eq!(kept, vec![3, 31]);
    }

    #[test]
    fn ddmin_handles_trivially_empty_tests() {
        let kept = ddmin(vec![1, 2, 3], |_| true);
        assert!(kept.is_empty());
    }

    #[test]
    fn minimized_race_needs_one_preemption() {
        let p = racy_counter();
        let (sched, outcome) = first_failure(&p);
        let report = minimize(&p, &sched, 5_000);
        assert_eq!(report.outcome, outcome);
        assert!(report.switches_after <= report.switches_before);
        // A lost update needs exactly: t1 reads, t2 runs, t1 finishes —
        // two context switches at most.
        assert!(report.switches_after <= 2, "{}", report.switches_after);
        assert!(report.replays >= 2);
        assert_eq!(report.replay_steps.count as usize, report.replays);
    }

    #[test]
    fn minimized_deadlock_still_deadlocks() {
        let p = abba();
        let (sched, outcome) = first_failure(&p);
        let report = minimize(&p, &sched, 5_000);
        assert_eq!(report.outcome, outcome);
        assert!(matches!(report.outcome, Outcome::Deadlock { .. }));
        // The minimized schedule is explicit: replaying it verbatim
        // reproduces the deadlock.
        let mut exec = Executor::new(&p);
        let replayed = exec.replay(&report.schedule, report.schedule.len());
        assert_eq!(replayed, outcome);
    }

    #[test]
    fn minimized_schedule_feeds_witness_capture() {
        let p = racy_counter();
        let (sched, _) = first_failure(&p);
        let report = minimize(&p, &sched, 5_000);
        let w = Witness::capture(&p, "racy_counter", &report.schedule, 5_000);
        assert_eq!(w.outcome_display, report.outcome.to_string());
        assert_eq!(w.stats.switches, report.switches_after);
        // The paper's band: this bug manifests with 2 threads and 4
        // conflicting accesses.
        assert!(w.stats.threads <= 2);
        assert!(w.stats.conflicting_accesses <= 4);
    }
}
