//! Programs and the [`ProgramBuilder`].
//!
//! A [`Program`] is an immutable, validated, pre-compiled description of a
//! concurrent workload: shared objects with initial values, one script per
//! thread (compiled to a flat instruction array with explicit jumps so the
//! interpreter needs no call stack), and a set of final assertions checked
//! after all threads terminate.

use std::fmt;
use std::sync::Arc;

use crate::error::BuildError;
use crate::expr::Expr;
use crate::ids::{CondId, MutexId, RwId, SemId, ThreadId, VarId};
use crate::stmt::Stmt;

/// A flat instruction, produced by compiling a statement tree.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Instr {
    /// A visible operation (never `If`/`While`/`LocalSet`).
    Op(Stmt),
    /// Set a local register. Purely local.
    LocalSet { name: &'static str, value: Expr },
    /// Unconditional jump. Purely local.
    Jump(usize),
    /// Jump when the condition evaluates to zero. Purely local.
    JumpIfZero(Expr, usize),
}

/// One thread of a program.
#[derive(Debug, Clone)]
pub struct ThreadDef {
    name: &'static str,
    body: Arc<Vec<Stmt>>,
    code: Arc<Vec<Instr>>,
    auto_start: bool,
}

impl ThreadDef {
    /// The thread's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The original (uncompiled) statement list.
    pub fn body(&self) -> &[Stmt] {
        &self.body
    }

    /// `true` when the thread starts automatically; `false` for threads
    /// started by [`Stmt::Spawn`].
    pub fn auto_start(&self) -> bool {
        self.auto_start
    }

    pub(crate) fn code(&self) -> &Arc<Vec<Instr>> {
        &self.code
    }
}

/// A validated, executable program. Create with [`ProgramBuilder`].
#[derive(Debug, Clone)]
pub struct Program {
    name: String,
    threads: Arc<Vec<ThreadDef>>,
    var_names: Arc<Vec<&'static str>>,
    var_init: Arc<Vec<i64>>,
    n_mutexes: usize,
    n_conds: usize,
    n_rws: usize,
    sem_init: Arc<Vec<i64>>,
    final_asserts: Arc<Vec<(Expr, &'static str)>>,
}

impl Program {
    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of threads.
    pub fn n_threads(&self) -> usize {
        self.threads.len()
    }

    /// The thread definitions.
    pub fn threads(&self) -> &[ThreadDef] {
        &self.threads
    }

    /// Looks up a thread by name.
    pub fn thread_by_name(&self, name: &str) -> Option<ThreadId> {
        self.threads
            .iter()
            .position(|t| t.name == name)
            .map(ThreadId::from_index)
    }

    /// Number of shared variables.
    pub fn n_vars(&self) -> usize {
        self.var_names.len()
    }

    /// Name of a shared variable.
    pub fn var_name(&self, var: VarId) -> &'static str {
        self.var_names[var.index()]
    }

    /// Initial values of the shared variables.
    pub fn var_init(&self) -> &[i64] {
        &self.var_init
    }

    /// Number of mutexes.
    pub fn n_mutexes(&self) -> usize {
        self.n_mutexes
    }

    /// Number of condition variables.
    pub fn n_conds(&self) -> usize {
        self.n_conds
    }

    /// Number of reader-writer locks.
    pub fn n_rws(&self) -> usize {
        self.n_rws
    }

    /// Initial counts of the semaphores.
    pub fn sem_init(&self) -> &[i64] {
        &self.sem_init
    }

    /// The final assertions (condition, message).
    pub fn final_asserts(&self) -> &[(Expr, &'static str)] {
        &self.final_asserts
    }

    /// Total number of visible operations across all thread scripts, an
    /// upper bound useful for sizing exploration budgets. Loops make the
    /// dynamic count larger; this is the *static* count.
    pub fn static_visible_ops(&self) -> usize {
        self.threads
            .iter()
            .map(|t| t.code.iter().filter(|i| matches!(i, Instr::Op(_))).count())
            .sum()
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} threads, {} vars, {} mutexes)",
            self.name,
            self.n_threads(),
            self.n_vars(),
            self.n_mutexes
        )
    }
}

/// Builder for [`Program`] (C-BUILDER).
///
/// ```rust
/// use lfm_sim::{ProgramBuilder, Stmt, Expr};
///
/// # fn main() -> Result<(), lfm_sim::BuildError> {
/// let mut b = ProgramBuilder::new("demo");
/// let flag = b.var("flag", 0);
/// let m = b.mutex();
/// b.thread("writer", vec![
///     Stmt::lock(m),
///     Stmt::write(flag, 1),
///     Stmt::unlock(m),
/// ]);
/// let program = b.build()?;
/// assert_eq!(program.n_threads(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    name: String,
    threads: Vec<(ThreadId, &'static str, Vec<Stmt>, bool)>,
    var_names: Vec<&'static str>,
    var_init: Vec<i64>,
    n_mutexes: usize,
    n_conds: usize,
    n_rws: usize,
    sem_init: Vec<i64>,
    final_asserts: Vec<(Expr, &'static str)>,
    next_thread: u32,
}

impl ProgramBuilder {
    /// Starts building a program.
    pub fn new(name: impl Into<String>) -> ProgramBuilder {
        ProgramBuilder {
            name: name.into(),
            ..ProgramBuilder::default()
        }
    }

    /// Declares a shared variable with an initial value.
    pub fn var(&mut self, name: &'static str, init: i64) -> VarId {
        let id = VarId::from_index(self.var_names.len());
        self.var_names.push(name);
        self.var_init.push(init);
        id
    }

    /// Declares a mutex.
    pub fn mutex(&mut self) -> MutexId {
        let id = MutexId::from_index(self.n_mutexes);
        self.n_mutexes += 1;
        id
    }

    /// Declares a condition variable.
    pub fn cond(&mut self) -> CondId {
        let id = CondId::from_index(self.n_conds);
        self.n_conds += 1;
        id
    }

    /// Declares a reader-writer lock.
    pub fn rwlock(&mut self) -> RwId {
        let id = RwId::from_index(self.n_rws);
        self.n_rws += 1;
        id
    }

    /// Declares a counting semaphore with an initial count.
    pub fn semaphore(&mut self, initial: i64) -> SemId {
        let id = SemId::from_index(self.sem_init.len());
        self.sem_init.push(initial);
        id
    }

    /// Adds a thread that starts automatically.
    pub fn thread(&mut self, name: &'static str, body: Vec<Stmt>) -> ThreadId {
        self.add_thread(name, body, true)
    }

    /// Adds a thread started later by [`Stmt::Spawn`]; until spawned it is
    /// not runnable.
    pub fn thread_deferred(&mut self, name: &'static str, body: Vec<Stmt>) -> ThreadId {
        self.add_thread(name, body, false)
    }

    fn add_thread(&mut self, name: &'static str, body: Vec<Stmt>, auto: bool) -> ThreadId {
        let id = ThreadId(self.next_thread);
        self.next_thread += 1;
        self.threads.push((id, name, body, auto));
        id
    }

    /// Adds a final assertion, checked after every thread has finished.
    /// Unlike thread bodies, the condition may read shared variables
    /// directly via [`Expr::shared`].
    pub fn final_assert(&mut self, cond: Expr, msg: &'static str) -> &mut Self {
        self.final_asserts.push((cond, msg));
        self
    }

    /// Validates and compiles the program.
    ///
    /// # Errors
    ///
    /// Returns a [`BuildError`] when the program is structurally invalid:
    /// no threads, `Expr::Shared` inside a thread body, unbalanced or
    /// nested transactions, blocking synchronization inside a transaction,
    /// references to objects not declared on this builder, or `Spawn` of
    /// an auto-start thread.
    pub fn build(self) -> Result<Program, BuildError> {
        if self.threads.is_empty() {
            return Err(BuildError::NoThreads);
        }
        let auto_flags: Vec<bool> = self.threads.iter().map(|(_, _, _, a)| *a).collect();
        for (id, _, body, _) in &self.threads {
            self.validate_body(*id, body, &auto_flags)?;
            check_tx(body, false).map_err(|e| match e {
                TxErr::Unbalanced => BuildError::UnbalancedTransaction { thread: *id },
                TxErr::Sync => BuildError::SyncInsideTransaction { thread: *id },
            })?;
        }

        let threads = self
            .threads
            .into_iter()
            .map(|(_, name, body, auto)| {
                let mut code = Vec::new();
                compile_block(&body, &mut code);
                ThreadDef {
                    name,
                    body: Arc::new(body),
                    code: Arc::new(code),
                    auto_start: auto,
                }
            })
            .collect();

        Ok(Program {
            name: self.name,
            threads: Arc::new(threads),
            var_names: Arc::new(self.var_names),
            var_init: Arc::new(self.var_init),
            n_mutexes: self.n_mutexes,
            n_conds: self.n_conds,
            n_rws: self.n_rws,
            sem_init: Arc::new(self.sem_init),
            final_asserts: Arc::new(self.final_asserts),
        })
    }

    fn validate_body(
        &self,
        thread: ThreadId,
        body: &[Stmt],
        auto_flags: &[bool],
    ) -> Result<(), BuildError> {
        let mut err = None;
        for stmt in body {
            stmt.visit(&mut |s| {
                if err.is_some() {
                    return;
                }
                for e in stmt_exprs(s) {
                    if e.mentions_shared() {
                        err = Some(BuildError::SharedExprInThreadBody { thread });
                        return;
                    }
                }
                if let Some(obj) = self.unknown_object(s) {
                    err = Some(BuildError::UnknownObject {
                        thread,
                        object: obj,
                    });
                    return;
                }
                if let Stmt::Spawn(target) = s {
                    match auto_flags.get(target.index()) {
                        Some(true) => {
                            err = Some(BuildError::SpawnOfAutoStartThread {
                                thread,
                                target: *target,
                            });
                        }
                        Some(false) => {}
                        None => {
                            err = Some(BuildError::UnknownObject {
                                thread,
                                object: target.to_string(),
                            });
                        }
                    }
                }
                if let Stmt::Join(target) = s {
                    if target.index() >= auto_flags.len() {
                        err = Some(BuildError::UnknownObject {
                            thread,
                            object: target.to_string(),
                        });
                    }
                }
            });
            if let Some(e) = err {
                return Err(e);
            }
        }
        Ok(())
    }

    fn unknown_object(&self, s: &Stmt) -> Option<String> {
        let check_var = |v: &VarId| (v.index() >= self.var_names.len()).then(|| v.to_string());
        let check_mutex = |m: &MutexId| (m.index() >= self.n_mutexes).then(|| m.to_string());
        let check_cond = |c: &CondId| (c.index() >= self.n_conds).then(|| c.to_string());
        let check_rw = |r: &RwId| (r.index() >= self.n_rws).then(|| r.to_string());
        let check_sem = |s: &SemId| (s.index() >= self.sem_init.len()).then(|| s.to_string());
        match s {
            Stmt::Read { var, .. }
            | Stmt::Write { var, .. }
            | Stmt::Rmw { var, .. }
            | Stmt::Cas { var, .. } => check_var(var),
            Stmt::Lock(m) | Stmt::Unlock(m) => check_mutex(m),
            Stmt::TryLock { mutex, .. } => check_mutex(mutex),
            Stmt::RwRead(r) | Stmt::RwWrite(r) | Stmt::RwUnlock(r) => check_rw(r),
            Stmt::Wait { cond, mutex } => check_cond(cond).or_else(|| check_mutex(mutex)),
            Stmt::Signal(c) | Stmt::Broadcast(c) => check_cond(c),
            Stmt::SemAcquire(s) | Stmt::SemRelease(s) => check_sem(s),
            _ => None,
        }
    }
}

/// Collects the expressions embedded in one statement (non-recursive; the
/// caller walks nested blocks via [`Stmt::visit`]).
fn stmt_exprs(s: &Stmt) -> Vec<&Expr> {
    match s {
        Stmt::Write { value, .. } => vec![value],
        Stmt::Rmw { operand, .. } => vec![operand],
        Stmt::Cas { expected, new, .. } => vec![expected, new],
        Stmt::LocalSet { value, .. } => vec![value],
        Stmt::If { cond, .. } | Stmt::While { cond, .. } | Stmt::Assert { cond, .. } => {
            vec![cond]
        }
        _ => Vec::new(),
    }
}

enum TxErr {
    Unbalanced,
    Sync,
}

/// Validates transaction bracketing: within every block, `TxBegin` and
/// `TxCommit` must pair up without nesting, and inside a transaction no
/// blocking synchronization may appear (nested control flow is allowed as
/// long as it is transaction-free and synchronization-free).
fn check_tx(block: &[Stmt], in_tx: bool) -> Result<(), TxErr> {
    let mut depth = usize::from(in_tx);
    for s in block {
        match s {
            Stmt::TxBegin => {
                if depth > 0 {
                    return Err(TxErr::Unbalanced);
                }
                depth = 1;
            }
            Stmt::TxCommit => {
                if depth == 0 {
                    return Err(TxErr::Unbalanced);
                }
                depth = 0;
            }
            Stmt::TxRetry if depth == 0 => {
                return Err(TxErr::Unbalanced);
            }
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                check_tx(then_branch, depth > 0)?;
                check_tx(else_branch, depth > 0)?;
            }
            Stmt::While { body, .. } => check_tx(body, depth > 0)?,
            Stmt::Lock(_)
            | Stmt::Unlock(_)
            | Stmt::TryLock { .. }
            | Stmt::RwRead(_)
            | Stmt::RwWrite(_)
            | Stmt::RwUnlock(_)
            | Stmt::Wait { .. }
            | Stmt::Signal(_)
            | Stmt::Broadcast(_)
            | Stmt::SemAcquire(_)
            | Stmt::SemRelease(_)
            | Stmt::Spawn(_)
            | Stmt::Join(_)
                if depth > 0 =>
            {
                return Err(TxErr::Sync);
            }
            _ => {}
        }
    }
    // A nested block may not leave a transaction open across its end, and
    // must not have closed its caller's transaction.
    if depth != usize::from(in_tx) {
        return Err(TxErr::Unbalanced);
    }
    Ok(())
}

/// Compiles a statement tree into flat instructions with explicit jumps.
pub(crate) fn compile_block(stmts: &[Stmt], out: &mut Vec<Instr>) {
    for s in stmts {
        match s {
            Stmt::If {
                cond,
                then_branch,
                else_branch,
            } => {
                let jz = out.len();
                out.push(Instr::JumpIfZero(cond.clone(), usize::MAX));
                compile_block(then_branch, out);
                if else_branch.is_empty() {
                    let end = out.len();
                    patch(out, jz, end);
                } else {
                    let jmp = out.len();
                    out.push(Instr::Jump(usize::MAX));
                    let else_start = out.len();
                    patch(out, jz, else_start);
                    compile_block(else_branch, out);
                    let end = out.len();
                    patch(out, jmp, end);
                }
            }
            Stmt::While { cond, body } => {
                let top = out.len();
                let jz = out.len();
                out.push(Instr::JumpIfZero(cond.clone(), usize::MAX));
                compile_block(body, out);
                out.push(Instr::Jump(top));
                let end = out.len();
                patch(out, jz, end);
            }
            Stmt::LocalSet { name, value } => out.push(Instr::LocalSet {
                name,
                value: value.clone(),
            }),
            other => out.push(Instr::Op(other.clone())),
        }
    }
}

fn patch(out: &mut [Instr], at: usize, target: usize) {
    match &mut out[at] {
        Instr::Jump(t) | Instr::JumpIfZero(_, t) => *t = target,
        _ => unreachable!("patch target is always a jump"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_rejects_empty_program() {
        assert_eq!(
            ProgramBuilder::new("e").build().unwrap_err(),
            BuildError::NoThreads
        );
    }

    #[test]
    fn build_rejects_shared_expr_in_body() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("v", 0);
        b.thread("t", vec![Stmt::write(v, Expr::shared(v))]);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::SharedExprInThreadBody { .. }
        ));
    }

    #[test]
    fn build_rejects_shared_expr_in_nested_body() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("v", 0);
        b.thread(
            "t",
            vec![Stmt::if_then(
                Expr::lit(1),
                vec![Stmt::assert(Expr::shared(v).eq(Expr::lit(0)), "x")],
            )],
        );
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::SharedExprInThreadBody { .. }
        ));
    }

    #[test]
    fn build_allows_shared_in_final_assert() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("v", 0);
        b.thread("t", vec![Stmt::write(v, 1)]);
        b.final_assert(Expr::shared(v).eq(Expr::lit(1)), "v set");
        assert!(b.build().is_ok());
    }

    #[test]
    fn build_rejects_unknown_objects() {
        let mut b = ProgramBuilder::new("p");
        b.thread("t", vec![Stmt::read(VarId::from_index(9), "x")]);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::UnknownObject { .. }
        ));

        let mut b = ProgramBuilder::new("p");
        b.thread("t", vec![Stmt::lock(MutexId::from_index(0))]);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::UnknownObject { .. }
        ));
    }

    #[test]
    fn build_rejects_spawn_of_auto_thread() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("v", 0);
        let t1 = b.thread("a", vec![Stmt::write(v, 1)]);
        b.thread("b", vec![Stmt::Spawn(t1)]);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::SpawnOfAutoStartThread { .. }
        ));
    }

    #[test]
    fn build_accepts_spawn_of_deferred_thread() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("v", 0);
        let child = b.thread_deferred("child", vec![Stmt::write(v, 1)]);
        b.thread("parent", vec![Stmt::Spawn(child), Stmt::Join(child)]);
        let p = b.build().unwrap();
        assert!(!p.threads()[child.index()].auto_start());
    }

    #[test]
    fn tx_validation() {
        // Unbalanced: commit without begin.
        let mut b = ProgramBuilder::new("p");
        b.thread("t", vec![Stmt::TxCommit]);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::UnbalancedTransaction { .. }
        ));

        // Unbalanced: begin never committed.
        let mut b = ProgramBuilder::new("p");
        b.thread("t", vec![Stmt::TxBegin]);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::UnbalancedTransaction { .. }
        ));

        // Nested.
        let mut b = ProgramBuilder::new("p");
        b.thread(
            "t",
            vec![Stmt::TxBegin, Stmt::TxBegin, Stmt::TxCommit, Stmt::TxCommit],
        );
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::UnbalancedTransaction { .. }
        ));

        // Lock inside tx.
        let mut b = ProgramBuilder::new("p");
        let m = b.mutex();
        b.thread("t", vec![Stmt::TxBegin, Stmt::lock(m), Stmt::TxCommit]);
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::SyncInsideTransaction { .. }
        ));

        // Lock inside an If inside tx.
        let mut b = ProgramBuilder::new("p");
        let m = b.mutex();
        b.thread(
            "t",
            vec![
                Stmt::TxBegin,
                Stmt::if_then(Expr::lit(1), vec![Stmt::lock(m)]),
                Stmt::TxCommit,
            ],
        );
        assert!(matches!(
            b.build().unwrap_err(),
            BuildError::SyncInsideTransaction { .. }
        ));

        // A whole tx inside an If is fine.
        let mut b = ProgramBuilder::new("p");
        let v = b.var("v", 0);
        b.thread(
            "t",
            vec![Stmt::if_then(
                Expr::lit(1),
                vec![Stmt::TxBegin, Stmt::write(v, 1), Stmt::TxCommit],
            )],
        );
        assert!(b.build().is_ok());
    }

    #[test]
    fn compile_if_else_layout() {
        let v = VarId::from_index(0);
        let stmts = vec![Stmt::if_else(
            Expr::local("c"),
            vec![Stmt::write(v, 1)],
            vec![Stmt::write(v, 2)],
        )];
        let mut code = Vec::new();
        compile_block(&stmts, &mut code);
        // JumpIfZero -> else; write 1; Jump -> end; write 2
        assert_eq!(code.len(), 4);
        assert!(matches!(code[0], Instr::JumpIfZero(_, 3)));
        assert!(matches!(code[2], Instr::Jump(4)));
    }

    #[test]
    fn compile_while_layout() {
        let v = VarId::from_index(0);
        let stmts = vec![Stmt::while_loop(Expr::local("c"), vec![Stmt::write(v, 1)])];
        let mut code = Vec::new();
        compile_block(&stmts, &mut code);
        // 0: JumpIfZero -> 3; 1: write; 2: Jump -> 0
        assert_eq!(code.len(), 3);
        assert!(matches!(code[0], Instr::JumpIfZero(_, 3)));
        assert!(matches!(code[2], Instr::Jump(0)));
    }

    #[test]
    fn static_visible_ops_counts_ops_only() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("v", 0);
        b.thread(
            "t",
            vec![
                Stmt::local("i", 0),
                Stmt::while_loop(
                    Expr::local("i").lt(Expr::lit(3)),
                    vec![
                        Stmt::read(v, "x"),
                        Stmt::local("i", Expr::local("i") + Expr::lit(1)),
                    ],
                ),
            ],
        );
        let p = b.build().unwrap();
        assert_eq!(p.static_visible_ops(), 1);
    }

    #[test]
    fn thread_lookup_by_name() {
        let mut b = ProgramBuilder::new("p");
        let v = b.var("v", 0);
        b.thread("alpha", vec![Stmt::write(v, 1)]);
        b.thread("beta", vec![Stmt::write(v, 2)]);
        let p = b.build().unwrap();
        assert_eq!(p.thread_by_name("beta"), Some(ThreadId::from_index(1)));
        assert_eq!(p.thread_by_name("gamma"), None);
        assert_eq!(p.var_name(v), "v");
        assert_eq!(p.var_init(), &[0]);
    }
}
