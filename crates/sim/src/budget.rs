//! Budgeted exploration with graceful degradation.
//!
//! A production checking pipeline cannot run unbounded: one
//! state-exploding kernel must not stall the whole study. A
//! [`BudgetedExplorer`] holds a [`Budget`] (wall-clock deadline plus
//! schedule/step caps) and walks a degradation ladder — exhaustive
//! search, then the sleep-set reduction, then CHESS-style preemption
//! bounding, and finally PCT sampling — accepting the first level that
//! finishes inside its slice of the budget. Every [`BudgetReport`]
//! states the [`DegradeLevel`] used and a [`Confidence`] grade, so a
//! consumer can tell "proved correct" apart from "sampled and nothing
//! fell out".

use std::fmt;
use std::sync::Arc;
use std::time::Duration;

use lfm_obs::{Event, NoopSink, Sink, Stopwatch, Value};

use crate::explore::{ExploreLimits, ExploreReport, Explorer, OutcomeCounts, Truncation};
use crate::explore_par::ParExplorer;
use crate::fault::FaultPlan;
use crate::outcome::Outcome;
use crate::program::Program;
use crate::random::PctScheduler;
use crate::schedule::Schedule;

/// PCT trials per batch; the deadline is re-checked between batches.
const PCT_BATCH: u64 = 32;
/// PCT trial cap when no deadline is set.
const PCT_DEFAULT_TRIALS: u64 = 4_096;
/// Preemption bound used by the [`DegradeLevel::PreemptionBounded`] rung
/// (the study's depth findings say two preemptions expose most bugs).
const PREEMPTION_BOUND: u32 = 2;
/// PCT priority-change depth.
const PCT_DEPTH: u32 = 3;

/// Resource budget for a [`BudgetedExplorer`] run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Budget {
    /// Wall-clock budget for the whole ladder. `None` lets the first
    /// ladder level run to its schedule cap.
    pub deadline: Option<Duration>,
    /// Per-execution visible-step cap (see [`ExploreLimits::max_steps`]).
    pub max_steps: usize,
    /// Schedule cap per ladder level (see
    /// [`ExploreLimits::max_schedules`]).
    pub max_schedules: u64,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            deadline: None,
            max_steps: 5_000,
            max_schedules: 250_000,
        }
    }
}

impl Budget {
    /// A default budget with a wall-clock deadline.
    pub fn with_deadline(deadline: Duration) -> Budget {
        Budget {
            deadline: Some(deadline),
            ..Budget::default()
        }
    }
}

/// The ladder rung a budgeted exploration ended on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DegradeLevel {
    /// Full DFS over all interleavings (with state dedup).
    Exhaustive,
    /// DFS with the sleep-set partial-order reduction (still complete
    /// for outcome kinds; skipped when a fault plan is active).
    SleepSet,
    /// DFS restricted to few-preemption schedules (CHESS).
    PreemptionBounded,
    /// Probabilistic sampling (PCT) — no coverage guarantee.
    PctSampling,
}

impl fmt::Display for DegradeLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DegradeLevel::Exhaustive => "exhaustive",
            DegradeLevel::SleepSet => "sleep-set",
            DegradeLevel::PreemptionBounded => "preemption-bounded",
            DegradeLevel::PctSampling => "pct-sampling",
        })
    }
}

/// How much the accepted result actually covers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Confidence {
    /// The full interleaving space (up to the step cap) was explored.
    Proved,
    /// Complete within a preemption bound — strong but not exhaustive.
    Bounded,
    /// Probabilistic sampling only.
    Sampled,
    /// The accepted level was itself cut short; results are a lower
    /// bound on the behaviours that exist.
    Partial,
}

impl fmt::Display for Confidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Confidence::Proved => "proved",
            Confidence::Bounded => "bounded",
            Confidence::Sampled => "sampled",
            Confidence::Partial => "partial",
        })
    }
}

/// Result of [`BudgetedExplorer::run`].
#[derive(Debug, Clone)]
pub struct BudgetReport {
    /// Outcome histogram of the accepted level.
    pub counts: OutcomeCounts,
    /// Schedules run by the accepted level.
    pub schedules_run: u64,
    /// Witness of the first failure found at the accepted level.
    pub first_failure: Option<(Schedule, Outcome)>,
    /// The ladder rung whose results these are.
    pub level: DegradeLevel,
    /// Coverage grade of those results.
    pub confidence: Confidence,
    /// Why the accepted level stopped short, if it did.
    pub truncation: Option<Truncation>,
    /// Every rung attempted, in order (the last one was accepted).
    pub levels_tried: Vec<DegradeLevel>,
    /// Wall-clock time of the whole ladder.
    pub wall: Duration,
}

impl BudgetReport {
    /// `true` when at least one interleaving manifested a bug.
    pub fn found_failure(&self) -> bool {
        self.first_failure.is_some()
    }

    /// `true` when the program is proved correct within the step cap.
    pub fn proved_ok(&self) -> bool {
        self.confidence == Confidence::Proved
            && self.counts.failures() == 0
            && self.counts.step_limit == 0
    }
}

/// [`Explorer`] with a wall-clock budget and a degradation ladder.
#[derive(Debug)]
pub struct BudgetedExplorer<'p> {
    program: &'p Program,
    budget: Budget,
    fault: Option<FaultPlan>,
    sink: Arc<dyn Sink>,
    jobs: usize,
    dpor: bool,
}

impl<'p> BudgetedExplorer<'p> {
    /// Creates a budgeted explorer with the default (unbounded) budget
    /// and a single worker thread.
    pub fn new(program: &'p Program) -> BudgetedExplorer<'p> {
        BudgetedExplorer {
            program,
            budget: Budget::default(),
            fault: None,
            sink: Arc::new(NoopSink),
            jobs: 1,
            dpor: false,
        }
    }

    /// Runs the DFS rungs of the ladder on `jobs` worker threads via
    /// [`ParExplorer`] (values ≤ 1 stay serial). Reports are identical
    /// either way — parallel exploration commits results in the serial
    /// order — so only wall time changes. The PCT rung stays serial:
    /// sampling is already embarrassingly parallel across *kernels*.
    pub fn jobs(mut self, jobs: usize) -> BudgetedExplorer<'p> {
        self.jobs = jobs.max(1);
        self
    }

    /// Replaces the budget.
    pub fn budget(mut self, budget: Budget) -> BudgetedExplorer<'p> {
        self.budget = budget;
        self
    }

    /// Requests source-set DPOR on the DFS rungs. The exhaustive and
    /// sleep-set rungs run it (dedup yields to the race log, sleep sets
    /// compose on the second rung); the preemption-bounded rung and any
    /// chaos run silently fall back to the classic search, exactly as
    /// [`ExploreLimits::dpor`] resolves everywhere else.
    pub fn dpor(mut self, on: bool) -> BudgetedExplorer<'p> {
        self.dpor = on;
        self
    }

    /// Injects a deterministic [`FaultPlan`] into every level. The
    /// sleep-set rung is skipped (see [`Explorer::chaos`]).
    pub fn chaos(mut self, plan: FaultPlan) -> BudgetedExplorer<'p> {
        self.fault = Some(plan);
        self
    }

    /// Streams `budget` scope events (start, degrade, report) to `sink`.
    pub fn with_sink(mut self, sink: Arc<dyn Sink>) -> BudgetedExplorer<'p> {
        self.sink = sink;
        self
    }

    /// Runs the ladder and returns the first acceptable result.
    ///
    /// A DFS level is accepted when it finds a failure (definitive
    /// regardless of coverage) or finishes without hitting the wall
    /// deadline or the schedule cap; otherwise the ladder degrades. PCT,
    /// the last rung, always produces a result.
    pub fn run(&self) -> BudgetReport {
        let stopwatch = Stopwatch::start();
        self.emit_start();
        let mut levels_tried = Vec::new();

        // Deadline slices per DFS rung; PCT gets whatever remains.
        let ladder = [
            (DegradeLevel::Exhaustive, 0.40),
            (DegradeLevel::SleepSet, 0.25),
            (DegradeLevel::PreemptionBounded, 0.20),
        ];
        for (level, fraction) in ladder {
            if level == DegradeLevel::SleepSet && self.fault.is_some() {
                continue;
            }
            let slice = self.budget.deadline.map(|total| {
                total
                    .mul_f64(fraction)
                    .min(total.saturating_sub(stopwatch.elapsed()))
            });
            if slice.is_some_and(|s| s.is_zero()) {
                continue;
            }
            let limits = ExploreLimits {
                max_steps: self.budget.max_steps,
                max_schedules: self.budget.max_schedules,
                max_preemptions: (level == DegradeLevel::PreemptionBounded)
                    .then_some(PREEMPTION_BOUND),
                stop_on_first_failure: false,
                dedup_states: true,
                sleep_sets: level == DegradeLevel::SleepSet,
                dpor: self.dpor,
                fuse: true,
                deadline: slice,
            };
            let report: ExploreReport = if self.jobs > 1 {
                let mut explorer = ParExplorer::new(self.program)
                    .limits(limits)
                    .jobs(self.jobs);
                if let Some(plan) = self.fault {
                    explorer = explorer.chaos(plan);
                }
                explorer.run()
            } else {
                let mut explorer = Explorer::new(self.program).limits(limits);
                if let Some(plan) = self.fault {
                    explorer = explorer.chaos(plan);
                }
                explorer.run()
            };
            levels_tried.push(level);
            let out_of_budget = matches!(
                report.truncation,
                Some(Truncation::WallDeadline) | Some(Truncation::ScheduleBudget)
            );
            if report.found_failure() || !out_of_budget {
                let confidence = match level {
                    DegradeLevel::Exhaustive | DegradeLevel::SleepSet => {
                        if report.truncation.is_none() {
                            Confidence::Proved
                        } else {
                            Confidence::Partial
                        }
                    }
                    DegradeLevel::PreemptionBounded => {
                        if matches!(report.truncation, None | Some(Truncation::PreemptionBound)) {
                            Confidence::Bounded
                        } else {
                            Confidence::Partial
                        }
                    }
                    DegradeLevel::PctSampling => Confidence::Sampled,
                };
                return self.accept(BudgetReport {
                    counts: report.counts,
                    schedules_run: report.schedules_run,
                    first_failure: report.first_failure,
                    level,
                    confidence,
                    truncation: report.truncation,
                    levels_tried,
                    wall: stopwatch.elapsed(),
                });
            }
            self.emit_degrade(level, report.truncation);
        }

        // Last rung: PCT sampling in small batches, re-checking the
        // deadline between batches. At least one batch always runs.
        levels_tried.push(DegradeLevel::PctSampling);
        let seed_base = self.fault.map_or(0x5EED, |p| p.seed);
        let mut counts = OutcomeCounts::default();
        let mut first_failure = None;
        let mut trials = 0u64;
        let mut batch = 0u64;
        let trial_cap = match self.budget.deadline {
            Some(_) => self.budget.max_schedules,
            None => PCT_DEFAULT_TRIALS.min(self.budget.max_schedules),
        };
        loop {
            let batch_trials = PCT_BATCH.min(trial_cap.saturating_sub(trials)).max(1);
            let seed = seed_base ^ batch.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut scheduler =
                PctScheduler::new(self.program, seed, PCT_DEPTH).max_steps(self.budget.max_steps);
            if let Some(plan) = self.fault {
                scheduler = scheduler.with_faults(plan);
            }
            let r = scheduler.run_trials(batch_trials);
            counts.ok += r.counts.ok;
            counts.assert_failed += r.counts.assert_failed;
            counts.deadlock += r.counts.deadlock;
            counts.step_limit += r.counts.step_limit;
            counts.tx_retry_limit += r.counts.tx_retry_limit;
            counts.misuse += r.counts.misuse;
            trials += r.trials;
            if first_failure.is_none() {
                first_failure = r.first_failure;
            }
            batch += 1;
            if trials >= trial_cap {
                break;
            }
            if let Some(deadline) = self.budget.deadline {
                if stopwatch.elapsed() >= deadline {
                    break;
                }
            }
        }
        let truncation = match self.budget.deadline {
            Some(deadline) if stopwatch.elapsed() >= deadline => Some(Truncation::WallDeadline),
            _ => Some(Truncation::ScheduleBudget),
        };
        self.accept(BudgetReport {
            counts,
            schedules_run: trials,
            first_failure,
            level: DegradeLevel::PctSampling,
            confidence: Confidence::Sampled,
            truncation,
            levels_tried,
            wall: stopwatch.elapsed(),
        })
    }

    fn emit_start(&self) {
        if !self.sink.enabled() {
            return;
        }
        let mut fields = vec![
            ("program", Value::Str(self.program.name())),
            ("jobs", Value::U64(self.jobs as u64)),
        ];
        if let Some(d) = self.budget.deadline {
            fields.push(("deadline_ms", Value::U64(d.as_millis() as u64)));
        }
        if let Some(plan) = &self.fault {
            fields.push(("chaos_seed", Value::U64(plan.seed)));
        }
        self.sink.emit(&Event {
            scope: "budget",
            name: "start",
            fields: &fields,
        });
    }

    fn emit_degrade(&self, from: DegradeLevel, truncation: Option<Truncation>) {
        if !self.sink.enabled() {
            return;
        }
        let from = from.to_string();
        let why = truncation
            .map(|t| t.to_string())
            .unwrap_or_else(|| "none".to_owned());
        self.sink.emit(&Event {
            scope: "budget",
            name: "degrade",
            fields: &[
                ("program", Value::Str(self.program.name())),
                ("from_level", Value::Str(&from)),
                ("truncation", Value::Str(&why)),
            ],
        });
    }

    fn accept(&self, report: BudgetReport) -> BudgetReport {
        if self.sink.enabled() {
            let level = report.level.to_string();
            let confidence = report.confidence.to_string();
            let truncation = report
                .truncation
                .map(|t| t.to_string())
                .unwrap_or_else(|| "none".to_owned());
            self.sink.emit(&Event {
                scope: "budget",
                name: "report",
                fields: &[
                    ("program", Value::Str(self.program.name())),
                    ("level", Value::Str(&level)),
                    ("confidence", Value::Str(&confidence)),
                    ("truncation", Value::Str(&truncation)),
                    ("schedules", Value::U64(report.schedules_run)),
                    ("failures", Value::U64(report.counts.failures())),
                    ("levels_tried", Value::U64(report.levels_tried.len() as u64)),
                    ("wall_us", Value::U64(report.wall.as_micros() as u64)),
                ],
            });
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::program::ProgramBuilder;
    use crate::stmt::Stmt;

    fn racy_counter() -> Program {
        let mut b = ProgramBuilder::new("racy");
        let v = b.var("counter", 0);
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::read(v, "tmp"),
                    Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
                ],
            );
        }
        b.final_assert(Expr::shared(v).eq(Expr::lit(2)), "no lost update");
        b.build().unwrap()
    }

    fn locked_counter() -> Program {
        let mut b = ProgramBuilder::new("locked");
        let v = b.var("counter", 0);
        let m = b.mutex();
        for name in ["a", "b"] {
            b.thread(
                name,
                vec![
                    Stmt::lock(m),
                    Stmt::read(v, "tmp"),
                    Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
                    Stmt::unlock(m),
                ],
            );
        }
        b.final_assert(Expr::shared(v).eq(Expr::lit(2)), "no lost update");
        b.build().unwrap()
    }

    #[test]
    fn unbounded_budget_stays_exhaustive() {
        let p = racy_counter();
        let report = BudgetedExplorer::new(&p).run();
        assert_eq!(report.level, DegradeLevel::Exhaustive);
        // Full coverage even though failures were found: the lost-update
        // interleavings are all of them.
        assert_eq!(report.confidence, Confidence::Proved);
        assert!(report.found_failure());
        assert!(!report.proved_ok());
    }

    #[test]
    fn correct_program_is_proved_at_level_one() {
        let p = locked_counter();
        let report = BudgetedExplorer::new(&p).run();
        assert_eq!(report.level, DegradeLevel::Exhaustive);
        assert_eq!(report.confidence, Confidence::Proved);
        assert!(report.proved_ok());
        assert_eq!(report.levels_tried, vec![DegradeLevel::Exhaustive]);
    }

    #[test]
    fn zero_deadline_falls_through_to_pct() {
        let p = locked_counter();
        let report = BudgetedExplorer::new(&p)
            .budget(Budget::with_deadline(Duration::ZERO))
            .run();
        assert_eq!(report.level, DegradeLevel::PctSampling);
        assert_eq!(report.confidence, Confidence::Sampled);
        assert!(report.schedules_run > 0, "at least one PCT batch runs");
        assert_eq!(report.levels_tried, vec![DegradeLevel::PctSampling]);
        assert_eq!(report.truncation, Some(Truncation::WallDeadline));
    }

    #[test]
    fn schedule_cap_degrades_down_the_ladder() {
        let p = locked_counter();
        let tiny = Budget {
            max_schedules: 2,
            ..Budget::default()
        };
        let report = BudgetedExplorer::new(&p).budget(tiny).run();
        // Every DFS rung truncates at 2 schedules; PCT takes over.
        assert_eq!(report.level, DegradeLevel::PctSampling);
        assert_eq!(
            report.levels_tried,
            vec![
                DegradeLevel::Exhaustive,
                DegradeLevel::SleepSet,
                DegradeLevel::PreemptionBounded,
                DegradeLevel::PctSampling,
            ]
        );
        assert!(report.schedules_run <= 2);
    }

    #[test]
    fn chaos_skips_the_sleep_set_rung() {
        let p = locked_counter();
        let tiny = Budget {
            max_schedules: 2,
            ..Budget::default()
        };
        let report = BudgetedExplorer::new(&p)
            .budget(tiny)
            .chaos(FaultPlan::new(42))
            .run();
        assert!(!report.levels_tried.contains(&DegradeLevel::SleepSet));
    }

    #[test]
    fn failure_found_is_accepted_immediately() {
        let p = racy_counter();
        let report = BudgetedExplorer::new(&p).run();
        assert!(report.found_failure());
        assert_eq!(report.level, DegradeLevel::Exhaustive);
    }

    /// A racy program whose interleaving space is far too large to
    /// exhaust within a few milliseconds — forces a mid-run deadline.
    fn wide_racy_counter() -> Program {
        let mut b = ProgramBuilder::new("wide-racy");
        let v = b.var("counter", 0);
        for name in ["a", "b", "c"] {
            let mut body = Vec::new();
            for _ in 0..6 {
                body.push(Stmt::read(v, "tmp"));
                body.push(Stmt::write(v, Expr::local("tmp") + Expr::lit(1)));
            }
            b.thread(name, body);
        }
        b.final_assert(Expr::shared(v).eq(Expr::lit(18)), "no lost update");
        b.build().unwrap()
    }

    #[test]
    fn parallel_ladder_reports_match_serial() {
        for p in [racy_counter(), locked_counter()] {
            let serial = BudgetedExplorer::new(&p).run();
            for jobs in [2, 4] {
                let par = BudgetedExplorer::new(&p).jobs(jobs).run();
                assert_eq!(serial.counts, par.counts, "{}: counts", p.name());
                assert_eq!(
                    serial.schedules_run,
                    par.schedules_run,
                    "{}: schedules",
                    p.name()
                );
                assert_eq!(
                    serial.first_failure,
                    par.first_failure,
                    "{}: witness",
                    p.name()
                );
                assert_eq!(serial.level, par.level, "{}: level", p.name());
                assert_eq!(
                    serial.confidence,
                    par.confidence,
                    "{}: confidence",
                    p.name()
                );
                assert_eq!(
                    serial.truncation,
                    par.truncation,
                    "{}: truncation",
                    p.name()
                );
                assert_eq!(
                    serial.levels_tried,
                    par.levels_tried,
                    "{}: levels tried",
                    p.name()
                );
            }
        }
    }

    #[test]
    fn wall_deadline_mid_parallel_run_reports_wall_deadline() {
        let p = wide_racy_counter();
        let report = BudgetedExplorer::new(&p)
            .budget(Budget::with_deadline(Duration::from_millis(10)))
            .jobs(4)
            .run();
        // The racy space cannot be exhausted in 10ms, but failures fall
        // out early, so the exhaustive rung is accepted with its
        // deadline truncation and a degraded confidence grade.
        assert_eq!(report.level, DegradeLevel::Exhaustive);
        assert_eq!(report.confidence, Confidence::Partial);
        assert_eq!(report.truncation, Some(Truncation::WallDeadline));
        assert!(report.found_failure());
    }

    #[test]
    fn stopped_workers_never_drop_partial_counts() {
        // Whatever the stop flag interrupts, every schedule committed
        // into the report is fully classified: the histogram total
        // always equals the schedule count, with no partially-merged
        // worker state.
        let p = wide_racy_counter();
        for jobs in [1, 2, 4] {
            let report = BudgetedExplorer::new(&p)
                .budget(Budget::with_deadline(Duration::from_millis(8)))
                .jobs(jobs)
                .run();
            assert_eq!(
                report.counts.total(),
                report.schedules_run,
                "jobs={jobs}: counts dropped on stop"
            );
            assert!(report.schedules_run > 0, "jobs={jobs}: no progress at all");
        }
    }

    #[test]
    fn zero_deadline_with_jobs_still_lands_on_pct() {
        let p = locked_counter();
        let report = BudgetedExplorer::new(&p)
            .budget(Budget::with_deadline(Duration::ZERO))
            .jobs(4)
            .run();
        assert_eq!(report.level, DegradeLevel::PctSampling);
        assert_eq!(report.truncation, Some(Truncation::WallDeadline));
        assert!(report.schedules_run > 0);
    }

    #[test]
    fn dpor_ladder_agrees_with_classic_on_verdicts() {
        for p in [racy_counter(), locked_counter()] {
            let classic = BudgetedExplorer::new(&p).run();
            let dpor = BudgetedExplorer::new(&p).dpor(true).run();
            assert_eq!(classic.level, dpor.level, "{}: level", p.name());
            assert_eq!(
                classic.confidence,
                dpor.confidence,
                "{}: confidence",
                p.name()
            );
            assert_eq!(
                classic.found_failure(),
                dpor.found_failure(),
                "{}: verdict",
                p.name()
            );
            // No schedule-count comparison: the classic ladder runs
            // with state dedup, which DPOR soundly disables, so either
            // side can be smaller depending on the program's shape.
        }
    }

    #[test]
    fn dpor_ladder_parallel_matches_serial() {
        let p = racy_counter();
        let serial = BudgetedExplorer::new(&p).dpor(true).run();
        for jobs in [2, 4] {
            let par = BudgetedExplorer::new(&p).dpor(true).jobs(jobs).run();
            assert_eq!(serial.counts, par.counts, "jobs={jobs}: counts");
            assert_eq!(
                serial.schedules_run, par.schedules_run,
                "jobs={jobs}: schedules"
            );
            assert_eq!(
                serial.first_failure, par.first_failure,
                "jobs={jobs}: witness"
            );
        }
    }

    #[test]
    fn levels_and_confidence_render() {
        assert_eq!(DegradeLevel::Exhaustive.to_string(), "exhaustive");
        assert_eq!(DegradeLevel::SleepSet.to_string(), "sleep-set");
        assert_eq!(
            DegradeLevel::PreemptionBounded.to_string(),
            "preemption-bounded"
        );
        assert_eq!(DegradeLevel::PctSampling.to_string(), "pct-sampling");
        assert_eq!(Confidence::Proved.to_string(), "proved");
        assert_eq!(Confidence::Bounded.to_string(), "bounded");
        assert_eq!(Confidence::Sampled.to_string(), "sampled");
        assert_eq!(Confidence::Partial.to_string(), "partial");
    }
}
