//! Identifier newtypes for threads and shared objects.
//!
//! All simulator objects are referred to by small dense indices wrapped in
//! newtypes so that a [`VarId`] can never be confused with a
//! [`MutexId`] at an API boundary (C-NEWTYPE).

use std::fmt;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(pub(crate) u32);

        impl $name {
            /// Returns the dense index backing this identifier.
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Builds an identifier from a dense index.
            ///
            /// Mostly useful in tests and detector code that re-materializes
            /// identifiers out of recorded traces.
            pub fn from_index(index: usize) -> Self {
                $name(index as u32)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, "{}{}", $prefix, self.0)
            }
        }
    };
}

id_newtype!(
    /// Identifies a thread within a [`crate::Program`].
    ThreadId,
    "t"
);
id_newtype!(
    /// Identifies a shared variable.
    VarId,
    "v"
);
id_newtype!(
    /// Identifies a mutex.
    MutexId,
    "m"
);
id_newtype!(
    /// Identifies a condition variable.
    CondId,
    "c"
);
id_newtype!(
    /// Identifies a reader-writer lock.
    RwId,
    "rw"
);
id_newtype!(
    /// Identifies a counting semaphore.
    SemId,
    "s"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_uses_prefix() {
        assert_eq!(ThreadId(3).to_string(), "t3");
        assert_eq!(VarId(0).to_string(), "v0");
        assert_eq!(MutexId(7).to_string(), "m7");
        assert_eq!(CondId(1).to_string(), "c1");
        assert_eq!(RwId(2).to_string(), "rw2");
        assert_eq!(SemId(9).to_string(), "s9");
    }

    #[test]
    fn index_round_trips() {
        let v = VarId::from_index(42);
        assert_eq!(v.index(), 42);
        assert_eq!(v, VarId(42));
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(ThreadId(1) < ThreadId(2));
        assert!(VarId(0) < VarId(10));
    }
}
