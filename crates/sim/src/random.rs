//! Probabilistic schedulers: seeded random walks and PCT.
//!
//! The study's manifestation findings motivate *testing implications*:
//! naive stress testing (random scheduling) rarely hits the narrow buggy
//! windows, while bounded systematic or priority-based (PCT) scheduling
//! finds them quickly. These schedulers make that comparison measurable.

use std::sync::Arc;
use std::time::Duration;

use lfm_obs::{Event, NoopSink, Sink, Stopwatch, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::exec::{Executor, RecordMode};
use crate::explore::OutcomeCounts;
use crate::fault::FaultPlan;
use crate::ids::ThreadId;
use crate::outcome::Outcome;
use crate::program::Program;
use crate::schedule::Schedule;
use crate::trace::Trace;

/// Report of a batch of randomized executions.
#[derive(Debug, Clone)]
pub struct RandomWalkReport {
    /// Outcome histogram over the trials.
    pub counts: OutcomeCounts,
    /// Number of trials run.
    pub trials: u64,
    /// Witness of the first failure, if any.
    pub first_failure: Option<(Schedule, Outcome)>,
    /// Wall-clock time of the batch.
    pub wall: Duration,
}

impl RandomWalkReport {
    /// Fraction of trials that manifested a bug.
    pub fn failure_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.counts.failures() as f64 / self.trials as f64
        }
    }
}

fn run_trials(
    program: &Program,
    trials: u64,
    max_steps: usize,
    fault: Option<FaultPlan>,
    mut pick: impl FnMut(u64, &Executor, &[ThreadId]) -> ThreadId,
) -> RandomWalkReport {
    let stopwatch = Stopwatch::start();
    let mut counts = OutcomeCounts::default();
    let mut first_failure = None;
    for trial in 0..trials {
        let mut exec = Executor::new(program);
        if let Some(plan) = fault {
            exec.set_fault_plan(plan);
        }
        let outcome = loop {
            if let Some(o) = exec.outcome().cloned() {
                break o;
            }
            if exec.steps() >= max_steps {
                break Outcome::StepLimit;
            }
            let enabled = exec.enabled();
            let choice = pick(trial, &exec, &enabled);
            exec.step(choice).expect("picker chose an enabled thread");
        };
        match &outcome {
            Outcome::Ok => counts.ok += 1,
            Outcome::AssertFailed { .. } => counts.assert_failed += 1,
            Outcome::Deadlock { .. } => counts.deadlock += 1,
            Outcome::StepLimit => counts.step_limit += 1,
            Outcome::TxRetryLimit { .. } => counts.tx_retry_limit += 1,
            Outcome::Misuse { .. } => counts.misuse += 1,
        }
        if outcome.is_failure() && first_failure.is_none() {
            first_failure = Some((exec.schedule_taken().clone(), outcome));
        }
    }
    RandomWalkReport {
        counts,
        trials,
        first_failure,
        wall: stopwatch.elapsed(),
    }
}

/// Emits the walker/PCT batch summary when the sink is listening.
fn emit_batch(sink: &dyn Sink, name: &str, program: &Program, report: &RandomWalkReport) {
    if !sink.enabled() {
        return;
    }
    sink.emit(&Event {
        scope: "randomwalk",
        name,
        fields: &[
            ("program", Value::Str(program.name())),
            ("trials", Value::U64(report.trials)),
            ("failures", Value::U64(report.counts.failures())),
            ("failure_rate", Value::F64(report.failure_rate())),
            ("wall_us", Value::U64(report.wall.as_micros() as u64)),
        ],
    });
}

/// Uniform random scheduling (naive stress testing).
#[derive(Debug, Clone)]
pub struct RandomWalker<'p> {
    program: &'p Program,
    seed: u64,
    max_steps: usize,
    sink: Arc<dyn Sink>,
    fault: Option<FaultPlan>,
}

impl<'p> RandomWalker<'p> {
    /// Creates a walker with the given seed.
    pub fn new(program: &'p Program, seed: u64) -> RandomWalker<'p> {
        RandomWalker {
            program,
            seed,
            max_steps: 5_000,
            sink: Arc::new(NoopSink),
            fault: None,
        }
    }

    /// Replaces the per-execution step budget.
    pub fn max_steps(mut self, max_steps: usize) -> RandomWalker<'p> {
        self.max_steps = max_steps;
        self
    }

    /// Injects a deterministic [`FaultPlan`] into every trial — ConTest
    /// style noise-making for the simulator.
    pub fn with_faults(mut self, plan: FaultPlan) -> RandomWalker<'p> {
        self.fault = Some(plan);
        self
    }

    /// Streams `randomwalk` scope batch summaries to `sink`. Observation
    /// only: trial outcomes are identical whatever the sink.
    pub fn with_sink(mut self, sink: Arc<dyn Sink>) -> RandomWalker<'p> {
        self.sink = sink;
        self
    }

    /// Runs `trials` independent random-schedule executions.
    pub fn run_trials(&self, trials: u64) -> RandomWalkReport {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let report = run_trials(
            self.program,
            trials,
            self.max_steps,
            self.fault,
            move |_, _, enabled| enabled[rng.gen_range(0..enabled.len())],
        );
        emit_batch(self.sink.as_ref(), "report", self.program, &report);
        report
    }

    /// Runs `trials` executions with full recording, returning each trace
    /// with its outcome — the input sampler for the dynamic detectors.
    pub fn collect_traces(&self, trials: u64) -> Vec<(Trace, Outcome)> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut out = Vec::with_capacity(trials as usize);
        for _ in 0..trials {
            let mut exec = Executor::with_record(self.program, RecordMode::Full);
            if let Some(plan) = self.fault {
                exec.set_fault_plan(plan);
            }
            let outcome = loop {
                if let Some(o) = exec.outcome().cloned() {
                    break o;
                }
                if exec.steps() >= self.max_steps {
                    break Outcome::StepLimit;
                }
                let enabled = exec.enabled();
                let choice = enabled[rng.gen_range(0..enabled.len())];
                exec.step(choice).expect("chosen thread is enabled");
            };
            out.push((exec.into_trace(), outcome));
        }
        out
    }
}

/// PCT (probabilistic concurrency testing): random thread priorities with
/// `depth - 1` random priority-change points. Finds depth-`d` bugs with
/// probability ≥ 1/(n·k^(d-1)).
#[derive(Debug, Clone)]
pub struct PctScheduler<'p> {
    program: &'p Program,
    seed: u64,
    depth: u32,
    max_steps: usize,
    fault: Option<FaultPlan>,
}

impl<'p> PctScheduler<'p> {
    /// Creates a PCT scheduler targeting bugs of the given depth (the
    /// number of ordering constraints needed; the study's Finding says
    /// depth ≤ 4 covers 92% of non-deadlock bugs).
    pub fn new(program: &'p Program, seed: u64, depth: u32) -> PctScheduler<'p> {
        PctScheduler {
            program,
            seed,
            depth: depth.max(1),
            max_steps: 5_000,
            fault: None,
        }
    }

    /// Replaces the per-execution step budget.
    pub fn max_steps(mut self, max_steps: usize) -> PctScheduler<'p> {
        self.max_steps = max_steps;
        self
    }

    /// Injects a deterministic [`FaultPlan`] into every trial.
    pub fn with_faults(mut self, plan: FaultPlan) -> PctScheduler<'p> {
        self.fault = Some(plan);
        self
    }

    /// Runs `trials` PCT executions.
    pub fn run_trials(&self, trials: u64) -> RandomWalkReport {
        let n = self.program.n_threads();
        // Change points are sampled over the *expected* execution length
        // (PCT's `k`), approximated by the static visible-op count; using
        // `max_steps` would make change points almost never fire on short
        // kernels.
        let k_steps = self.program.static_visible_ops().max(2);
        let stopwatch = Stopwatch::start();
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut counts = OutcomeCounts::default();
        let mut first_failure = None;
        for _ in 0..trials {
            // Random initial priorities: a random permutation, higher is
            // more urgent. Change points drop the running thread to the
            // lowest band.
            let mut priorities: Vec<i64> = (0..n as i64).map(|i| i + (self.depth as i64)).collect();
            for i in (1..n).rev() {
                let j = rng.gen_range(0..=i);
                priorities.swap(i, j);
            }
            let mut change_points: Vec<usize> = (0..self.depth.saturating_sub(1))
                .map(|_| rng.gen_range(0..k_steps))
                .collect();
            change_points.sort_unstable();
            let mut next_change = 0usize;
            let mut low_band = 0i64;

            let mut exec = Executor::new(self.program);
            if let Some(plan) = self.fault {
                exec.set_fault_plan(plan);
            }
            let outcome = loop {
                if let Some(o) = exec.outcome().cloned() {
                    break o;
                }
                if exec.steps() >= self.max_steps {
                    break Outcome::StepLimit;
                }
                let enabled = exec.enabled();
                let choice = *enabled
                    .iter()
                    .max_by_key(|t| priorities[t.index()])
                    .expect("enabled set non-empty");
                if next_change < change_points.len() && exec.steps() >= change_points[next_change] {
                    low_band -= 1;
                    priorities[choice.index()] = low_band;
                    next_change += 1;
                }
                exec.step(choice).expect("chosen thread is enabled");
            };
            match &outcome {
                Outcome::Ok => counts.ok += 1,
                Outcome::AssertFailed { .. } => counts.assert_failed += 1,
                Outcome::Deadlock { .. } => counts.deadlock += 1,
                Outcome::StepLimit => counts.step_limit += 1,
                Outcome::TxRetryLimit { .. } => counts.tx_retry_limit += 1,
                Outcome::Misuse { .. } => counts.misuse += 1,
            }
            if outcome.is_failure() && first_failure.is_none() {
                first_failure = Some((exec.schedule_taken().clone(), outcome));
            }
        }
        RandomWalkReport {
            counts,
            trials,
            first_failure,
            wall: stopwatch.elapsed(),
        }
    }
}
