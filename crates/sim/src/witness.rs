//! Portable witness artifacts: the `lfm-trace/v1` interchange format.
//!
//! A *witness* is a bug manifestation made first-class: the exact schedule
//! that reproduces an outcome, the vector-clock annotated event log of
//! that execution, a fingerprint of the program it belongs to, and the
//! manifestation statistics the study's headline claims are about (how
//! many threads, context switches and conflicting accesses the bug
//! *actually* needs). Witnesses serialize to a small JSON document that
//! can be saved, diffed, checked into a regression suite, replayed with
//! [`Witness::replay`] (bit-for-bit outcome verification), and exported
//! as a Chrome trace-event file for Perfetto.
//!
//! # Conflict accounting
//!
//! `conflicting_accesses` counts executed operations that participate in
//! at least one cross-thread dependent pair (shared object, at least one
//! side writing — the same relation the explorer's partial-order
//! reduction uses). For deadlocks the *attempted* acquisitions of the
//! blocked threads are included: an ABBA deadlock is four lock
//! operations even though two of them never execute. Thread lifecycle
//! edges (spawn/join) and the global I/O journal are excluded — the
//! study counts shared-memory and synchronization accesses, and all I/O
//! is mutually ordered by construction, which would inflate every
//! I/O-heavy kernel.

use std::fmt;
use std::path::Path;

use lfm_obs::json::{self, Json};
use lfm_obs::{Event as ObsEvent, Sink, Value};

use crate::exec::{Executor, RecordMode};
use crate::footprint::{Footprint, ObjKind};
use crate::ids::{ThreadId, VarId};
use crate::outcome::Outcome;
use crate::program::Program;
use crate::schedule::Schedule;
use crate::timeline;
use crate::trace::{Event, EventKind, Trace};

/// Schema identifier embedded in every serialized witness.
pub const WITNESS_SCHEMA: &str = "lfm-trace/v1";

/// Why a witness could not be loaded, verified, or replayed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WitnessError {
    /// Reading or writing the witness file failed.
    Io(String),
    /// The document is not a structurally valid witness.
    Malformed(String),
    /// The document declares a schema this version does not understand.
    SchemaMismatch {
        /// The schema string found in the document.
        found: String,
    },
    /// The witness was recorded against a different program.
    FingerprintMismatch {
        /// Name of the program replay was attempted against.
        program: String,
        /// Fingerprint recorded in the witness.
        expected: u64,
        /// Fingerprint of the program offered for replay.
        found: u64,
    },
    /// Replaying the schedule produced a different outcome.
    OutcomeMismatch {
        /// The outcome recorded in the witness.
        expected: String,
        /// The outcome the replay produced.
        found: String,
    },
}

impl fmt::Display for WitnessError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WitnessError::Io(msg) => write!(f, "io error: {msg}"),
            WitnessError::Malformed(msg) => write!(f, "malformed witness: {msg}"),
            WitnessError::SchemaMismatch { found } => {
                write!(
                    f,
                    "unsupported witness schema {found:?} (expected {WITNESS_SCHEMA:?})"
                )
            }
            WitnessError::FingerprintMismatch {
                program,
                expected,
                found,
            } => write!(
                f,
                "witness does not match program {program:?}: \
                 fingerprint {found:016x}, recorded {expected:016x}"
            ),
            WitnessError::OutcomeMismatch { expected, found } => {
                write!(
                    f,
                    "replay outcome diverged: expected {expected:?}, got {found:?}"
                )
            }
        }
    }
}

impl std::error::Error for WitnessError {}

/// One recorded visible operation, in an owned, portable form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WitnessEvent {
    /// Global sequence number (total order).
    pub seq: usize,
    /// Index of the thread that performed the operation.
    pub thread: usize,
    /// The thread's vector clock after the operation, one component per
    /// thread.
    pub clock: Vec<u32>,
    /// Short operation mnemonic (`read`, `lock`, `wait_begin`, …).
    pub op: String,
    /// Human-readable description (variable names resolved).
    pub detail: String,
}

/// Manifestation statistics of one witness, the measured counterparts of
/// the study's ≤2-threads / ≤4-accesses bands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WitnessStats {
    /// Context switches in the stored schedule.
    pub switches: usize,
    /// Distinct threads participating: scheduled threads plus threads
    /// present only as a deadlock's blocked waiters.
    pub threads: usize,
    /// Threads participating in at least one conflicting pair.
    pub conflict_threads: usize,
    /// Operations participating in at least one cross-thread conflict
    /// (including a deadlock's attempted acquisitions).
    pub conflicting_accesses: usize,
    /// Distinct shared objects (variables, locks, …) the conflicts
    /// involve — the "resources" of the study's deadlock analysis.
    pub conflict_objects: usize,
    /// Number of recorded events.
    pub events: usize,
}

/// A portable, replayable bug manifestation. See the [module
/// docs](self) for the format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Witness {
    /// Kernel id this witness was captured from (registry key, not
    /// necessarily the program name).
    pub kernel: String,
    /// Name of the program executed.
    pub program: String,
    /// FNV-1a fingerprint of the program structure; replay against a
    /// program with a different fingerprint is refused.
    pub fingerprint: u64,
    /// Number of threads in the program.
    pub n_threads: usize,
    /// Outcome classification tag (`ok`, `assert_failed`, `deadlock`,
    /// `step_limit`, `tx_retry_limit`, `misuse`).
    pub outcome_kind: String,
    /// The outcome's rendered form, compared bit-for-bit on replay.
    pub outcome_display: String,
    /// The explicit schedule: every choice taken, replayable as-is.
    pub schedule: Schedule,
    /// Manifestation statistics.
    pub stats: WitnessStats,
    /// The vector-clock annotated event log.
    pub events: Vec<WitnessEvent>,
}

/// A structural fingerprint of a program: FNV-1a over a canonical
/// rendering of its name, threads (bodies included), shared objects and
/// final assertions. Two programs with equal fingerprints behave
/// identically under any schedule, so a fingerprint match makes replay
/// meaningful and a mismatch makes it refusable.
pub fn fingerprint(program: &Program) -> u64 {
    use std::fmt::Write as _;
    let mut desc = String::new();
    let _ = write!(desc, "{};threads={};", program.name(), program.n_threads());
    for t in program.threads() {
        let _ = write!(
            desc,
            "thread {} auto={} body={:?};",
            t.name(),
            t.auto_start(),
            t.body()
        );
    }
    desc.push_str("vars=");
    for (i, init) in program.var_init().iter().enumerate() {
        let _ = write!(desc, "{}={init},", program.var_name(VarId::from_index(i)));
    }
    let _ = write!(
        desc,
        ";mutexes={};conds={};rws={};sems={:?};asserts={:?}",
        program.n_mutexes(),
        program.n_conds(),
        program.n_rws(),
        program.sem_init(),
        program.final_asserts()
    );
    fnv1a(desc.as_bytes())
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// Short mnemonic for an event kind, used in serialized witnesses and
/// Chrome trace events.
fn op_name(kind: &EventKind) -> &'static str {
    match kind {
        EventKind::ThreadStart => "start",
        EventKind::ThreadExit => "exit",
        EventKind::Read { .. } => "read",
        EventKind::Write { .. } => "write",
        EventKind::Rmw { .. } => "rmw",
        EventKind::Cas { .. } => "cas",
        EventKind::Lock(_) => "lock",
        EventKind::Unlock(_) => "unlock",
        EventKind::TryLock { .. } => "try_lock",
        EventKind::RwRead(_) => "rw_read",
        EventKind::RwWrite(_) => "rw_write",
        EventKind::RwUnlock(_) => "rw_unlock",
        EventKind::WaitBegin { .. } => "wait_begin",
        EventKind::WaitEnd { .. } => "wait_end",
        EventKind::Signal(_) => "signal",
        EventKind::Broadcast(_) => "broadcast",
        EventKind::SemAcquire(_) => "sem_acquire",
        EventKind::SemRelease(_) => "sem_release",
        EventKind::Spawn(_) => "spawn",
        EventKind::Join(_) => "join",
        EventKind::Io(_) => "io",
        EventKind::TxBegin => "tx_begin",
        EventKind::TxCommit => "tx_commit",
        EventKind::TxAbort => "tx_abort",
        EventKind::AssertFail(_) => "assert_fail",
        EventKind::Yield => "yield",
    }
}

/// Classification tag for an outcome.
pub(crate) fn outcome_kind(outcome: &Outcome) -> &'static str {
    match outcome {
        Outcome::Ok => "ok",
        Outcome::AssertFailed { .. } => "assert_failed",
        Outcome::Deadlock { .. } => "deadlock",
        Outcome::StepLimit => "step_limit",
        Outcome::TxRetryLimit { .. } => "tx_retry_limit",
        Outcome::Misuse { .. } => "misuse",
    }
}

/// Object kinds the conflict accounting counts (see module docs).
fn countable(kind: ObjKind) -> bool {
    !matches!(kind, ObjKind::Thread | ObjKind::Io)
}

/// Computes the manifestation statistics from the per-step footprints of
/// an execution (plus, for deadlocks, the blocked threads' attempted
/// operations).
fn conflict_stats(
    schedule: &Schedule,
    ops: &[(ThreadId, Footprint)],
    n_events: usize,
) -> WitnessStats {
    let mut conflicting = vec![false; ops.len()];
    let mut objects: Vec<(ObjKind, u32)> = Vec::new();
    for i in 0..ops.len() {
        for j in i + 1..ops.len() {
            let (ta, fa) = &ops[i];
            let (tb, fb) = &ops[j];
            if ta == tb {
                continue;
            }
            let mut pair_conflicts = false;
            for a in fa.accesses() {
                for b in fb.accesses() {
                    if countable(a.kind)
                        && a.kind == b.kind
                        && a.index == b.index
                        && (a.write || b.write)
                    {
                        pair_conflicts = true;
                        let obj = (a.kind, a.index);
                        if !objects.contains(&obj) {
                            objects.push(obj);
                        }
                    }
                }
            }
            if pair_conflicts {
                conflicting[i] = true;
                conflicting[j] = true;
            }
        }
    }
    // Participating threads: everything scheduled, plus threads that
    // appear only as a deadlock's blocked ops (a thread can be part of
    // the bug without ever taking a step — blocking is a state here, not
    // a step).
    let mut threads_scheduled: Vec<ThreadId> = Vec::new();
    for t in schedule.iter().chain(ops.iter().map(|(t, _)| *t)) {
        if !threads_scheduled.contains(&t) {
            threads_scheduled.push(t);
        }
    }
    let mut conflict_threads: Vec<ThreadId> = Vec::new();
    for (i, &hit) in conflicting.iter().enumerate() {
        if hit && !conflict_threads.contains(&ops[i].0) {
            conflict_threads.push(ops[i].0);
        }
    }
    WitnessStats {
        switches: schedule.context_switches(),
        threads: threads_scheduled.len(),
        conflict_threads: conflict_threads.len(),
        conflicting_accesses: conflicting.iter().filter(|&&c| c).count(),
        conflict_objects: objects.len(),
        events: n_events,
    }
}

impl Witness {
    /// Captures a witness: replays `schedule` against `program` (skipped
    /// choices degrade gracefully, as in [`Executor::replay`]), records
    /// the explicit schedule actually taken, the event log, the outcome
    /// and the conflict statistics.
    pub fn capture(
        program: &Program,
        kernel: &str,
        schedule: &Schedule,
        max_steps: usize,
    ) -> Witness {
        // First pass resolves the explicit schedule (every recorded choice
        // is enabled when its turn comes, so the second pass can step it
        // directly while collecting footprints).
        let mut probe = Executor::new(program);
        probe.replay(schedule, max_steps);
        let explicit = probe.schedule_taken().clone();

        let mut exec = Executor::with_record(program, RecordMode::Full);
        let mut ops: Vec<(ThreadId, Footprint)> = Vec::new();
        for thread in explicit.iter() {
            if let Some(fp) = exec.next_footprint(thread) {
                ops.push((thread, fp));
            }
            let step = exec.step(thread);
            debug_assert!(step.is_ok(), "explicit schedules replay exactly");
            if step.is_err() {
                break;
            }
        }
        // `run_with` marks step-budget exhaustion itself; stepping the
        // explicit choices never reaches that code path.
        let outcome = exec.outcome().cloned().unwrap_or(Outcome::StepLimit);
        if let Outcome::Deadlock { blocked } = &outcome {
            for (thread, on) in blocked {
                ops.push((*thread, Footprint::of_blocked(on)));
            }
        }
        let stats = conflict_stats(&explicit, &ops, exec.events().len());
        let events = exec
            .events()
            .iter()
            .map(|e| WitnessEvent {
                seq: e.seq,
                thread: e.thread.index(),
                clock: (0..e.clock.len())
                    .map(|i| e.clock.get(ThreadId::from_index(i)))
                    .collect(),
                op: op_name(&e.kind).to_owned(),
                detail: timeline::describe(e, Some(program)),
            })
            .collect();
        Witness {
            kernel: kernel.to_owned(),
            program: program.name().to_owned(),
            fingerprint: fingerprint(program),
            n_threads: program.n_threads(),
            outcome_kind: outcome_kind(&outcome).to_owned(),
            outcome_display: outcome.to_string(),
            schedule: explicit,
            stats,
            events,
        }
    }

    /// Replays the witness against `program` and verifies the outcome
    /// bit-for-bit (classification tag and rendered form both equal).
    ///
    /// # Errors
    ///
    /// [`WitnessError::FingerprintMismatch`] when `program` is not the
    /// program the witness was recorded against;
    /// [`WitnessError::OutcomeMismatch`] when the re-execution diverges
    /// (e.g. a witness file whose schedule was edited or truncated).
    pub fn replay(&self, program: &Program) -> Result<Outcome, WitnessError> {
        let found = fingerprint(program);
        if found != self.fingerprint {
            return Err(WitnessError::FingerprintMismatch {
                program: program.name().to_owned(),
                expected: self.fingerprint,
                found,
            });
        }
        let mut exec = Executor::new(program);
        let outcome = exec.replay(&self.schedule, self.schedule.len());
        let kind = outcome_kind(&outcome);
        let display = outcome.to_string();
        if kind != self.outcome_kind || display != self.outcome_display {
            return Err(WitnessError::OutcomeMismatch {
                expected: self.outcome_display.clone(),
                found: display,
            });
        }
        Ok(outcome)
    }

    /// Re-executes the witness schedule with full recording and emits the
    /// trace as Chrome trace events into `sink` (fingerprint-checked).
    ///
    /// # Errors
    ///
    /// [`WitnessError::FingerprintMismatch`] as for [`Witness::replay`].
    pub fn emit_chrome(
        &self,
        program: &Program,
        pid: u64,
        sink: &dyn Sink,
    ) -> Result<(), WitnessError> {
        let found = fingerprint(program);
        if found != self.fingerprint {
            return Err(WitnessError::FingerprintMismatch {
                program: program.name().to_owned(),
                expected: self.fingerprint,
                found,
            });
        }
        let mut exec = Executor::with_record(program, RecordMode::Full);
        exec.replay(&self.schedule, self.schedule.len());
        let trace = exec.into_trace();
        emit_chrome_trace(&trace, Some(program), pid, sink);
        Ok(())
    }

    /// Serializes the witness as its canonical `lfm-trace/v1` JSON
    /// document (one event per line; stable field order, so serialize →
    /// parse → re-serialize is the identity).
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(256 + self.events.len() * 96);
        let _ = write!(out, "{{\"schema\":{}", json::quote(WITNESS_SCHEMA));
        let _ = write!(
            out,
            ",\n\"kernel\":{},\"program\":{},\"fingerprint\":\"{:016x}\",\"threads\":{}",
            json::quote(&self.kernel),
            json::quote(&self.program),
            self.fingerprint,
            self.n_threads
        );
        let _ = write!(
            out,
            ",\n\"outcome\":{{\"kind\":{},\"display\":{}}}",
            json::quote(&self.outcome_kind),
            json::quote(&self.outcome_display)
        );
        out.push_str(",\n\"schedule\":[");
        for (i, t) in self.schedule.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}", t.index());
        }
        out.push(']');
        let s = &self.stats;
        let _ = write!(
            out,
            ",\n\"stats\":{{\"switches\":{},\"threads\":{},\"conflict_threads\":{},\
             \"conflicting_accesses\":{},\"conflict_objects\":{},\"events\":{}}}",
            s.switches,
            s.threads,
            s.conflict_threads,
            s.conflicting_accesses,
            s.conflict_objects,
            s.events
        );
        out.push_str(",\n\"events\":[");
        for (i, e) in self.events.iter().enumerate() {
            out.push_str(if i == 0 { "\n" } else { ",\n" });
            let _ = write!(
                out,
                "{{\"seq\":{},\"thread\":{},\"clock\":[",
                e.seq, e.thread
            );
            for (j, c) in e.clock.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            let _ = write!(
                out,
                "],\"op\":{},\"detail\":{}}}",
                json::quote(&e.op),
                json::quote(&e.detail)
            );
        }
        if !self.events.is_empty() {
            out.push('\n');
        }
        out.push_str("]}\n");
        out
    }

    /// Parses a serialized witness.
    ///
    /// # Errors
    ///
    /// [`WitnessError::Malformed`] with a field-level diagnostic for
    /// truncated or corrupted documents; [`WitnessError::SchemaMismatch`]
    /// for documents from an unknown format version.
    pub fn from_json(text: &str) -> Result<Witness, WitnessError> {
        let doc =
            Json::parse(text).map_err(|e| WitnessError::Malformed(format!("invalid JSON: {e}")))?;
        let schema = req_str(&doc, "schema")?;
        if schema != WITNESS_SCHEMA {
            return Err(WitnessError::SchemaMismatch {
                found: schema.to_owned(),
            });
        }
        let kernel = req_str(&doc, "kernel")?.to_owned();
        let program = req_str(&doc, "program")?.to_owned();
        let fingerprint = u64::from_str_radix(req_str(&doc, "fingerprint")?, 16)
            .map_err(|_| malformed("\"fingerprint\" is not a hex number"))?;
        let n_threads = req_usize(&doc, "threads")?;
        let outcome = req(&doc, "outcome")?;
        let outcome_kind = req_str(outcome, "kind")?.to_owned();
        let outcome_display = req_str(outcome, "display")?.to_owned();
        let mut schedule = Schedule::new();
        for (i, v) in req_arr(&doc, "schedule")?.iter().enumerate() {
            let idx = v
                .as_u64()
                .ok_or_else(|| malformed(format!("schedule[{i}] is not an integer")))?
                as usize;
            if idx >= n_threads {
                return Err(malformed(format!(
                    "schedule[{i}] = {idx} out of range for {n_threads} threads"
                )));
            }
            schedule.push(ThreadId::from_index(idx));
        }
        let stats_obj = req(&doc, "stats")?;
        let stats = WitnessStats {
            switches: req_usize(stats_obj, "switches")?,
            threads: req_usize(stats_obj, "threads")?,
            conflict_threads: req_usize(stats_obj, "conflict_threads")?,
            conflicting_accesses: req_usize(stats_obj, "conflicting_accesses")?,
            conflict_objects: req_usize(stats_obj, "conflict_objects")?,
            events: req_usize(stats_obj, "events")?,
        };
        let mut events = Vec::new();
        for (i, ev) in req_arr(&doc, "events")?.iter().enumerate() {
            let clock = ev
                .get("clock")
                .and_then(Json::as_array)
                .ok_or_else(|| malformed(format!("events[{i}].clock is not an array")))?
                .iter()
                .map(|c| c.as_u64().map(|v| v as u32))
                .collect::<Option<Vec<u32>>>()
                .ok_or_else(|| malformed(format!("events[{i}].clock has a non-integer")))?;
            events.push(WitnessEvent {
                seq: req_usize(ev, "seq")?,
                thread: req_usize(ev, "thread")?,
                clock,
                op: req_str(ev, "op")?.to_owned(),
                detail: req_str(ev, "detail")?.to_owned(),
            });
        }
        Ok(Witness {
            kernel,
            program,
            fingerprint,
            n_threads,
            outcome_kind,
            outcome_display,
            schedule,
            stats,
            events,
        })
    }

    /// Writes the serialized witness to `path`.
    ///
    /// # Errors
    ///
    /// [`WitnessError::Io`] carrying the path and the OS error.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), WitnessError> {
        let path = path.as_ref();
        std::fs::write(path, self.to_json())
            .map_err(|e| WitnessError::Io(format!("{}: {e}", path.display())))
    }

    /// Reads and parses a witness file.
    ///
    /// # Errors
    ///
    /// As for [`Witness::from_json`], plus [`WitnessError::Io`] for
    /// unreadable files.
    pub fn load(path: impl AsRef<Path>) -> Result<Witness, WitnessError> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path)
            .map_err(|e| WitnessError::Io(format!("{}: {e}", path.display())))?;
        Witness::from_json(&text)
    }
}

fn malformed(msg: impl Into<String>) -> WitnessError {
    WitnessError::Malformed(msg.into())
}

fn req<'a>(obj: &'a Json, key: &str) -> Result<&'a Json, WitnessError> {
    obj.get(key)
        .ok_or_else(|| malformed(format!("missing field {key:?}")))
}

fn req_str<'a>(obj: &'a Json, key: &str) -> Result<&'a str, WitnessError> {
    req(obj, key)?
        .as_str()
        .ok_or_else(|| malformed(format!("field {key:?} is not a string")))
}

fn req_usize(obj: &Json, key: &str) -> Result<usize, WitnessError> {
    req(obj, key)?
        .as_u64()
        .map(|v| v as usize)
        .ok_or_else(|| malformed(format!("field {key:?} is not an integer")))
}

fn req_arr<'a>(obj: &'a Json, key: &str) -> Result<&'a [Json], WitnessError> {
    req(obj, key)?
        .as_array()
        .ok_or_else(|| malformed(format!("field {key:?} is not an array")))
}

/// Emits `trace` as Chrome trace events into `sink` (scope `"trace"`,
/// consumed by [`lfm_obs::ChromeTraceSink`]): one `pid` per kernel, one
/// `tid` per simulated thread, one instant event per visible operation
/// with `ts` equal to the sequence number (one op = 1µs), preceded by
/// `process_name`/`thread_name` metadata records.
pub fn emit_chrome_trace(trace: &Trace, program: Option<&Program>, pid: u64, sink: &dyn Sink) {
    sink.emit(&ObsEvent {
        scope: "trace",
        name: "process_name",
        fields: &[
            ("ph", Value::Str("M")),
            ("pid", Value::U64(pid)),
            ("name", Value::Str(&trace.program)),
        ],
    });
    let names: Vec<String> = match program {
        Some(p) => p.threads().iter().map(|t| t.name().to_owned()).collect(),
        None => (0..trace.n_threads).map(|i| format!("t{i}")).collect(),
    };
    for (i, name) in names.iter().enumerate() {
        sink.emit(&ObsEvent {
            scope: "trace",
            name: "thread_name",
            fields: &[
                ("ph", Value::Str("M")),
                ("pid", Value::U64(pid)),
                ("tid", Value::U64(i as u64)),
                ("name", Value::Str(name)),
            ],
        });
    }
    for event in &trace.events {
        let detail = timeline::describe(event, program);
        let clock = event.clock.to_string();
        sink.emit(&ObsEvent {
            scope: "trace",
            name: op_name(&event.kind),
            fields: &[
                ("pid", Value::U64(pid)),
                ("tid", Value::U64(event.thread.index() as u64)),
                ("ts", Value::U64(event.seq as u64)),
                ("name", Value::Str(&detail)),
                ("op", Value::Str(op_name(&event.kind))),
                ("clock", Value::Str(&clock)),
            ],
        });
    }
}

/// Convenience: emit one [`Event`] — used by tests; the bulk exporter is
/// [`emit_chrome_trace`].
#[allow(dead_code)]
fn _event_type_check(e: &Event) -> &EventKind {
    &e.kind
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explore::Explorer;
    use crate::expr::Expr;
    use crate::program::ProgramBuilder;
    use crate::stmt::Stmt;
    use lfm_obs::ChromeTraceSink;

    fn racy_counter() -> Program {
        let mut b = ProgramBuilder::new("racy-counter");
        let v = b.var("counter", 0);
        for name in ["t1", "t2"] {
            b.thread(
                name,
                vec![
                    Stmt::read(v, "tmp"),
                    Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
                ],
            );
        }
        b.final_assert(Expr::shared(v).eq(Expr::lit(2)), "both increments kept");
        b.build().unwrap()
    }

    fn abba() -> Program {
        let mut b = ProgramBuilder::new("abba");
        let a = b.mutex();
        let bm = b.mutex();
        b.thread(
            "t1",
            vec![
                Stmt::lock(a),
                Stmt::lock(bm),
                Stmt::unlock(bm),
                Stmt::unlock(a),
            ],
        );
        b.thread(
            "t2",
            vec![
                Stmt::lock(bm),
                Stmt::lock(a),
                Stmt::unlock(a),
                Stmt::unlock(bm),
            ],
        );
        b.build().unwrap()
    }

    fn first_failure(program: &Program) -> Schedule {
        Explorer::new(program)
            .stop_on_first_failure()
            .run()
            .first_failure
            .expect("program has a failing interleaving")
            .0
    }

    #[test]
    fn capture_records_failure_and_stats() {
        let p = racy_counter();
        let w = Witness::capture(&p, "racy_counter", &first_failure(&p), 5_000);
        assert_eq!(w.outcome_kind, "assert_failed");
        assert!(w.outcome_display.contains("both increments kept"));
        assert_eq!(w.n_threads, 2);
        assert_eq!(w.stats.threads, 2);
        assert_eq!(w.stats.conflict_threads, 2);
        // Two reads + two writes of one variable all conflict across
        // threads.
        assert_eq!(w.stats.conflicting_accesses, 4);
        assert_eq!(w.stats.conflict_objects, 1);
        assert_eq!(w.stats.events, w.events.len());
        assert!(!w.schedule.is_empty());
    }

    #[test]
    fn deadlock_counts_attempted_acquisitions() {
        let p = abba();
        let w = Witness::capture(&p, "abba", &first_failure(&p), 5_000);
        assert_eq!(w.outcome_kind, "deadlock");
        // Two executed locks plus two blocked lock attempts, over two
        // mutexes: the paper's "2 threads, 2 resources" deadlock shape.
        assert_eq!(w.stats.conflict_threads, 2);
        assert_eq!(w.stats.conflicting_accesses, 4);
        assert_eq!(w.stats.conflict_objects, 2);
    }

    #[test]
    fn replay_verifies_outcome_from_the_artifact_alone() {
        let p = racy_counter();
        let w = Witness::capture(&p, "racy_counter", &first_failure(&p), 5_000);
        let text = w.to_json();
        let loaded = Witness::from_json(&text).unwrap();
        let outcome = loaded.replay(&p).unwrap();
        assert_eq!(outcome.to_string(), w.outcome_display);
    }

    #[test]
    fn serialize_parse_reserialize_is_identity() {
        for p in [racy_counter(), abba()] {
            let w = Witness::capture(&p, p.name(), &first_failure(&p), 5_000);
            let text = w.to_json();
            let reparsed = Witness::from_json(&text).unwrap();
            assert_eq!(reparsed, w);
            assert_eq!(reparsed.to_json(), text);
        }
    }

    #[test]
    fn fingerprint_rejects_a_different_program() {
        let p = racy_counter();
        let w = Witness::capture(&p, "racy_counter", &first_failure(&p), 5_000);
        let other = abba();
        let err = w.replay(&other).unwrap_err();
        assert!(matches!(err, WitnessError::FingerprintMismatch { .. }));
        assert!(err.to_string().contains("abba"), "{err}");
    }

    #[test]
    fn fingerprint_is_sensitive_to_program_structure() {
        let p1 = racy_counter();
        let p2 = racy_counter();
        assert_eq!(fingerprint(&p1), fingerprint(&p2));
        let mut b = ProgramBuilder::new("racy-counter");
        let v = b.var("counter", 1); // different initial value
        for name in ["t1", "t2"] {
            b.thread(
                name,
                vec![
                    Stmt::read(v, "tmp"),
                    Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
                ],
            );
        }
        b.final_assert(Expr::shared(v).eq(Expr::lit(2)), "both increments kept");
        let p3 = b.build().unwrap();
        assert_ne!(fingerprint(&p1), fingerprint(&p3));
    }

    #[test]
    fn tampered_schedule_is_an_outcome_mismatch_not_a_panic() {
        let p = racy_counter();
        let w = Witness::capture(&p, "racy_counter", &first_failure(&p), 5_000);
        let mut tampered = w.clone();
        // Run the schedule serially instead: the bug no longer manifests.
        tampered.schedule = Schedule::new();
        let err = tampered.replay(&p).unwrap_err();
        assert!(matches!(err, WitnessError::OutcomeMismatch { .. }), "{err}");
    }

    #[test]
    fn truncated_documents_fail_with_diagnostics() {
        let p = racy_counter();
        let w = Witness::capture(&p, "racy_counter", &first_failure(&p), 5_000);
        // Trim the trailing newline first: cutting only it leaves a
        // complete document.
        let text = w.to_json().trim_end().to_owned();
        for cut in (0..text.len()).step_by(7) {
            if !text.is_char_boundary(cut) {
                continue;
            }
            let err = Witness::from_json(&text[..cut]).expect_err("truncation must not parse");
            // Every failure is a structured diagnostic.
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn schema_mismatch_is_reported() {
        let err = Witness::from_json("{\"schema\":\"lfm-trace/v999\"}").unwrap_err();
        assert!(matches!(err, WitnessError::SchemaMismatch { .. }));
        assert!(err.to_string().contains("lfm-trace/v999"), "{err}");
    }

    #[test]
    fn out_of_range_schedule_entries_are_malformed() {
        let p = racy_counter();
        let w = Witness::capture(&p, "racy_counter", &first_failure(&p), 5_000);
        let text = w.to_json().replace("\"schedule\":[0", "\"schedule\":[9");
        let err = Witness::from_json(&text).unwrap_err();
        assert!(matches!(err, WitnessError::Malformed { .. }), "{err}");
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn chrome_export_has_metadata_and_instants() {
        let p = racy_counter();
        let w = Witness::capture(&p, "racy_counter", &first_failure(&p), 5_000);
        let sink = ChromeTraceSink::new();
        w.emit_chrome(&p, 1, &sink).unwrap();
        // process_name + one thread_name per thread + one instant per event.
        assert_eq!(sink.len(), 1 + p.n_threads() + w.events.len());
        let doc = Json::parse(&sink.render()).unwrap();
        let events = doc.get("traceEvents").and_then(Json::as_array).unwrap();
        // The process display name lives in args.name of the metadata
        // record, where Perfetto looks for it.
        assert!(events.iter().any(|e| {
            e.get("name").and_then(Json::as_str) == Some("process_name")
                && e.get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str)
                    == Some("racy-counter")
        }));
        assert!(events
            .iter()
            .any(|e| { e.get("ph").and_then(Json::as_str) == Some("i") }));
    }

    #[test]
    fn save_and_load_round_trip_through_disk() {
        let p = racy_counter();
        let w = Witness::capture(&p, "racy_counter", &first_failure(&p), 5_000);
        let path = std::env::temp_dir().join("lfm_witness_roundtrip_test.json");
        w.save(&path).unwrap();
        let loaded = Witness::load(&path).unwrap();
        let _ = std::fs::remove_file(&path);
        assert_eq!(loaded, w);
        let err = Witness::load("/nonexistent/lfm/witness.json").unwrap_err();
        assert!(matches!(err, WitnessError::Io(_)), "{err}");
    }
}
