//! Interleaving timelines: render a [`Trace`] as the
//! two-column thread diagram the study's figures use to explain how a
//! buggy interleaving unfolds.
//!
//! ```text
//! seq | w1                        | w2
//! ----+---------------------------+---------------------------
//!   0 | start                     |
//!   1 | p = buf_pos (read 0)      |
//!   2 |                           | start
//!   3 |                           | p = buf_pos (read 0)
//!   ...
//! ```

use std::fmt::Write as _;

use crate::program::Program;
use crate::trace::{Event, EventKind, Trace};

/// Hard cap on the per-thread column width; descriptions longer than this
/// are truncated with an ellipsis.
const MAX_COL_WIDTH: usize = 60;
/// Lower bound keeping the layout recognizable for tiny programs.
const MIN_COL_WIDTH: usize = 12;

/// One-line description of an event, resolving variable names through
/// the program when available.
pub(crate) fn describe(event: &Event, program: Option<&Program>) -> String {
    let var_name = |v: crate::ids::VarId| -> String {
        match program {
            Some(p) if v.index() < p.n_vars() => p.var_name(v).to_string(),
            _ => v.to_string(),
        }
    };
    match &event.kind {
        EventKind::ThreadStart => "start".into(),
        EventKind::ThreadExit => "exit".into(),
        EventKind::Read { var, value } => format!("read {} -> {value}", var_name(*var)),
        EventKind::Write { var, value } => format!("{} = {value}", var_name(*var)),
        EventKind::Rmw { var, old, new } => {
            format!("rmw {}: {old} -> {new}", var_name(*var))
        }
        EventKind::Cas {
            var,
            success,
            observed,
        } => format!(
            "cas {} ({}; saw {observed})",
            var_name(*var),
            if *success { "ok" } else { "failed" }
        ),
        EventKind::Lock(m) => format!("lock {m}"),
        EventKind::Unlock(m) => format!("unlock {m}"),
        EventKind::TryLock { mutex, success } => format!(
            "try_lock {mutex} ({})",
            if *success { "ok" } else { "busy" }
        ),
        EventKind::RwRead(rw) => format!("read_lock {rw}"),
        EventKind::RwWrite(rw) => format!("write_lock {rw}"),
        EventKind::RwUnlock(rw) => format!("rw_unlock {rw}"),
        EventKind::WaitBegin { cond, .. } => format!("wait {cond} (parked)"),
        EventKind::WaitEnd { cond, .. } => format!("wait {cond} (woke)"),
        EventKind::Signal(c) => format!("signal {c}"),
        EventKind::Broadcast(c) => format!("broadcast {c}"),
        EventKind::SemAcquire(s) => format!("sem_acquire {s}"),
        EventKind::SemRelease(s) => format!("sem_release {s}"),
        EventKind::Spawn(t) => format!("spawn {t}"),
        EventKind::Join(t) => format!("join {t}"),
        EventKind::Io(tag) => format!("io \"{tag}\""),
        EventKind::TxBegin => "atomic {".into(),
        EventKind::TxCommit => "} commit".into(),
        EventKind::TxAbort => "!! tx abort, retrying".into(),
        EventKind::AssertFail(msg) => format!("ASSERT FAILED: {msg}"),
        EventKind::Yield => "yield".into(),
    }
}

/// Renders the trace as a thread-column timeline. Pass the program to
/// resolve variable names (falls back to `v0`-style ids otherwise).
///
/// The column width adapts to the longest rendered event line (and thread
/// name) up to a cap of 60 columns, so long variable or kernel names are
/// only truncated when they genuinely do not fit.
pub fn render_timeline(trace: &Trace, program: Option<&Program>) -> String {
    let names: Vec<String> = match program {
        Some(p) => p.threads().iter().map(|t| t.name().to_string()).collect(),
        None => (0..trace.n_threads).map(|i| format!("t{i}")).collect(),
    };
    let descriptions: Vec<String> = trace.events.iter().map(|e| describe(e, program)).collect();
    let content = names
        .iter()
        .chain(descriptions.iter())
        .map(|s| s.chars().count())
        .max()
        .unwrap_or(0);
    let col_width = (content + 2).clamp(MIN_COL_WIDTH, MAX_COL_WIDTH);
    let mut out = String::new();
    let _ = write!(out, "seq |");
    for name in &names {
        let _ = write!(out, " {name:<width$}|", width = col_width - 1);
    }
    out.push('\n');
    let _ = write!(out, "----+");
    for _ in &names {
        let _ = write!(out, "{}+", "-".repeat(col_width));
    }
    out.push('\n');
    for (event, text) in trace.events.iter().zip(descriptions) {
        let _ = write!(out, "{:3} |", event.seq);
        for i in 0..names.len() {
            if i == event.thread.index() {
                let text = if text.chars().count() > col_width - 2 {
                    let mut t: String = text.chars().take(col_width - 3).collect();
                    t.push('…');
                    t
                } else {
                    text.clone()
                };
                let _ = write!(out, " {text:<width$}|", width = col_width - 1);
            } else {
                let _ = write!(out, "{}|", " ".repeat(col_width));
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{Executor, RecordMode};
    use crate::expr::Expr;
    use crate::program::ProgramBuilder;
    use crate::schedule::Schedule;
    use crate::stmt::Stmt;

    fn racy() -> Program {
        let mut b = ProgramBuilder::new("racy");
        let v = b.var("counter", 0);
        for name in ["w1", "w2"] {
            b.thread(
                name,
                vec![
                    Stmt::read(v, "tmp"),
                    Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
                ],
            );
        }
        b.build().unwrap()
    }

    #[test]
    fn timeline_places_events_in_thread_columns() {
        let p = racy();
        let mut e = Executor::with_record(&p, RecordMode::Full);
        let sched: Schedule = vec![
            crate::ids::ThreadId::from_index(0),
            crate::ids::ThreadId::from_index(1),
            crate::ids::ThreadId::from_index(0),
            crate::ids::ThreadId::from_index(1),
        ]
        .into();
        e.replay(&sched, 100);
        let trace = e.into_trace();
        let timeline = render_timeline(&trace, Some(&p));
        assert!(timeline.contains("seq | w1"));
        assert!(timeline.contains("| w2"));
        assert!(timeline.contains("read counter -> 0"));
        assert!(timeline.contains("counter = 1"));
        // w2's read is in the second column: the line has a leading
        // empty first column.
        let w2_read = timeline
            .lines()
            .find(|l| l.contains("read counter") && l.split('|').nth(1).unwrap().trim().is_empty())
            .expect("w2's read sits in the second column");
        assert!(w2_read.contains("read counter -> 0"));
    }

    #[test]
    fn timeline_without_program_uses_ids() {
        let p = racy();
        let mut e = Executor::with_record(&p, RecordMode::Full);
        e.run_sequential(100);
        let trace = e.into_trace();
        let timeline = render_timeline(&trace, None);
        assert!(timeline.contains("seq | t0"));
        assert!(timeline.contains("read v0 -> 0"));
    }

    #[test]
    fn columns_widen_to_fit_long_names() {
        let mut b = ProgramBuilder::new("long");
        let v = b.var("a_variable_with_a_really_long_name", 0);
        b.thread("t", vec![Stmt::read(v, "x")]);
        let p = b.build().unwrap();
        let mut e = Executor::with_record(&p, RecordMode::Full);
        e.run_sequential(10);
        let timeline = render_timeline(&e.into_trace(), Some(&p));
        // 43 characters fit under the 60-column cap: no silent clipping.
        assert!(timeline.contains("read a_variable_with_a_really_long_name -> 0"));
        assert!(!timeline.contains('…'));
    }

    #[test]
    fn descriptions_past_the_cap_are_truncated() {
        let mut b = ProgramBuilder::new("very-long");
        let v = b.var(
            "an_exceptionally_long_variable_name_that_cannot_possibly_fit_in_a_column",
            0,
        );
        b.thread("t", vec![Stmt::read(v, "x")]);
        b.thread("u", vec![Stmt::write(v, Expr::lit(1))]);
        let p = b.build().unwrap();
        let mut e = Executor::with_record(&p, RecordMode::Full);
        e.run_sequential(10);
        let timeline = render_timeline(&e.into_trace(), Some(&p));
        assert!(timeline.contains('…'));
        // Columns stay aligned at the cap width.
        let cap = 60;
        for line in timeline.lines().skip(2) {
            assert_eq!(
                line.chars().count(),
                5 + (cap + 1) * p.n_threads(),
                "{line}"
            );
        }
    }

    #[test]
    fn short_programs_keep_a_minimum_width() {
        let mut b = ProgramBuilder::new("tiny");
        let v = b.var("v", 0);
        b.thread("t", vec![Stmt::write(v, Expr::lit(1))]);
        let p = b.build().unwrap();
        let mut e = Executor::with_record(&p, RecordMode::Full);
        e.run_sequential(10);
        let timeline = render_timeline(&e.into_trace(), Some(&p));
        let header = timeline.lines().next().unwrap();
        assert!(header.chars().count() >= 5 + 12, "{header}");
    }

    #[test]
    fn assert_failures_are_loud() {
        let mut b = ProgramBuilder::new("fail");
        let v = b.var("x", 0);
        b.thread(
            "t",
            vec![
                Stmt::read(v, "a"),
                Stmt::assert(Expr::local("a").eq(Expr::lit(1)), "x must be 1"),
            ],
        );
        let p = b.build().unwrap();
        let mut e = Executor::with_record(&p, RecordMode::Full);
        e.run_sequential(10);
        let timeline = render_timeline(&e.into_trace(), Some(&p));
        assert!(timeline.contains("ASSERT FAILED: x must be 1"));
    }
}
