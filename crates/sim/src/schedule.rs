//! Schedules: recorded sequences of scheduling choices.

use std::fmt;

use crate::ids::ThreadId;

/// A deterministic schedule — the sequence of threads chosen at each
/// scheduling point. Replaying a schedule against the same
/// [`crate::Program`] reproduces the execution exactly; this is how the
/// explorer reports a *witness interleaving* for each bug manifestation.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Schedule(Vec<ThreadId>);

impl Schedule {
    /// An empty schedule.
    pub fn new() -> Schedule {
        Schedule(Vec::new())
    }

    /// Appends a choice.
    pub fn push(&mut self, thread: ThreadId) {
        self.0.push(thread);
    }

    /// Number of choices recorded.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` when no choices have been recorded.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The recorded choices.
    pub fn choices(&self) -> &[ThreadId] {
        &self.0
    }

    /// Iterates over the recorded choices.
    pub fn iter(&self) -> impl Iterator<Item = ThreadId> + '_ {
        self.0.iter().copied()
    }

    /// Number of *context switches* in the schedule: positions where the
    /// chosen thread differs from the previous choice. The study's
    /// manifestation analysis (and CHESS-style bounding) counts these.
    pub fn context_switches(&self) -> usize {
        self.0.windows(2).filter(|w| w[0] != w[1]).count()
    }
}

impl From<Vec<ThreadId>> for Schedule {
    fn from(choices: Vec<ThreadId>) -> Schedule {
        Schedule(choices)
    }
}

impl FromIterator<ThreadId> for Schedule {
    fn from_iter<I: IntoIterator<Item = ThreadId>>(iter: I) -> Schedule {
        Schedule(iter.into_iter().collect())
    }
}

impl Extend<ThreadId> for Schedule {
    fn extend<I: IntoIterator<Item = ThreadId>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, t) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{t}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::from_index(i as usize)
    }

    #[test]
    fn push_and_len() {
        let mut s = Schedule::new();
        assert!(s.is_empty());
        s.push(t(0));
        s.push(t(1));
        assert_eq!(s.len(), 2);
        assert_eq!(s.choices(), &[t(0), t(1)]);
    }

    #[test]
    fn context_switches_count_transitions() {
        let s: Schedule = vec![t(0), t(0), t(1), t(0), t(0)].into();
        assert_eq!(s.context_switches(), 2);
        let s: Schedule = vec![t(0)].into();
        assert_eq!(s.context_switches(), 0);
        assert_eq!(Schedule::new().context_switches(), 0);
    }

    #[test]
    fn display_is_space_separated() {
        let s: Schedule = vec![t(0), t(1), t(1)].into();
        assert_eq!(s.to_string(), "t0 t1 t1");
    }

    #[test]
    fn collects_from_iterator() {
        let s: Schedule = (0..3).map(t).collect();
        assert_eq!(s.len(), 3);
        let mut s2 = Schedule::new();
        s2.extend(s.iter());
        assert_eq!(s, s2);
    }
}
