//! Statements of the thread-script IR.
//!
//! Every statement that touches shared state or synchronization is a
//! distinct *visible operation* — a scheduling point at which the model
//! checker may preempt the thread. Purely local statements
//! ([`Stmt::LocalSet`], control flow over local conditions) are executed
//! greedily without yielding to the scheduler, mirroring how only
//! shared-memory instructions matter for interleaving exploration.

use crate::expr::Expr;
use crate::ids::{CondId, MutexId, RwId, SemId, ThreadId, VarId};

/// Atomic read-modify-write operations for [`Stmt::Rmw`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RmwOp {
    /// `var += operand`, returning the *old* value.
    FetchAdd,
    /// `var -= operand`, returning the *old* value.
    FetchSub,
    /// `var = operand`, returning the *old* value (atomic exchange).
    Exchange,
    /// `var = max(var, operand)`, returning the *old* value.
    FetchMax,
    /// `var = min(var, operand)`, returning the *old* value.
    FetchMin,
}

/// One statement of a thread script.
///
/// Construct via the associated helper functions ([`Stmt::read`],
/// [`Stmt::write`], [`Stmt::lock`], …) which read more naturally at kernel
/// definition sites.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// Load a shared variable into a local register. *Visible.*
    Read {
        /// Variable to load.
        var: VarId,
        /// Destination register.
        into: &'static str,
    },
    /// Store the value of a local expression into a shared variable.
    /// *Visible.*
    Write {
        /// Variable to store to.
        var: VarId,
        /// Value to store (locals/constants only).
        value: Expr,
    },
    /// Atomic read-modify-write on a shared variable. *Visible* — but a
    /// single indivisible operation, which is exactly what distinguishes a
    /// fixed kernel from its buggy load/compute/store expansion.
    Rmw {
        /// Variable to update.
        var: VarId,
        /// The operation to apply.
        op: RmwOp,
        /// Right-hand operand (locals/constants only).
        operand: Expr,
        /// Optional register receiving the old value.
        into: Option<&'static str>,
    },
    /// Atomic compare-and-swap. Stores `1` into `into` on success, `0` on
    /// failure; on failure the observed value is stored into
    /// `observed_into` when provided. *Visible.*
    Cas {
        /// Variable to update.
        var: VarId,
        /// Expected current value.
        expected: Expr,
        /// Replacement value.
        new: Expr,
        /// Register receiving the success flag.
        into: &'static str,
        /// Optional register receiving the observed value.
        observed_into: Option<&'static str>,
    },
    /// Acquire a mutex, blocking while it is held. *Visible.*
    Lock(MutexId),
    /// Release a mutex held by this thread. *Visible.* Releasing a mutex
    /// the thread does not hold is an execution error
    /// ([`crate::ExecError::UnlockNotHeld`]).
    Unlock(MutexId),
    /// Try to acquire a mutex without blocking; stores `1`/`0` into the
    /// register. *Visible.*
    TryLock {
        /// Mutex to try.
        mutex: MutexId,
        /// Register receiving the success flag.
        into: &'static str,
    },
    /// Acquire a reader-writer lock in shared (read) mode. *Visible.*
    RwRead(RwId),
    /// Acquire a reader-writer lock in exclusive (write) mode. *Visible.*
    RwWrite(RwId),
    /// Release a reader-writer lock held in either mode. *Visible.*
    RwUnlock(RwId),
    /// Atomically release `mutex` and block on `cond` until signalled;
    /// re-acquires `mutex` before continuing. The mutex must be held.
    /// *Visible.* Semantics follow POSIX: wakeups only happen via
    /// [`Stmt::Signal`]/[`Stmt::Broadcast`] (the simulator does not inject
    /// spurious wakeups, so a lost signal deterministically deadlocks —
    /// which is precisely the missed-notification bug class).
    Wait {
        /// Condition variable to wait on.
        cond: CondId,
        /// Associated mutex, released while waiting.
        mutex: MutexId,
    },
    /// Wake one waiter of a condition variable (FIFO). *Visible.*
    Signal(CondId),
    /// Wake all waiters of a condition variable. *Visible.*
    Broadcast(CondId),
    /// Decrement a semaphore, blocking while its count is zero. *Visible.*
    SemAcquire(SemId),
    /// Increment a semaphore, waking one blocked acquirer. *Visible.*
    SemRelease(SemId),
    /// Start a thread that was declared with
    /// [`crate::ProgramBuilder::thread_deferred`]. *Visible.*
    Spawn(ThreadId),
    /// Block until the given thread has finished. *Visible.*
    Join(ThreadId),
    /// Set a local register from a local expression. *Local.*
    LocalSet {
        /// Destination register.
        name: &'static str,
        /// Value (locals/constants only).
        value: Expr,
    },
    /// Branch on a local condition. *Local* (the branches may of course
    /// contain visible statements).
    If {
        /// Condition over locals.
        cond: Expr,
        /// Statements executed when the condition is non-zero.
        then_branch: Vec<Stmt>,
        /// Statements executed when the condition is zero.
        else_branch: Vec<Stmt>,
    },
    /// Loop while a local condition holds. *Local* at the test itself.
    While {
        /// Condition over locals.
        cond: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Check a local condition, failing the execution with
    /// [`crate::Outcome::AssertFailed`] when it is zero. *Visible* (an
    /// assertion models an observable crash site).
    Assert {
        /// Condition over locals.
        cond: Expr,
        /// Message reported when the assertion fails.
        msg: &'static str,
    },
    /// An input/output side effect (log write, file append, …). The `tag`
    /// names the effect; the executor appends it to the I/O journal.
    /// *Visible* and **irrevocable** — inside a transaction this is
    /// recorded as an obstacle, exactly the TM-applicability criterion of
    /// the study. *Visible.*
    Io {
        /// Label of the effect for the I/O journal.
        tag: &'static str,
    },
    /// Begin a transaction (word-based STM, lazy versioning). *Visible.*
    TxBegin,
    /// Abort the current transaction and restart it at the matching
    /// [`Stmt::TxBegin`] — Harris-style `retry` for conditional
    /// synchronization ("block" until a read-set variable changes; the
    /// simulator models it as bounded re-execution). *Visible.*
    TxRetry,
    /// Commit the current transaction, validating its read set; on
    /// conflict the transaction rolls back and restarts at the matching
    /// [`Stmt::TxBegin`]. *Visible.*
    TxCommit,
    /// A no-op scheduling point. *Visible.*
    Yield,
}

impl Stmt {
    /// Load `var` into register `into`.
    pub fn read(var: VarId, into: &'static str) -> Stmt {
        Stmt::Read { var, into }
    }

    /// Store `value` into `var`.
    pub fn write(var: VarId, value: impl Into<Expr>) -> Stmt {
        Stmt::Write {
            var,
            value: value.into(),
        }
    }

    /// Atomic `var += operand`, discarding the old value.
    pub fn fetch_add(var: VarId, operand: impl Into<Expr>) -> Stmt {
        Stmt::Rmw {
            var,
            op: RmwOp::FetchAdd,
            operand: operand.into(),
            into: None,
        }
    }

    /// Atomic `var -= operand`, discarding the old value.
    pub fn fetch_sub(var: VarId, operand: impl Into<Expr>) -> Stmt {
        Stmt::Rmw {
            var,
            op: RmwOp::FetchSub,
            operand: operand.into(),
            into: None,
        }
    }

    /// Atomic exchange, storing the old value into `into`.
    pub fn exchange(var: VarId, value: impl Into<Expr>, into: &'static str) -> Stmt {
        Stmt::Rmw {
            var,
            op: RmwOp::Exchange,
            operand: value.into(),
            into: Some(into),
        }
    }

    /// Compare-and-swap helper.
    pub fn cas(
        var: VarId,
        expected: impl Into<Expr>,
        new: impl Into<Expr>,
        into: &'static str,
    ) -> Stmt {
        Stmt::Cas {
            var,
            expected: expected.into(),
            new: new.into(),
            into,
            observed_into: None,
        }
    }

    /// Acquire `mutex`.
    pub fn lock(mutex: MutexId) -> Stmt {
        Stmt::Lock(mutex)
    }

    /// Release `mutex`.
    pub fn unlock(mutex: MutexId) -> Stmt {
        Stmt::Unlock(mutex)
    }

    /// Set register `name` to `value`.
    pub fn local(name: &'static str, value: impl Into<Expr>) -> Stmt {
        Stmt::LocalSet {
            name,
            value: value.into(),
        }
    }

    /// Branch on `cond`.
    pub fn if_else(cond: Expr, then_branch: Vec<Stmt>, else_branch: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        }
    }

    /// Branch on `cond` with no else-branch.
    pub fn if_then(cond: Expr, then_branch: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then_branch,
            else_branch: Vec::new(),
        }
    }

    /// Loop while `cond` holds.
    pub fn while_loop(cond: Expr, body: Vec<Stmt>) -> Stmt {
        Stmt::While { cond, body }
    }

    /// Assert a local condition.
    pub fn assert(cond: Expr, msg: &'static str) -> Stmt {
        Stmt::Assert { cond, msg }
    }

    /// Record an I/O side effect.
    pub fn io(tag: &'static str) -> Stmt {
        Stmt::Io { tag }
    }

    /// Returns `true` for statements that are purely thread-local (never a
    /// scheduling point by themselves).
    pub fn is_local(&self) -> bool {
        matches!(
            self,
            Stmt::LocalSet { .. } | Stmt::If { .. } | Stmt::While { .. }
        )
    }

    /// Walks this statement and its nested blocks, calling `f` on each.
    pub fn visit(&self, f: &mut dyn FnMut(&Stmt)) {
        f(self);
        match self {
            Stmt::If {
                then_branch,
                else_branch,
                ..
            } => {
                for s in then_branch.iter().chain(else_branch) {
                    s.visit(f);
                }
            }
            Stmt::While { body, .. } => {
                for s in body {
                    s.visit(f);
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn helpers_build_expected_variants() {
        assert_eq!(
            Stmt::read(VarId(1), "x"),
            Stmt::Read {
                var: VarId(1),
                into: "x"
            }
        );
        assert!(matches!(Stmt::write(VarId(0), 3), Stmt::Write { .. }));
        assert!(matches!(
            Stmt::fetch_add(VarId(0), 1),
            Stmt::Rmw {
                op: RmwOp::FetchAdd,
                into: None,
                ..
            }
        ));
        assert!(matches!(
            Stmt::exchange(VarId(0), 1, "old"),
            Stmt::Rmw {
                op: RmwOp::Exchange,
                into: Some("old"),
                ..
            }
        ));
    }

    #[test]
    fn locality_classification() {
        assert!(Stmt::local("x", 1).is_local());
        assert!(Stmt::if_then(Expr::lit(1), vec![]).is_local());
        assert!(Stmt::while_loop(Expr::lit(0), vec![]).is_local());
        assert!(!Stmt::read(VarId(0), "x").is_local());
        assert!(!Stmt::lock(MutexId(0)).is_local());
        assert!(!Stmt::Yield.is_local());
        assert!(!Stmt::assert(Expr::lit(1), "ok").is_local());
    }

    #[test]
    fn visit_reaches_nested_statements() {
        let s = Stmt::if_else(
            Expr::lit(1),
            vec![Stmt::while_loop(
                Expr::lit(0),
                vec![Stmt::read(VarId(0), "x")],
            )],
            vec![Stmt::write(VarId(1), 2)],
        );
        let mut reads = 0;
        let mut writes = 0;
        let mut total = 0;
        s.visit(&mut |st| {
            total += 1;
            match st {
                Stmt::Read { .. } => reads += 1,
                Stmt::Write { .. } => writes += 1,
                _ => {}
            }
        });
        assert_eq!(reads, 1);
        assert_eq!(writes, 1);
        assert_eq!(total, 4);
    }
}
