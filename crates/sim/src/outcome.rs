//! Terminal outcomes of a simulated execution.

use std::fmt;

use crate::error::ExecError;
use crate::ids::{CondId, MutexId, RwId, SemId, ThreadId};

/// What a blocked thread is waiting for, reported in
/// [`Outcome::Deadlock`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlockedOn {
    /// Waiting to acquire a mutex (including a self-deadlock re-lock).
    Mutex(MutexId),
    /// Waiting on a condition variable (no signal will ever arrive).
    Cond(CondId),
    /// Waiting to re-acquire the mutex after being signalled.
    CondReacquire(MutexId),
    /// Waiting to acquire a rwlock in read mode.
    RwRead(RwId),
    /// Waiting to acquire a rwlock in write mode.
    RwWrite(RwId),
    /// Waiting on a semaphore with count zero.
    Semaphore(SemId),
    /// Waiting for a thread that will never finish (or was never spawned).
    Join(ThreadId),
}

impl fmt::Display for BlockedOn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockedOn::Mutex(m) => write!(f, "lock {m}"),
            BlockedOn::Cond(c) => write!(f, "wait {c}"),
            BlockedOn::CondReacquire(m) => write!(f, "reacquire {m}"),
            BlockedOn::RwRead(rw) => write!(f, "rdlock {rw}"),
            BlockedOn::RwWrite(rw) => write!(f, "wrlock {rw}"),
            BlockedOn::Semaphore(s) => write!(f, "acquire {s}"),
            BlockedOn::Join(t) => write!(f, "join {t}"),
        }
    }
}

/// The classified result of running a [`crate::Program`] to termination
/// (or to a resource bound).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// All threads finished and every final assertion held.
    Ok,
    /// An in-thread [`crate::Stmt::Assert`] or a final assertion failed.
    AssertFailed {
        /// Thread that failed the assertion; `None` for final assertions.
        thread: Option<ThreadId>,
        /// The assertion message.
        msg: &'static str,
    },
    /// No thread is enabled but not all threads have finished.
    Deadlock {
        /// Every unfinished thread and what it is blocked on.
        blocked: Vec<(ThreadId, BlockedOn)>,
    },
    /// The execution exceeded the step budget (livelock or just a long
    /// run; the explorer reports these separately rather than guessing).
    StepLimit,
    /// A transaction aborted more times than the retry budget allows.
    TxRetryLimit {
        /// The thread whose transaction kept aborting.
        thread: ThreadId,
    },
    /// A runtime misuse of a synchronization object (models a crash).
    Misuse {
        /// The offending thread.
        thread: ThreadId,
        /// What went wrong.
        error: ExecError,
    },
}

impl Outcome {
    /// `true` for [`Outcome::Ok`].
    pub fn is_ok(&self) -> bool {
        matches!(self, Outcome::Ok)
    }

    /// `true` for any outcome that manifests a bug or crash
    /// (assertion failure, deadlock, misuse). Step/retry limits are *not*
    /// failures: they are exploration artifacts.
    pub fn is_failure(&self) -> bool {
        matches!(
            self,
            Outcome::AssertFailed { .. } | Outcome::Deadlock { .. } | Outcome::Misuse { .. }
        )
    }

    /// `true` for [`Outcome::Deadlock`].
    pub fn is_deadlock(&self) -> bool {
        matches!(self, Outcome::Deadlock { .. })
    }
}

impl fmt::Display for Outcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Outcome::Ok => write!(f, "ok"),
            Outcome::AssertFailed { thread, msg } => match thread {
                Some(t) => write!(f, "assert failed in {t}: {msg}"),
                None => write!(f, "final assert failed: {msg}"),
            },
            Outcome::Deadlock { blocked } => {
                write!(f, "deadlock [")?;
                for (i, (t, on)) in blocked.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t} blocked on {on}")?;
                }
                write!(f, "]")
            }
            Outcome::StepLimit => write!(f, "step limit exceeded"),
            Outcome::TxRetryLimit { thread } => {
                write!(f, "transaction retry limit exceeded in {thread}")
            }
            Outcome::Misuse { thread, error } => write!(f, "misuse in {thread}: {error}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_helpers() {
        assert!(Outcome::Ok.is_ok());
        assert!(!Outcome::Ok.is_failure());
        let af = Outcome::AssertFailed {
            thread: Some(ThreadId(0)),
            msg: "boom",
        };
        assert!(af.is_failure());
        assert!(!af.is_deadlock());
        let dl = Outcome::Deadlock {
            blocked: vec![(ThreadId(0), BlockedOn::Mutex(MutexId(0)))],
        };
        assert!(dl.is_failure());
        assert!(dl.is_deadlock());
        assert!(!Outcome::StepLimit.is_failure());
        assert!(!Outcome::TxRetryLimit {
            thread: ThreadId(0)
        }
        .is_failure());
    }

    #[test]
    fn display_mentions_participants() {
        let dl = Outcome::Deadlock {
            blocked: vec![
                (ThreadId(0), BlockedOn::Mutex(MutexId(1))),
                (ThreadId(1), BlockedOn::Mutex(MutexId(0))),
            ],
        };
        let s = dl.to_string();
        assert!(s.contains("t0 blocked on lock m1"));
        assert!(s.contains("t1 blocked on lock m0"));
    }

    #[test]
    fn blocked_on_display() {
        assert_eq!(BlockedOn::Join(ThreadId(2)).to_string(), "join t2");
        assert_eq!(BlockedOn::Semaphore(SemId(0)).to_string(), "acquire s0");
        assert_eq!(BlockedOn::Cond(CondId(1)).to_string(), "wait c1");
    }
}
