//! Runtime state of shared objects (variables, mutexes, condition
//! variables, rwlocks, semaphores).
//!
//! All state is plain cloneable data so the model checker can snapshot an
//! [`crate::Executor`] at a branch point and restore it in O(state size).

use std::collections::VecDeque;

use crate::ids::ThreadId;
use crate::trace::VectorClock;

/// A mutex: an owner and a FIFO of blocked acquirers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct MutexState {
    pub owner: Option<ThreadId>,
    /// Threads blocked in `Lock`; kept for deadlock reporting (enabledness
    /// is recomputed, so this is informational bookkeeping).
    pub waiters: VecDeque<ThreadId>,
    /// Vector clock released with the last unlock (happens-before edge).
    pub clock: VectorClock,
}

impl MutexState {
    pub fn new(n_threads: usize) -> MutexState {
        MutexState {
            owner: None,
            waiters: VecDeque::new(),
            clock: VectorClock::new(n_threads),
        }
    }
}

/// A condition variable: a FIFO of waiting threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CondState {
    pub waiters: VecDeque<ThreadId>,
    /// Clock joined in from signallers, delivered to woken waiters.
    pub clock: VectorClock,
}

impl CondState {
    pub fn new(n_threads: usize) -> CondState {
        CondState {
            waiters: VecDeque::new(),
            clock: VectorClock::new(n_threads),
        }
    }
}

/// A reader-writer lock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct RwState {
    pub writer: Option<ThreadId>,
    pub readers: Vec<ThreadId>,
    /// Clock of the last write-mode release (read-release also joins in,
    /// conservatively, so rw-protected data carries happens-before).
    pub clock: VectorClock,
}

impl RwState {
    pub fn new(n_threads: usize) -> RwState {
        RwState {
            writer: None,
            readers: Vec::new(),
            clock: VectorClock::new(n_threads),
        }
    }

    pub fn can_read(&self, by: ThreadId) -> bool {
        self.writer.is_none() && !self.readers.contains(&by)
    }

    /// Write admission is a property of the lock alone: free of any
    /// writer and of all readers. (A `self.writer != Some(by)` clause
    /// once rode along here; it was dead after `writer.is_none()`.)
    pub fn can_write(&self, _by: ThreadId) -> bool {
        self.writer.is_none() && self.readers.is_empty()
    }

    #[cfg_attr(not(test), allow(dead_code))]
    pub fn holds(&self, by: ThreadId) -> bool {
        self.writer == Some(by) || self.readers.contains(&by)
    }
}

/// A counting semaphore.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SemState {
    pub count: i64,
    pub waiters: VecDeque<ThreadId>,
    pub clock: VectorClock,
}

impl SemState {
    pub fn new(n_threads: usize, initial: i64) -> SemState {
        SemState {
            count: initial,
            waiters: VecDeque::new(),
            clock: VectorClock::new(n_threads),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rw_admission_rules() {
        let mut rw = RwState::new(2);
        let t0 = ThreadId::from_index(0);
        let t1 = ThreadId::from_index(1);
        assert!(rw.can_read(t0));
        assert!(rw.can_write(t0));
        rw.readers.push(t0);
        assert!(rw.can_read(t1));
        assert!(!rw.can_write(t1));
        assert!(!rw.can_read(t0), "non-reentrant");
        assert!(rw.holds(t0));
        assert!(!rw.holds(t1));
        rw.readers.clear();
        rw.writer = Some(t0);
        assert!(!rw.can_read(t1));
        assert!(!rw.can_write(t1));
        assert!(rw.holds(t0));
    }

    #[test]
    fn fresh_objects_are_idle() {
        let m = MutexState::new(3);
        assert_eq!(m.owner, None);
        assert!(m.waiters.is_empty());
        let s = SemState::new(3, 2);
        assert_eq!(s.count, 2);
        let c = CondState::new(3);
        assert!(c.waiters.is_empty());
    }
}
