//! Error types for program construction and execution.

use std::error::Error as StdError;
use std::fmt;

use crate::ids::{MutexId, RwId, ThreadId};

/// Error returned by [`crate::ProgramBuilder::build`] when a program is
/// structurally invalid.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// A thread body (or an expression reachable from one) mentions a
    /// shared variable through [`crate::Expr::Shared`]; shared reads must
    /// be explicit [`crate::Stmt::Read`] statements.
    SharedExprInThreadBody {
        /// Thread whose body is invalid.
        thread: ThreadId,
    },
    /// A program must contain at least one thread.
    NoThreads,
    /// `TxCommit` without a matching `TxBegin`, or a block ends inside a
    /// transaction, or transactions are nested.
    UnbalancedTransaction {
        /// Thread whose body is invalid.
        thread: ThreadId,
    },
    /// A blocking synchronization statement (lock, wait, join, …) appears
    /// inside a transaction; the simulated STM only supports memory
    /// operations, assertions and (flagged-irrevocable) I/O.
    SyncInsideTransaction {
        /// Thread whose body is invalid.
        thread: ThreadId,
    },
    /// A statement refers to an object id not created by this builder.
    UnknownObject {
        /// Thread whose body is invalid.
        thread: ThreadId,
        /// Description of the missing object, e.g. `"v17"`.
        object: String,
    },
    /// `Spawn` targets a thread that is started automatically.
    SpawnOfAutoStartThread {
        /// Thread containing the spawn.
        thread: ThreadId,
        /// The auto-start target.
        target: ThreadId,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::SharedExprInThreadBody { thread } => {
                write!(
                    f,
                    "thread {thread} uses Expr::Shared in its body; use Stmt::Read instead"
                )
            }
            BuildError::NoThreads => write!(f, "program has no threads"),
            BuildError::UnbalancedTransaction { thread } => {
                write!(f, "thread {thread} has unbalanced or nested transactions")
            }
            BuildError::SyncInsideTransaction { thread } => {
                write!(
                    f,
                    "thread {thread} performs blocking synchronization inside a transaction"
                )
            }
            BuildError::UnknownObject { thread, object } => {
                write!(f, "thread {thread} refers to unknown object {object}")
            }
            BuildError::SpawnOfAutoStartThread { thread, target } => {
                write!(f, "thread {thread} spawns auto-start thread {target}")
            }
        }
    }
}

impl StdError for BuildError {}

/// A runtime misuse of a synchronization object, reported as
/// [`crate::Outcome::Misuse`].
///
/// These model crashes/undefined behaviour in the original programs (e.g.
/// unlocking a mutex the thread does not hold). Note that *re-locking* a
/// mutex the thread already holds is **not** an error: like a default
/// (non-recursive) POSIX mutex it blocks forever, producing the
/// single-thread self-deadlocks that make up 22% of the studied deadlock
/// bugs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// Unlocked a mutex not held by the thread.
    UnlockNotHeld {
        /// The mutex.
        mutex: MutexId,
    },
    /// Released a rwlock the thread does not hold in any mode.
    RwUnlockNotHeld {
        /// The rwlock.
        rw: RwId,
    },
    /// Waited on a condition variable without holding the mutex.
    WaitWithoutMutex {
        /// The mutex that should have been held.
        mutex: MutexId,
    },
    /// Spawned a thread that had already been started.
    DoubleSpawn {
        /// The target thread.
        target: ThreadId,
    },
    /// A thread exceeded the local-computation fuel (a pure-local infinite
    /// loop that never reaches a scheduling point).
    LocalFuelExhausted,
    /// The scheduler asked a disabled thread to run (internal misuse of
    /// the [`crate::Executor`] API).
    ThreadNotEnabled {
        /// The thread that was not enabled.
        thread: ThreadId,
    },
    /// Acquired a read lock while already holding the same rwlock
    /// (the simulator's rwlocks are non-reentrant).
    RwReentrant {
        /// The rwlock.
        rw: RwId,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::UnlockNotHeld { mutex } => {
                write!(f, "unlock of {mutex} which is not held")
            }
            ExecError::RwUnlockNotHeld { rw } => {
                write!(f, "rwunlock of {rw} which is not held")
            }
            ExecError::WaitWithoutMutex { mutex } => {
                write!(f, "wait without holding {mutex}")
            }
            ExecError::DoubleSpawn { target } => write!(f, "double spawn of {target}"),
            ExecError::LocalFuelExhausted => {
                write!(
                    f,
                    "local computation fuel exhausted (pure-local infinite loop)"
                )
            }
            ExecError::ThreadNotEnabled { thread } => {
                write!(f, "scheduled thread {thread} is not enabled")
            }
            ExecError::RwReentrant { rw } => write!(f, "reentrant acquisition of {rw}"),
        }
    }
}

impl StdError for ExecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_lowercase_and_informative() {
        let e = BuildError::NoThreads;
        assert_eq!(e.to_string(), "program has no threads");
        let e = ExecError::UnlockNotHeld { mutex: MutexId(2) };
        assert!(e.to_string().contains("m2"));
        let e = ExecError::ThreadNotEnabled {
            thread: ThreadId(1),
        };
        assert!(e.to_string().contains("t1"));
    }

    #[test]
    fn errors_implement_std_error() {
        fn takes_err<E: StdError>(_: E) {}
        takes_err(BuildError::NoThreads);
        takes_err(ExecError::LocalFuelExhausted);
    }
}
