//! The unified frontier engine.
//!
//! The serial [`crate::Explorer`], the workers of the parallel
//! [`crate::ParExplorer`], and — through both — every rung of the
//! [`crate::BudgetedExplorer`] degradation ladder drive the same DFS
//! core. This module holds the pieces they share, so search semantics
//! live in exactly one place:
//!
//! - [`Mode`]: how the requested limits resolve into the effective
//!   reductions (dedup / sleep sets / DPOR), including which
//!   combinations are unsound and silently disable each other.
//! - [`advance`] / [`advance_dpor`]: the per-child forward run — step
//!   the chosen thread, then keep stepping while there is no real
//!   scheduling choice, classifying the edge as a terminal, a new
//!   branch point, or (classic sleep sets) a redundant subtree.
//! - [`budget_stop`]: the loop-top wall-deadline / schedule-budget
//!   check, in the one order both drivers must agree on.
//! - [`derive_truncation`]: the truncation-reason priority.
//!
//! Because the serial DFS stack and the parallel coordinator's commit
//! walk both call these helpers with the same inputs in the same
//! order, their reports are bit-identical — the serial-preorder
//! contract the `par_equivalence` and `dpor_equivalence` suites pin.

use lfm_obs::Stopwatch;

use crate::exec::Executor;
use crate::explore::{ExploreLimits, Truncation};
use crate::footprint::Footprint;
use crate::ids::ThreadId;
use crate::outcome::Outcome;

/// The effective reductions for a run, resolved from the requested
/// [`ExploreLimits`] and whether a fault plan is installed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Mode {
    /// State deduplication by [`Executor::state_key`].
    pub dedup: bool,
    /// Sleep-set reduction (classic, or composed with DPOR).
    pub sleep: bool,
    /// Source-set dynamic partial-order reduction.
    pub dpor: bool,
    /// Invisible-step fusion: run the chosen thread through consecutive
    /// invisible ops without creating branch points.
    pub fuse: bool,
}

impl Mode {
    /// Resolves the limits. DPOR's backtracking argument assumes every
    /// schedule in a step's equivalence class behaves identically —
    /// step-indexed chaos decisions break that — and that no enabled
    /// child is pruned for non-commutativity reasons — the preemption
    /// bound does exactly that — so either silently disables it, the
    /// same contract sleep sets already have with chaos. State dedup is
    /// unsound *under* DPOR: a state reached along a different prefix
    /// carries a different race log, and skipping its subtree would
    /// skip the backtrack points only that prefix discovers.
    ///
    /// Step fusion is likewise silently disabled under chaos: fault
    /// decisions are step-indexed, so inserting an invisible step at a
    /// different position changes which later ops draw which faults,
    /// breaking the commutation argument. Fusion *stays on* under a
    /// preemption bound — bounded search is already an approximation
    /// (it enumerates schedules, not classes), and fusing only forces
    /// free (non-preemptive) continuations of the running thread.
    pub fn resolve(limits: &ExploreLimits, chaos: bool) -> Mode {
        let dpor = limits.dpor && !chaos && limits.max_preemptions.is_none();
        Mode {
            dedup: limits.dedup_states && !dpor,
            sleep: limits.sleep_sets && !chaos,
            dpor,
            fuse: limits.fuse && !chaos,
        }
    }
}

/// Where one child edge of the search tree ends.
pub(crate) enum Advance {
    /// The execution finished (or hit the step budget) with `Outcome`.
    Terminal(Executor, Outcome),
    /// A state with more than one enabled thread was reached.
    Branch(Executor, Vec<ThreadId>),
    /// Classic sleep sets proved the whole subtree redundant.
    Redundant,
}

/// Steps `choice` on `child`, then runs forward while there is no real
/// scheduling choice, maintaining the classic sleep set in
/// `child_sleep`: sleepers that stop being enabled are dropped, a state
/// whose every enabled thread is asleep ends the edge as
/// [`Advance::Redundant`], and a forced step wakes the sleepers it
/// conflicts with.
///
/// With `fuse` on, "no real scheduling choice" extends past sole-enabled
/// states: while the *last-stepped* thread's next op is invisible
/// ([`Footprint::is_invisible`] — touches nothing, cannot abort), the
/// edge keeps stepping that thread instead of branching. An invisible op
/// is a global both-mover, so every interleaving that delays it reaches
/// the same states through an equivalent trace; executing it eagerly
/// prunes whole subtrees without losing a single outcome. Fused steps
/// are counted into `fused`; sleepers never wake on them (an empty
/// footprint conflicts with nothing).
pub(crate) fn advance(
    mut child: Executor,
    choice: ThreadId,
    max_steps: usize,
    sleep_on: bool,
    child_sleep: &mut Vec<ThreadId>,
    fuse: bool,
    fused: &mut u64,
) -> Advance {
    child
        .step(choice)
        .expect("explorer only chooses enabled threads");
    let mut cur = choice;
    loop {
        if let Some(outcome) = child.outcome().cloned() {
            return Advance::Terminal(child, outcome);
        }
        if child.steps() >= max_steps {
            return Advance::Terminal(child, Outcome::StepLimit);
        }
        let enabled = child.enabled();
        if sleep_on {
            child_sleep.retain(|t| enabled.contains(t));
            if !enabled.is_empty() && enabled.iter().all(|t| child_sleep.contains(t)) {
                return Advance::Redundant;
            }
        }
        if enabled.len() == 1 {
            cur = enabled[0];
            if sleep_on && !child_sleep.is_empty() {
                // Wake sleepers whose op conflicts with the forced
                // step we are about to take.
                let fp = child.next_footprint(cur);
                child_sleep.retain(|&t| match (&fp, child.next_footprint(t)) {
                    (Some(a), Some(b)) => a.independent(&b),
                    _ => false,
                });
            }
            child.step(cur).expect("sole enabled thread");
        } else if fuse
            && child
                .next_footprint(cur)
                .is_some_and(|fp| fp.is_invisible())
        {
            // Invisible next op on the running thread: fuse it into
            // this edge. The op touches nothing and cannot block or
            // abort, so the thread is enabled and the step succeeds.
            *fused += 1;
            child.step(cur).expect("an invisible op never blocks");
        } else {
            return Advance::Branch(child, enabled);
        }
    }
}

/// The DPOR-mode forward run: like [`advance`], but instead of sleep
/// bookkeeping it records every forced *and fused* step's
/// `(thread, footprint)` into `forced` — the driver commits them to the
/// race log, and the frame-side sleep sets are filtered against them.
/// Footprints are captured *before* stepping (a step consumes the op it
/// describes), and they are the real next-op footprints, never a
/// fabricated default: an enabled thread always has a next op, and the
/// race scan's exactness depends on logging what that op touches. A
/// fused step enters the log with its (empty) invisible footprint, so
/// it contributes a program-order clock edge and no races.
pub(crate) fn advance_dpor(
    mut child: Executor,
    choice: ThreadId,
    max_steps: usize,
    fuse: bool,
    forced: &mut Vec<(ThreadId, Footprint)>,
    fused: &mut u64,
) -> Advance {
    child
        .step(choice)
        .expect("explorer only chooses enabled threads");
    let mut cur = choice;
    loop {
        if let Some(outcome) = child.outcome().cloned() {
            return Advance::Terminal(child, outcome);
        }
        if child.steps() >= max_steps {
            return Advance::Terminal(child, Outcome::StepLimit);
        }
        let enabled = child.enabled();
        if enabled.len() == 1 {
            cur = enabled[0];
            let fp = child
                .next_footprint(cur)
                .expect("an enabled thread has a next op");
            forced.push((cur, fp));
            child.step(cur).expect("sole enabled thread");
        } else if fuse {
            match child.next_footprint(cur) {
                Some(fp) if fp.is_invisible() => {
                    forced.push((cur, fp));
                    *fused += 1;
                    child.step(cur).expect("an invisible op never blocks");
                }
                _ => return Advance::Branch(child, enabled),
            }
        } else {
            return Advance::Branch(child, enabled);
        }
    }
}

/// Pending next-op footprints of every thread a terminal state cut off
/// before it could run, in thread order. Both DPOR drivers feed these
/// to [`crate::dpor::Dpor::pending_race`] when an edge ends in a
/// terminal: a deadlocked or aborted execution leaves ops that never
/// commit a step yet still race with the executed path, and the fixed
/// thread order keeps the serial and parallel walks bit-identical.
pub(crate) fn pending_ops(exec: &Executor) -> Vec<(ThreadId, Footprint)> {
    (0..exec.program().n_threads())
        .map(ThreadId::from_index)
        .filter_map(|t| exec.next_footprint(t).map(|fp| (t, fp)))
        .collect()
}

/// Why the loop-top budget check stopped the search.
pub(crate) enum Stop {
    /// The wall-clock deadline elapsed.
    Deadline,
    /// The schedule budget is exhausted.
    Budget,
}

/// The loop-top stop check, in the one order every driver agrees on:
/// the wall deadline first, then the schedule budget.
pub(crate) fn budget_stop(
    limits: &ExploreLimits,
    stopwatch: &Stopwatch,
    schedules_run: u64,
) -> Option<Stop> {
    if let Some(deadline) = limits.deadline {
        if stopwatch.elapsed() >= deadline {
            return Some(Stop::Deadline);
        }
    }
    if schedules_run >= limits.max_schedules {
        return Some(Stop::Budget);
    }
    None
}

/// The truncation-reason priority every driver reports with: a wall
/// deadline outranks the schedule budget, which outranks the
/// per-execution step budget, which outranks the preemption bound.
pub(crate) fn derive_truncation(
    deadline_hit: bool,
    truncated: bool,
    step_limit: u64,
    preemption_limited: u64,
) -> Option<Truncation> {
    if deadline_hit {
        Some(Truncation::WallDeadline)
    } else if truncated {
        Some(Truncation::ScheduleBudget)
    } else if step_limit > 0 {
        Some(Truncation::StepBudget)
    } else if preemption_limited > 0 {
        Some(Truncation::PreemptionBound)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits(dpor: bool, chaos_like: Option<u32>) -> ExploreLimits {
        ExploreLimits {
            dpor,
            dedup_states: true,
            sleep_sets: true,
            max_preemptions: chaos_like,
            ..ExploreLimits::default()
        }
    }

    #[test]
    fn dpor_disables_dedup_and_survives_sleep() {
        let m = Mode::resolve(&limits(true, None), false);
        assert!(m.dpor && m.sleep && !m.dedup);
    }

    #[test]
    fn chaos_and_preemption_bounds_disable_dpor() {
        let m = Mode::resolve(&limits(true, None), true);
        assert!(!m.dpor && !m.sleep && m.dedup);
        let m = Mode::resolve(&limits(true, Some(2)), false);
        assert!(!m.dpor && m.sleep && m.dedup);
    }

    #[test]
    fn classic_mode_passes_limits_through() {
        let m = Mode::resolve(&limits(false, None), false);
        assert!(!m.dpor && m.sleep && m.dedup);
    }

    #[test]
    fn truncation_priority_is_stable() {
        use Truncation::*;
        assert_eq!(derive_truncation(true, true, 1, 1), Some(WallDeadline));
        assert_eq!(derive_truncation(false, true, 1, 1), Some(ScheduleBudget));
        assert_eq!(derive_truncation(false, false, 1, 1), Some(StepBudget));
        assert_eq!(derive_truncation(false, false, 0, 1), Some(PreemptionBound));
        assert_eq!(derive_truncation(false, false, 0, 0), None);
    }
}
