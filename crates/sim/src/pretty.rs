//! Pseudo-code rendering of programs.
//!
//! The study's figures are annotated code excerpts of the buggy regions.
//! [`pseudocode`] renders a [`Program`] in that style — C-flavoured
//! pseudo-code with resolved object names — so the harness can print a
//! kernel the way the paper prints a figure.

use std::fmt::Write as _;

use crate::program::Program;
use crate::stmt::{RmwOp, Stmt};

/// Renders a whole program as pseudo-code.
pub fn pseudocode(program: &Program) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "// program: {}", program.name());
    let mut decls: Vec<String> = Vec::new();
    for i in 0..program.n_vars() {
        let var = crate::ids::VarId::from_index(i);
        decls.push(format!(
            "int {} = {};",
            program.var_name(var),
            program.var_init()[i]
        ));
    }
    for i in 0..program.n_mutexes() {
        decls.push(format!("mutex m{i};"));
    }
    for i in 0..program.n_conds() {
        decls.push(format!("cond c{i};"));
    }
    for i in 0..program.n_rws() {
        decls.push(format!("rwlock rw{i};"));
    }
    for (i, init) in program.sem_init().iter().enumerate() {
        decls.push(format!("semaphore s{i} = {init};"));
    }
    if !decls.is_empty() {
        let _ = writeln!(out, "{}", decls.join("\n"));
    }
    for thread in program.threads() {
        let _ = writeln!(
            out,
            "\nthread {}() {{{}",
            thread.name(),
            if thread.auto_start() {
                ""
            } else {
                "  // deferred"
            }
        );
        render_block(program, thread.body(), 1, &mut out);
        let _ = writeln!(out, "}}");
    }
    for (cond, msg) in program.final_asserts() {
        let _ = writeln!(out, "\nfinal_assert({cond});  // {msg}");
    }
    out
}

fn indent(depth: usize) -> String {
    "    ".repeat(depth)
}

fn render_block(program: &Program, block: &[Stmt], depth: usize, out: &mut String) {
    for stmt in block {
        render_stmt(program, stmt, depth, out);
    }
}

fn render_stmt(program: &Program, stmt: &Stmt, depth: usize, out: &mut String) {
    let pad = indent(depth);
    let var_name = |v: &crate::ids::VarId| program.var_name(*v);
    match stmt {
        Stmt::Read { var, into } => {
            let _ = writeln!(out, "{pad}{into} = {};", var_name(var));
        }
        Stmt::Write { var, value } => {
            let _ = writeln!(out, "{pad}{} = {value};", var_name(var));
        }
        Stmt::Rmw {
            var,
            op,
            operand,
            into,
        } => {
            let call = match op {
                RmwOp::FetchAdd => format!("fetch_add(&{}, {operand})", var_name(var)),
                RmwOp::FetchSub => format!("fetch_sub(&{}, {operand})", var_name(var)),
                RmwOp::Exchange => format!("exchange(&{}, {operand})", var_name(var)),
                RmwOp::FetchMax => format!("fetch_max(&{}, {operand})", var_name(var)),
                RmwOp::FetchMin => format!("fetch_min(&{}, {operand})", var_name(var)),
            };
            match into {
                Some(into) => {
                    let _ = writeln!(out, "{pad}{into} = {call};");
                }
                None => {
                    let _ = writeln!(out, "{pad}{call};");
                }
            }
        }
        Stmt::Cas {
            var,
            expected,
            new,
            into,
            ..
        } => {
            let _ = writeln!(
                out,
                "{pad}{into} = cas(&{}, {expected}, {new});",
                var_name(var)
            );
        }
        Stmt::Lock(m) => {
            let _ = writeln!(out, "{pad}lock({m});");
        }
        Stmt::Unlock(m) => {
            let _ = writeln!(out, "{pad}unlock({m});");
        }
        Stmt::TryLock { mutex, into } => {
            let _ = writeln!(out, "{pad}{into} = try_lock({mutex});");
        }
        Stmt::RwRead(rw) => {
            let _ = writeln!(out, "{pad}read_lock({rw});");
        }
        Stmt::RwWrite(rw) => {
            let _ = writeln!(out, "{pad}write_lock({rw});");
        }
        Stmt::RwUnlock(rw) => {
            let _ = writeln!(out, "{pad}rw_unlock({rw});");
        }
        Stmt::Wait { cond, mutex } => {
            let _ = writeln!(out, "{pad}wait({cond}, {mutex});");
        }
        Stmt::Signal(c) => {
            let _ = writeln!(out, "{pad}signal({c});");
        }
        Stmt::Broadcast(c) => {
            let _ = writeln!(out, "{pad}broadcast({c});");
        }
        Stmt::SemAcquire(s) => {
            let _ = writeln!(out, "{pad}sem_acquire({s});");
        }
        Stmt::SemRelease(s) => {
            let _ = writeln!(out, "{pad}sem_release({s});");
        }
        Stmt::Spawn(t) => {
            let _ = writeln!(out, "{pad}spawn({});", program.threads()[t.index()].name());
        }
        Stmt::Join(t) => {
            let _ = writeln!(out, "{pad}join({});", program.threads()[t.index()].name());
        }
        Stmt::LocalSet { name, value } => {
            let _ = writeln!(out, "{pad}{name} = {value};");
        }
        Stmt::If {
            cond,
            then_branch,
            else_branch,
        } => {
            let _ = writeln!(out, "{pad}if ({cond}) {{");
            render_block(program, then_branch, depth + 1, out);
            if else_branch.is_empty() {
                let _ = writeln!(out, "{pad}}}");
            } else {
                let _ = writeln!(out, "{pad}}} else {{");
                render_block(program, else_branch, depth + 1, out);
                let _ = writeln!(out, "{pad}}}");
            }
        }
        Stmt::While { cond, body } => {
            let _ = writeln!(out, "{pad}while ({cond}) {{");
            render_block(program, body, depth + 1, out);
            let _ = writeln!(out, "{pad}}}");
        }
        Stmt::Assert { cond, msg } => {
            let _ = writeln!(out, "{pad}assert({cond});  // {msg}");
        }
        Stmt::Io { tag } => {
            let _ = writeln!(out, "{pad}io(\"{tag}\");");
        }
        Stmt::TxBegin => {
            let _ = writeln!(out, "{pad}atomic {{");
        }
        Stmt::TxCommit => {
            let _ = writeln!(out, "{pad}}} // commit");
        }
        Stmt::TxRetry => {
            let _ = writeln!(out, "{pad}retry;");
        }
        Stmt::Yield => {
            let _ = writeln!(out, "{pad}yield();");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::program::ProgramBuilder;

    #[test]
    fn renders_the_racy_counter_readably() {
        let mut b = ProgramBuilder::new("racy");
        let v = b.var("counter", 0);
        let m = b.mutex();
        b.thread(
            "worker",
            vec![
                Stmt::lock(m),
                Stmt::read(v, "tmp"),
                Stmt::write(v, Expr::local("tmp") + Expr::lit(1)),
                Stmt::unlock(m),
            ],
        );
        b.final_assert(Expr::shared(v).eq(Expr::lit(1)), "kept");
        let p = b.build().unwrap();
        let code = pseudocode(&p);
        for needle in [
            "// program: racy",
            "int counter = 0;",
            "mutex m0;",
            "thread worker() {",
            "lock(m0);",
            "tmp = counter;",
            "counter = (tmp + 1);",
            "unlock(m0);",
            "final_assert((v0 == 1));  // kept",
        ] {
            assert!(code.contains(needle), "missing {needle:?} in:\n{code}");
        }
    }

    #[test]
    fn renders_control_flow_and_transactions() {
        let mut b = ProgramBuilder::new("tx");
        let v = b.var("x", 0);
        b.thread(
            "t",
            vec![
                Stmt::TxBegin,
                Stmt::read(v, "a"),
                Stmt::if_else(
                    Expr::local("a").eq(Expr::lit(0)),
                    vec![Stmt::TxRetry],
                    vec![Stmt::write(v, 2)],
                ),
                Stmt::TxCommit,
                Stmt::while_loop(Expr::local("a").lt(Expr::lit(1)), vec![Stmt::Yield]),
            ],
        );
        let p = b.build().unwrap();
        let code = pseudocode(&p);
        for needle in [
            "atomic {",
            "retry;",
            "} else {",
            "while ((a < 1)) {",
            "yield();",
            "} // commit",
        ] {
            assert!(code.contains(needle), "missing {needle:?} in:\n{code}");
        }
    }

    #[test]
    fn renders_sync_objects_and_threads() {
        let mut b = ProgramBuilder::new("sync");
        let v = b.var("x", 0);
        let c = b.cond();
        let m = b.mutex();
        let s = b.semaphore(2);
        let rw = b.rwlock();
        let child = b.thread_deferred("child", vec![Stmt::fetch_add(v, 1)]);
        b.thread(
            "parent",
            vec![
                Stmt::Spawn(child),
                Stmt::lock(m),
                Stmt::Wait { cond: c, mutex: m },
                Stmt::unlock(m),
                Stmt::SemAcquire(s),
                Stmt::RwRead(rw),
                Stmt::RwUnlock(rw),
                Stmt::SemRelease(s),
                Stmt::Join(child),
                Stmt::io("flush"),
            ],
        );
        let p = b.build().unwrap();
        let code = pseudocode(&p);
        for needle in [
            "semaphore s0 = 2;",
            "rwlock rw0;",
            "// deferred",
            "spawn(child);",
            "wait(c0, m0);",
            "sem_acquire(s0);",
            "read_lock(rw0);",
            "join(child);",
            "io(\"flush\");",
            "fetch_add(&x, 1);",
        ] {
            assert!(code.contains(needle), "missing {needle:?} in:\n{code}");
        }
    }
}
