//! Source-set dynamic partial-order reduction (DPOR).
//!
//! Full enumeration explores every interleaving; most differ only in
//! the order of *independent* steps and reach the same state. DPOR
//! (Flanagan & Godefroid 2005, refined by Abdulla et al. 2014's source
//! sets) prunes those: it explores one schedule, watches the executed
//! steps for *races* — pairs of dependent steps by different threads
//! with no happens-before path between them — and for each race adds
//! just enough alternatives to the *backtrack set* of the earlier
//! step's branch point to cover the reversed order. Branch children
//! never added to a backtrack set are provably redundant and are never
//! run.
//!
//! The machinery here is engine-agnostic: it owns the step log (with
//! vector clocks derived from the `footprint` dependence relation) and
//! the per-branch-point frames (enabled threads, their footprints,
//! backtrack/done/sleep sets), while the serial and parallel explorers
//! drive it through the same five calls: [`Dpor::push_frame`],
//! [`Dpor::select`], [`Dpor::commit_step`], [`Dpor::sleep_after`] and
//! [`Dpor::pop_frame`]. Because both drivers feed it the same enabled
//! orders and footprints, the selection sequence — and therefore the
//! merged report — is bit-identical between them.
//!
//! Sleep sets compose with the backtrack sets: a sleeping thread is a
//! child some ancestor sibling already covers, so [`Dpor::select`]
//! marks sleeping backtrack candidates done without exploring them,
//! and child sleep sets are the parent's survivors that commute with
//! everything executed along the edge ([`Dpor::child_sleep`]).

use crate::footprint::{Footprint, ObjKind};
use crate::ids::ThreadId;
use crate::trace::VectorClock;

/// One executed step on the current exploration path.
#[derive(Debug, Clone)]
pub(crate) struct LogEntry {
    /// Thread that took the step.
    pub thread: ThreadId,
    /// Footprint the step had at execution time.
    pub fp: Footprint,
    /// Vector clock of the step, including its own tick.
    pub clock: VectorClock,
    /// Stack index of the branch frame at whose state the step was
    /// chosen, or `None` for a forced step (single enabled thread).
    /// Races whose earlier step is forced need no backtrack addition:
    /// the classic rule would add "all enabled at the pre-state", and
    /// that set is exactly the thread that already ran.
    pub pre_frame: Option<usize>,
}

/// DPOR bookkeeping for one branch point (a state with more than one
/// enabled thread) on the DFS stack.
#[derive(Debug, Clone)]
pub(crate) struct DporFrame {
    /// Enabled threads at this state, in scheduler order.
    enabled: Vec<ThreadId>,
    /// Next-op footprint of each enabled thread, parallel to `enabled`.
    fps: Vec<Footprint>,
    /// Threads that must eventually be explored from this state. Seeded
    /// with the first awake enabled thread; races grow it.
    backtrack: Vec<ThreadId>,
    /// Threads already selected (or sleep-skipped) here. Always a
    /// subset of `backtrack`.
    done: Vec<ThreadId>,
    /// Sleeping threads: exploring them first from this state is
    /// redundant with a subtree an ancestor sibling owns. Always a
    /// subset of `enabled`.
    sleep: Vec<ThreadId>,
    /// Log length when the frame was created.
    base: usize,
}

/// The DPOR engine: step log plus the frame stack, kept in lockstep
/// with the driver's own branch stack (frame `i` here corresponds to
/// the driver's branch node `i`).
#[derive(Debug)]
pub(crate) struct Dpor {
    log: Vec<LogEntry>,
    frames: Vec<DporFrame>,
    n_threads: usize,
}

impl Dpor {
    pub fn new(n_threads: usize) -> Dpor {
        Dpor {
            log: Vec::new(),
            frames: Vec::new(),
            n_threads,
        }
    }

    /// Opens a frame for a branch state. `sleep` must be a subset of
    /// `enabled`, and at least one enabled thread must be awake (an
    /// all-asleep branch is redundant; the driver never opens it).
    /// Returns the frame's stack index.
    pub fn push_frame(
        &mut self,
        enabled: Vec<ThreadId>,
        fps: Vec<Footprint>,
        sleep: Vec<ThreadId>,
    ) -> usize {
        debug_assert_eq!(enabled.len(), fps.len());
        let seed = enabled.iter().copied().find(|t| !sleep.contains(t));
        debug_assert!(seed.is_some(), "all-asleep branch must not open a frame");
        self.frames.push(DporFrame {
            enabled,
            fps,
            backtrack: seed.into_iter().collect(),
            done: Vec::new(),
            sleep,
            base: self.log.len(),
        });
        self.frames.len() - 1
    }

    /// Picks the next child to explore from `frame`, which must be the
    /// top of the stack: the first enabled-order thread in the
    /// backtrack set and not yet done. Sleeping candidates are marked
    /// done without being explored; the count of those skips is
    /// returned so the driver can account them as sleep-set prunes.
    /// Truncates the log back to the frame's base first, discarding the
    /// previous sibling's steps.
    pub fn select(&mut self, frame: usize) -> (u64, Option<ThreadId>) {
        debug_assert_eq!(frame + 1, self.frames.len());
        self.log.truncate(self.frames[frame].base);
        let mut skipped = 0u64;
        loop {
            let f = &mut self.frames[frame];
            let next = f
                .enabled
                .iter()
                .copied()
                .find(|t| f.backtrack.contains(t) && !f.done.contains(t));
            let Some(t) = next else {
                return (skipped, None);
            };
            f.done.push(t);
            if f.sleep.contains(&t) {
                skipped += 1;
                continue;
            }
            return (skipped, Some(t));
        }
    }

    /// Appends an executed step to the log, computing its vector clock
    /// and processing every race it closes. Returns the backtrack
    /// additions — `(frame index, thread)` pairs — the races caused;
    /// the serial driver can ignore them (it re-reads the sets through
    /// [`Dpor::select`]), the parallel coordinator uses them to enqueue
    /// speculative child tasks the moment they become reachable.
    pub fn commit_step(
        &mut self,
        thread: ThreadId,
        fp: Footprint,
        pre_frame: Option<usize>,
    ) -> Vec<(usize, ThreadId)> {
        let (mut clk, additions) = self.scan_races(thread, &fp);
        clk.tick(thread);
        self.log.push(LogEntry {
            thread,
            fp,
            clock: clk,
            pre_frame,
        });
        additions
    }

    /// Processes races for a step that never executed: `thread`'s
    /// pending next op at a terminal state. A deadlock (the op stays
    /// blocked forever) or an abort (an assert failure ends the
    /// execution first) cuts the path before the op can commit — but
    /// the op still conflicts with executed steps, and those reversals
    /// reach outcomes this path cannot. Without this, a racing op that
    /// *always deadlocks first* on the explored order would never grow
    /// a backtrack set at all (FG-DPOR's per-state scan of every
    /// thread's next transition covers the same gap). Nothing is
    /// logged; only backtrack sets grow.
    pub fn pending_race(&mut self, thread: ThreadId, fp: &Footprint) -> Vec<(usize, ThreadId)> {
        self.scan_races(thread, fp).1
    }

    /// The backward race scan shared by [`Dpor::commit_step`] and
    /// [`Dpor::pending_race`]: computes the step's vector clock and
    /// grows backtrack sets for every race it closes.
    fn scan_races(
        &mut self,
        thread: ThreadId,
        fp: &Footprint,
    ) -> (VectorClock, Vec<(usize, ThreadId)>) {
        // Program order: start from this thread's previous step.
        let mut clk = self
            .log
            .iter()
            .rev()
            .find(|e| e.thread == thread)
            .map(|e| e.clock.clone())
            .unwrap_or_else(|| VectorClock::new(self.n_threads));
        // Race visibility clock: like `clk`, but blocking hand-off edges
        // (release → this step's blocked acquire) do not join it. A
        // hand-off orders the steps without being reversible, and the
        // reversible race is the acquire↔acquire pair *behind* it — a
        // mutex's previous lock reads as happens-before through the
        // unlock's clock, so masking it here would silently skip the
        // other acquisition order (and the final states only it reaches).
        let mut race_clk = clk.clone();
        let mut additions = Vec::new();
        // Backward scan: the latest dependent step of each thread is
        // met before earlier ones, so after its clock is joined the
        // earlier ones read as happens-before and are not re-reported.
        for j in (0..self.log.len()).rev() {
            if self.log[j].thread == thread {
                continue;
            }
            let d = &self.log[j];
            let real = !d.fp.independent(fp);
            let creation = creation_edge(d, thread, fp);
            if !real && !creation {
                continue;
            }
            let hand_off = real && !creation && d.fp.hands_off_to(fp);
            let concurrent = d.clock.get(d.thread) > race_clk.get(d.thread);
            if real && !creation && !hand_off && concurrent {
                process_race(&self.log, &mut self.frames, j, thread, &clk, &mut additions);
            }
            let dclock = self.log[j].clock.clone();
            clk.join(&dclock);
            if !hand_off {
                race_clk.join(&dclock);
            }
        }
        (clk, additions)
    }

    /// Moves an explored child into the frame's sleep set: later
    /// siblings need not re-explore orders that merely delay it.
    /// Only called when sleep sets are enabled.
    pub fn sleep_after(&mut self, frame: usize, thread: ThreadId) {
        let f = &mut self.frames[frame];
        debug_assert!(f.enabled.contains(&thread));
        if !f.sleep.contains(&thread) {
            f.sleep.push(thread);
        }
    }

    /// Sleep set for the child reached from `frame` by stepping
    /// `choice` and then the `forced` steps: the parent's sleepers that
    /// commute with everything executed along the edge and are still
    /// enabled at the child state. A conflicting edge step wakes the
    /// sleeper — delaying it past that step is no longer redundant.
    pub fn child_sleep(
        &self,
        frame: usize,
        choice: ThreadId,
        forced: &[(ThreadId, Footprint)],
        child_enabled: &[ThreadId],
    ) -> Vec<ThreadId> {
        let f = &self.frames[frame];
        let choice_fp = self.fp_of(frame, choice);
        f.sleep
            .iter()
            .copied()
            .filter(|&s| s != choice)
            .filter(|&s| {
                let sfp = self.fp_of(frame, s);
                sfp.independent(choice_fp) && forced.iter().all(|(_, ffp)| sfp.independent(ffp))
            })
            .filter(|s| child_enabled.contains(s))
            .collect()
    }

    /// Closes the top frame, truncating the log to its base. Returns
    /// the number of enabled children never selected — the schedules
    /// DPOR proved redundant without running them.
    pub fn pop_frame(&mut self) -> u64 {
        let f = self.frames.pop().expect("pop on empty DPOR frame stack");
        self.log.truncate(f.base);
        (f.enabled.len() - f.done.len()) as u64
    }

    /// Next-op footprint `thread` had at `frame`'s state.
    pub fn fp_of(&self, frame: usize, thread: ThreadId) -> &Footprint {
        let f = &self.frames[frame];
        let i = f
            .enabled
            .iter()
            .position(|&t| t == thread)
            .expect("thread is enabled at the frame");
        &f.fps[i]
    }

    /// `true` when `thread` is in `frame`'s backtrack set.
    pub fn in_backtrack(&self, frame: usize, thread: ThreadId) -> bool {
        self.frames[frame].backtrack.contains(&thread)
    }

    /// `true` when `thread` is in `frame`'s sleep set. A sleeping
    /// backtrack member is skipped by [`Dpor::select`] without being
    /// explored, so the parallel coordinator never dispatches its
    /// speculative expansion. (A thread awake when it enters the
    /// backtrack set stays awake until selected: the sleep set only
    /// grows through [`Dpor::sleep_after`], which adds already-selected
    /// children.)
    pub fn sleeping(&self, frame: usize, thread: ThreadId) -> bool {
        self.frames[frame].sleep.contains(&thread)
    }
}

/// `true` when the dependence between logged step `d` and the new step
/// by `thread` is a thread-lifecycle edge: one side spawns or joins the
/// other's thread. Those orderings are semantically forced — a thread
/// cannot run before it is spawned or after it is joined — so they
/// contribute happens-before but can never be reversed, and race
/// processing must skip them.
fn creation_edge(d: &LogEntry, thread: ThreadId, fp: &Footprint) -> bool {
    let touches = |f: &Footprint, t: ThreadId| {
        f.accesses()
            .iter()
            .any(|a| a.kind == ObjKind::Thread && a.index as usize == t.index())
    };
    touches(&d.fp, thread) || touches(fp, d.thread)
}

/// Handles one race: logged step `d = log[j]` and the step being
/// committed by `p` (partial clock `clk`, valid for every log index
/// after `j` because the backward scan already joined them) are
/// dependent and concurrent. Following source-set DPOR, compute
/// `v = notdep(d).p` — the suffix after `d` that does not happen-after
/// `d`, extended by `p` — and ensure some initial of `v` is in the
/// backtrack set of `d`'s branch frame, so the reversed order gets
/// explored.
fn process_race(
    log: &[LogEntry],
    frames: &mut [DporFrame],
    j: usize,
    p: ThreadId,
    clk: &VectorClock,
    additions: &mut Vec<(usize, ThreadId)>,
) {
    let d = &log[j];
    let Some(fi) = d.pre_frame else {
        return; // forced step: reversal at its pre-state is vacuous
    };
    let dticks = d.clock.get(d.thread);
    // Steps after d that do not know about d: still runnable from d's
    // pre-state when d is delayed. (Anything dependent with d joined
    // d's clock when committed, so the filter is a component compare.)
    let v: Vec<&LogEntry> = log[j + 1..]
        .iter()
        .filter(|x| x.clock.get(d.thread) < dticks)
        .collect();
    // Initials: threads whose first step in v has no happens-before
    // predecessor within v — each can run first from d's pre-state.
    let mut initials: Vec<ThreadId> = Vec::new();
    for (i, x) in v.iter().enumerate() {
        if initials.contains(&x.thread) {
            continue;
        }
        let free = v[..i]
            .iter()
            .all(|y| y.clock.get(y.thread) > x.clock.get(y.thread));
        if free {
            initials.push(x.thread);
        }
    }
    if !initials.contains(&p) {
        let free = v.iter().all(|y| y.clock.get(y.thread) > clk.get(y.thread));
        if free {
            initials.push(p);
        }
    }
    let frame = &mut frames[fi];
    if initials.iter().any(|t| frame.backtrack.contains(t)) {
        return; // the reversal is already scheduled here
    }
    if let Some(q) = frame.enabled.iter().copied().find(|t| initials.contains(t)) {
        frame.backtrack.push(q);
        additions.push((fi, q));
    } else {
        // No initial is enabled at the pre-state (the conservative
        // happens-before can hide the connecting chain): fall back to
        // the classic DPOR rule and schedule every enabled thread.
        for t in 0..frame.enabled.len() {
            let t = frame.enabled[t];
            if !frame.backtrack.contains(&t) {
                frame.backtrack.push(t);
                additions.push((fi, t));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::VarId;
    use crate::stmt::Stmt;

    fn t(i: usize) -> ThreadId {
        ThreadId::from_index(i)
    }

    fn wx() -> Footprint {
        Footprint::of_stmt(&Stmt::write(VarId::from_index(0), 1), &[])
    }

    fn wy() -> Footprint {
        Footprint::of_stmt(&Stmt::write(VarId::from_index(1), 1), &[])
    }

    #[test]
    fn dependent_steps_grow_the_backtrack_set() {
        let mut d = Dpor::new(2);
        let f = d.push_frame(vec![t(0), t(1)], vec![wx(), wx()], vec![]);
        let (skipped, sel) = d.select(f);
        assert_eq!((skipped, sel), (0, Some(t(0))));
        assert!(d.commit_step(t(0), wx(), Some(f)).is_empty());
        // The second writer races with the first: its own thread is the
        // sole initial, so it lands in the frame's backtrack set.
        let adds = d.commit_step(t(1), wx(), None);
        assert_eq!(adds, vec![(f, t(1))]);
        let (_, sel) = d.select(f);
        assert_eq!(sel, Some(t(1)));
        assert!(d.commit_step(t(1), wx(), Some(f)).is_empty());
        assert!(d.commit_step(t(0), wx(), None).is_empty()); // t(0) already done
        let (_, sel) = d.select(f);
        assert_eq!(sel, None);
        assert_eq!(d.pop_frame(), 0); // both orders explored
    }

    #[test]
    fn independent_steps_are_pruned() {
        let mut d = Dpor::new(2);
        let f = d.push_frame(vec![t(0), t(1)], vec![wx(), wy()], vec![]);
        let (_, sel) = d.select(f);
        assert_eq!(sel, Some(t(0)));
        assert!(d.commit_step(t(0), wx(), Some(f)).is_empty());
        assert!(d.commit_step(t(1), wy(), None).is_empty()); // no race
        let (_, sel) = d.select(f);
        assert_eq!(sel, None); // t(1)-first never scheduled
        assert_eq!(d.pop_frame(), 1); // one child proven redundant
    }

    #[test]
    fn races_reverse_one_adjacent_pair_at_a_time() {
        let mut d = Dpor::new(2);
        let f0 = d.push_frame(vec![t(0), t(1)], vec![wx(), wx()], vec![]);
        d.select(f0);
        d.commit_step(t(0), wx(), Some(f0));
        let f1 = d.push_frame(vec![t(0), t(1)], vec![wx(), wx()], vec![]);
        d.select(f1);
        d.commit_step(t(0), wx(), Some(f1));
        // Only the adjacent race (second write vs t1's) is reversed
        // now; the earlier write's reversal is rediscovered inside that
        // branch, one pair at a time, exactly as in SDPOR.
        let adds = d.commit_step(t(1), wx(), None);
        assert_eq!(adds, vec![(f1, t(1))]);
        // Reversed branch: after t0's first write, run t1 — its commit
        // races with the first write and schedules the full reversal
        // back at the root frame.
        let (_, sel) = d.select(f1);
        assert_eq!(sel, Some(t(1)));
        let adds = d.commit_step(t(1), wx(), Some(f1));
        assert_eq!(adds, vec![(f0, t(1))]);
    }

    #[test]
    fn intermediate_independent_steps_join_the_initials() {
        let mut d = Dpor::new(3);
        let f = d.push_frame(vec![t(0), t(1), t(2)], vec![wx(), wy(), wx()], vec![]);
        d.select(f);
        d.commit_step(t(0), wx(), Some(f));
        d.commit_step(t(1), wy(), None);
        // t(2) races with t(0); both t(1)'s step (independent of the
        // race) and t(2) are initials of v — the enabled-order pick is
        // t(1).
        let adds = d.commit_step(t(2), wx(), None);
        assert_eq!(adds, vec![(f, t(1))]);
    }

    #[test]
    fn lock_hand_off_does_not_mask_the_acquisition_race() {
        use crate::ids::MutexId;
        let m = MutexId::from_index(0);
        let lock = || Footprint::of_stmt(&Stmt::lock(m), &[]);
        let unlock = || Footprint::of_stmt(&Stmt::unlock(m), &[]);
        let mut d = Dpor::new(2);
        // Both threads want the lock; t(0) wins and runs its critical
        // section as forced steps (t(1) is blocked throughout).
        let f = d.push_frame(vec![t(0), t(1)], vec![lock(), lock()], vec![]);
        let (_, sel) = d.select(f);
        assert_eq!(sel, Some(t(0)));
        assert!(d.commit_step(t(0), lock(), Some(f)).is_empty());
        assert!(d.commit_step(t(0), wx(), None).is_empty());
        assert!(d.commit_step(t(0), unlock(), None).is_empty());
        // t(1)'s acquisition happens-after the unlock (the hand-off),
        // but the reversible race is with t(0)'s *lock*: the other
        // acquisition order reaches states this one cannot.
        let adds = d.commit_step(t(1), lock(), None);
        assert_eq!(adds, vec![(f, t(1))]);
        let (_, sel) = d.select(f);
        assert_eq!(sel, Some(t(1)));
    }

    #[test]
    fn hand_off_itself_is_not_a_reversible_race() {
        use crate::ids::MutexId;
        let m = MutexId::from_index(0);
        let lock = || Footprint::of_stmt(&Stmt::lock(m), &[]);
        let unlock = || Footprint::of_stmt(&Stmt::unlock(m), &[]);
        let mut d = Dpor::new(2);
        // t(1) already holds the lock when the frame opens (its next op
        // is the unlock); t(0) is waiting... not enabled, so the frame
        // only lists t(1). The release then hands off to t(0)'s acquire:
        // dependent, forced, no backtrack addition anywhere.
        let f = d.push_frame(vec![t(1)], vec![unlock()], vec![]);
        let (_, sel) = d.select(f);
        assert_eq!(sel, Some(t(1)));
        assert!(d.commit_step(t(1), unlock(), Some(f)).is_empty());
        assert!(d.commit_step(t(0), lock(), None).is_empty());
    }

    #[test]
    fn creation_edges_are_never_races() {
        let mut d = Dpor::new(2);
        let f = d.push_frame(
            vec![t(0), t(1)],
            vec![
                Footprint::of_stmt(&Stmt::Spawn(t(1)), &[]),
                Footprint::of_stmt(&Stmt::Spawn(t(1)), &[]),
            ],
            vec![],
        );
        d.select(f);
        d.commit_step(t(0), Footprint::of_stmt(&Stmt::Spawn(t(1)), &[]), Some(f));
        // t(1)'s first step happens-after its spawn; dependence through
        // the Thread object must not be reported as a reversible race.
        let adds = d.commit_step(t(1), wx(), None);
        assert!(adds.is_empty());
    }

    #[test]
    fn sleeping_backtrack_candidates_are_skipped() {
        let mut d = Dpor::new(2);
        // t(0) is asleep: the seed skips it and picks t(1).
        let f = d.push_frame(vec![t(0), t(1)], vec![wx(), wx()], vec![t(0)]);
        let (skipped, sel) = d.select(f);
        assert_eq!((skipped, sel), (0, Some(t(1))));
        d.commit_step(t(1), wx(), Some(f));
        let adds = d.commit_step(t(0), wx(), None);
        assert_eq!(adds, vec![(f, t(0))]);
        // The race wants t(0) first, but t(0) is asleep — an ancestor
        // sibling already owns that ordering, so it is skipped.
        let (skipped, sel) = d.select(f);
        assert_eq!((skipped, sel), (1, None));
        assert_eq!(d.pop_frame(), 0);
    }

    #[test]
    fn child_sleep_wakes_on_conflict_and_filters_disabled() {
        let mut d = Dpor::new(4);
        let f = d.push_frame(
            vec![t(0), t(1), t(2), t(3)],
            vec![wx(), wy(), wy(), wy()],
            vec![t(1), t(2), t(3)],
        );
        // Choice t(0) (write x) commutes with all sleepers (write y);
        // a forced step writing y wakes them all.
        let forced = [(t(0), wy())];
        let kept = d.child_sleep(f, t(0), &forced, &[t(1), t(2), t(3)]);
        assert!(kept.is_empty());
        // With an independent edge, sleepers survive — except the one
        // no longer enabled at the child.
        let forced = [(t(0), wx())];
        let kept = d.child_sleep(f, t(0), &forced, &[t(1), t(3)]);
        assert_eq!(kept, vec![t(1), t(3)]);
    }

    #[test]
    fn explored_children_go_to_sleep_for_later_siblings() {
        let mut d = Dpor::new(2);
        let f = d.push_frame(vec![t(0), t(1)], vec![wx(), wy()], vec![]);
        let (_, sel) = d.select(f);
        assert_eq!(sel, Some(t(0)));
        d.sleep_after(f, t(0));
        let kept = d.child_sleep(f, t(1), &[], &[t(0)]);
        assert_eq!(kept, vec![t(0)]); // t(0) ⊥ t(1): stays asleep
    }

    #[test]
    fn fallback_adds_all_enabled_when_no_initial_is() {
        let mut d = Dpor::new(3);
        // Artificial: the frame only lists t(0), yet other threads run
        // later (as if enabled elsewhere). The race's initials are not
        // in the frame's enabled set, so the conservative fallback
        // fires — here it adds nothing new because t(0) is already the
        // seed.
        let f = d.push_frame(vec![t(0)], vec![wx()], vec![]);
        d.select(f);
        d.commit_step(t(0), wx(), Some(f));
        d.commit_step(t(1), wy(), None);
        let adds = d.commit_step(t(2), wx(), None);
        assert!(adds.is_empty());
    }

    #[test]
    fn log_truncates_on_reselect_and_pop() {
        let mut d = Dpor::new(2);
        let f = d.push_frame(vec![t(0), t(1)], vec![wx(), wx()], vec![]);
        d.select(f);
        d.commit_step(t(0), wx(), Some(f));
        d.commit_step(t(1), wx(), None);
        assert_eq!(d.log.len(), 2);
        d.select(f); // next sibling: the old edge's steps are discarded
        assert_eq!(d.log.len(), 0);
        d.commit_step(t(1), wx(), Some(f));
        d.pop_frame();
        assert_eq!(d.log.len(), 0);
        assert_eq!(d.frames.len(), 0);
    }
}
